//! Workspace task runner, invoked as `cargo xtask <task>` (the alias lives
//! in `.cargo/config.toml`).
//!
//! Tasks:
//! * `lint` — run the simlint determinism/robustness pass over the
//!   sim-path crates; exits nonzero if any hazard is found.
//!   * `--format json` emits the versioned findings artifact instead of
//!     the human one-liner-per-finding form.
//!   * `--baseline FILE` fails only on findings NOT covered by the
//!     baseline artifact (line-insensitive multiset match), so CI gates
//!     on *new* findings while a cleanup is in flight.
//!   * `--write-baseline FILE` records the current findings as the new
//!     baseline and exits 0.
//! * `invariance` — run the schedule-invariance checker (the runtime race
//!   detector) on the managed-pipeline experiment, via its in-crate tests.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // tools/xtask/ → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

#[derive(Default)]
struct LintOpts {
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_lint_opts(args: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects json|text, got {other:?}")),
            },
            "--baseline" => {
                let path = it.next().ok_or("--baseline expects a file path")?;
                opts.baseline = Some(PathBuf::from(path));
            }
            "--write-baseline" => {
                let path = it.next().ok_or("--write-baseline expects a file path")?;
                opts.write_baseline = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown lint flag {other:?}")),
        }
    }
    if opts.baseline.is_some() && opts.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".into());
    }
    Ok(opts)
}

fn lint(args: &[String]) -> ExitCode {
    let opts = match parse_lint_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = workspace_root();
    let findings = match simlint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        let artifact = simlint::baseline::render_json(&findings);
        if let Err(e) = std::fs::write(path, artifact) {
            eprintln!("xtask lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: baseline of {} finding(s) written to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // With a baseline, only findings outside it gate the exit code; the
    // report (text or JSON) shows just the gating set so CI logs point
    // straight at what regressed.
    let gating = match &opts.baseline {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask lint: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let keys = match simlint::baseline::parse_baseline(&src) {
                Ok(k) => k,
                Err(e) => {
                    eprintln!("xtask lint: bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            simlint::baseline::new_findings(&findings, &keys)
        }
        None => findings,
    };

    if opts.json {
        print!("{}", simlint::baseline::render_json(&gating));
    } else if gating.is_empty() {
        println!("simlint: clean (no hazards in sim-path crates)");
    } else {
        for f in &gating {
            println!("{f}");
        }
    }
    if gating.is_empty() {
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "simlint: {} {}hazard{} found",
        gating.len(),
        if opts.baseline.is_some() { "new " } else { "" },
        if gating.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

fn invariance() -> ExitCode {
    // Delegate to the in-crate checker tests: xtask deliberately does NOT
    // link the sim stack, so `cargo xtask lint` still works when the code
    // under lint doesn't compile.
    let status = std::process::Command::new(env!("CARGO"))
        .args(["test", "-q", "--package", "iocontainers", "--lib", "invariance"])
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!(
                "invariance: schedule divergence detected — the model has a simulation race"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask invariance: cannot run cargo test: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("invariance") => invariance(),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--format json] [--baseline FILE | --write-baseline FILE] | invariance>"
            );
            ExitCode::from(2)
        }
    }
}
