//! Workspace task runner, invoked as `cargo xtask <task>` (the alias lives
//! in `.cargo/config.toml`).
//!
//! Tasks:
//! * `lint` — run the simlint determinism pass over the sim-path crates;
//!   exits nonzero if any hazard is found.
//! * `invariance` — run the schedule-invariance checker (the runtime race
//!   detector) on the managed-pipeline experiment, via its in-crate tests.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // tools/xtask/ → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let findings = match simlint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if findings.is_empty() {
        println!("simlint: clean (no determinism hazards in sim-path crates)");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!(
        "simlint: {} determinism hazard{} found",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

fn invariance() -> ExitCode {
    // Delegate to the in-crate checker tests: xtask deliberately does NOT
    // link the sim stack, so `cargo xtask lint` still works when the code
    // under lint doesn't compile.
    let status = std::process::Command::new(env!("CARGO"))
        .args(["test", "-q", "--package", "iocontainers", "--lib", "invariance"])
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!(
                "invariance: schedule divergence detected — the model has a simulation race"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask invariance: cannot run cargo test: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("invariance") => invariance(),
        _ => {
            eprintln!("usage: cargo xtask <lint | invariance>");
            ExitCode::from(2)
        }
    }
}
