//! Workspace task runner, invoked as `cargo xtask <task>` (the alias lives
//! in `.cargo/config.toml`).
//!
//! Tasks:
//! * `lint` — run the simlint determinism/robustness pass over the
//!   sim-path crates; exits nonzero if any hazard is found.
//!   * `--format json` emits the versioned findings artifact instead of
//!     the human one-liner-per-finding form.
//!   * `--baseline FILE` fails only on findings NOT covered by the
//!     baseline artifact (line-insensitive multiset match), so CI gates
//!     on *new* findings while a cleanup is in flight.
//!   * `--write-baseline FILE` records the current findings as the new
//!     baseline and exits 0.
//! * `invariance` — run the schedule-invariance checker (the runtime race
//!   detector) on the managed-pipeline experiment, via its in-crate tests.
//! * `api` — snapshot the `iocontainers` facade (every `pub mod` / `pub
//!   use` item in its `lib.rs`) and diff it against the committed baseline
//!   (`tests/public_api_baseline.txt`), so accidental API breaks fail CI.
//!   * `--write-baseline` records the current surface as the new baseline
//!     after a deliberate API change.
//! * `bench-diff` — re-measure the event-kernel workloads and compare
//!   against the committed `BENCH_events.json`; exits nonzero if any cell
//!   lost more than the tolerance of its events/sec. The tolerance comes
//!   from the `BENCH_EVENTS_TOLERANCE` environment variable (default
//!   0.45), and the diff auto-skips on a throttled/preempted machine (the
//!   emitter's steadiness calibration). Delegates to
//!   `cargo run -p bench --release --bin events -- --diff` — like
//!   `invariance`, xtask itself never links the sim stack.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // tools/xtask/ → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

#[derive(Default)]
struct LintOpts {
    json: bool,
    stats: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_lint_opts(args: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects json|text, got {other:?}")),
            },
            "--stats" => opts.stats = true,
            "--baseline" => {
                let path = it.next().ok_or("--baseline expects a file path")?;
                opts.baseline = Some(PathBuf::from(path));
            }
            "--write-baseline" => {
                let path = it.next().ok_or("--write-baseline expects a file path")?;
                opts.write_baseline = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown lint flag {other:?}")),
        }
    }
    if opts.baseline.is_some() && opts.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".into());
    }
    if opts.stats && opts.json {
        return Err("--stats prints the human summary; drop --format json".into());
    }
    Ok(opts)
}

/// One-screen lint coverage summary (`cargo xtask lint --stats`).
fn print_stats(stats: &simlint::Stats) {
    println!(
        "simlint v3: {} files, {} functions, {} resolved call edges ({} unknown callees)",
        stats.files, stats.functions, stats.resolved_calls, stats.unknown_calls
    );
    println!("hot set: {} functions reachable from the hot roots", stats.hot_functions);
    let per_rule: Vec<String> = simlint::Rule::all_rules()
        .iter()
        .map(|r| format!("{} {}", r.name(), stats.per_rule.get(r.name()).copied().unwrap_or(0)))
        .collect();
    let total: usize = stats.per_rule.values().sum();
    println!("findings: {total} ({})", per_rule.join(", "));
    let consumed = stats.escapes.iter().filter(|e| e.consumed > 0).count();
    let stale = stats.escapes.len() - consumed;
    println!(
        "escapes: {} reasoned ({consumed} consumed, {stale} stale)",
        stats.escapes.len()
    );
    for e in &stats.escapes {
        println!("  {}:{} allow({}) suppresses {}", e.file, e.line, e.rule, e.consumed);
    }
}

fn lint(args: &[String]) -> ExitCode {
    let opts = match parse_lint_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = workspace_root();
    let report = match simlint::lint_workspace_report(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if opts.stats {
        print_stats(&report.stats);
    }
    let findings = report.findings;

    if let Some(path) = &opts.write_baseline {
        let artifact = simlint::baseline::render_json(&findings);
        if let Err(e) = std::fs::write(path, artifact) {
            eprintln!("xtask lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: baseline of {} finding(s) written to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // With a baseline, only findings outside it gate the exit code; the
    // report (text or JSON) shows just the gating set so CI logs point
    // straight at what regressed.
    let gating = match &opts.baseline {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask lint: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let keys = match simlint::baseline::parse_baseline(&src) {
                Ok(k) => k,
                Err(e) => {
                    eprintln!("xtask lint: bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            simlint::baseline::new_findings(&findings, &keys)
        }
        None => findings,
    };

    if opts.json {
        print!("{}", simlint::baseline::render_json(&gating));
    } else if gating.is_empty() {
        println!("simlint: clean (no hazards in sim-path crates)");
    } else {
        for f in &gating {
            println!("{f}");
        }
    }
    if gating.is_empty() {
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "simlint: {} {}hazard{} found",
        gating.len(),
        if opts.baseline.is_some() { "new " } else { "" },
        if gating.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

fn bench_diff(args: &[String]) -> ExitCode {
    let artifact = match args {
        [] => "BENCH_events.json".to_string(),
        [path] => path.clone(),
        _ => {
            eprintln!("usage: cargo xtask bench-diff [ARTIFACT]");
            return ExitCode::from(2);
        }
    };
    // Release build: the committed numbers were measured in release, so a
    // debug re-measurement would always look like a huge regression. The
    // tolerance (and the unsteady-environment auto-skip) live in the
    // emitter itself — `BENCH_EVENTS_TOLERANCE` overrides the default.
    // Best-of-5 per cell: the committed baseline is a best-of-many peak,
    // so the gate-side measurement needs enough attempts to reach the
    // machine's fast state and not trip the tolerance on scheduler noise.
    let status = std::process::Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "bench", "--release", "--bin", "events", "--"])
        .args(["--reps", "5", "--diff"])
        .arg(&artifact)
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!(
                "bench-diff: events/sec regressed beyond tolerance vs {artifact} \
                 (set BENCH_EVENTS_TOLERANCE or regenerate the artifact if intended)"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask bench-diff: cannot run cargo: {e}");
            ExitCode::from(2)
        }
    }
}

fn invariance() -> ExitCode {
    // Delegate to the in-crate checker tests: xtask deliberately does NOT
    // link the sim stack, so `cargo xtask lint` still works when the code
    // under lint doesn't compile.
    let status = std::process::Command::new(env!("CARGO"))
        .args(["test", "-q", "--package", "iocontainers", "--lib", "invariance"])
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!(
                "invariance: schedule divergence detected — the model has a simulation race"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask invariance: cannot run cargo test: {e}");
            ExitCode::from(2)
        }
    }
}

/// Flattens the `iocontainers` facade into one line per exported item:
/// every `pub mod` and every name a `pub use` re-exports (brace groups
/// expanded), sorted. Formatting, comments, and grouping don't affect the
/// snapshot — only the actual set of exported paths does.
fn api_surface(lib_rs: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut buf = String::new();
    let mut in_item = false;
    for raw in lib_rs.lines() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !in_item {
            if line.starts_with("pub mod ") || line.starts_with("pub use ") {
                buf.clear();
                in_item = true;
            } else {
                continue;
            }
        } else {
            buf.push(' ');
        }
        buf.push_str(line);
        if let Some(end) = buf.find(';') {
            let item: String = buf[..end].split_whitespace().collect::<Vec<_>>().join(" ");
            in_item = false;
            if let Some(rest) = item.strip_prefix("pub use ") {
                if let Some(brace) = rest.find('{') {
                    let prefix = rest[..brace].trim();
                    let inner = rest[brace + 1..].trim_end_matches('}');
                    items.extend(
                        inner
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(|name| format!("pub use {prefix}{name}")),
                    );
                } else {
                    items.push(format!("pub use {rest}"));
                }
            } else {
                items.push(item);
            }
        }
    }
    items.sort();
    items
}

fn api(args: &[String]) -> ExitCode {
    let write = match args {
        [] => false,
        [flag] if flag == "--write-baseline" => true,
        _ => {
            eprintln!("usage: cargo xtask api [--write-baseline]");
            return ExitCode::from(2);
        }
    };
    let root = workspace_root();
    let lib = root.join("crates/iocontainers/src/lib.rs");
    let baseline_path = root.join("tests/public_api_baseline.txt");
    let src = match std::fs::read_to_string(&lib) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask api: cannot read {}: {e}", lib.display());
            return ExitCode::from(2);
        }
    };
    let current = api_surface(&src);

    if write {
        let mut out = current.join("\n");
        out.push('\n');
        if let Err(e) = std::fs::write(&baseline_path, out) {
            eprintln!("xtask api: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("api: baseline of {} item(s) written to {}", current.len(), baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline: Vec<String> = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s.lines().map(str::to_string).filter(|l| !l.is_empty()).collect(),
        Err(e) => {
            eprintln!(
                "xtask api: cannot read baseline {}: {e}\n(run `cargo xtask api --write-baseline` to create it)",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let removed: Vec<_> = baseline.iter().filter(|l| !current.contains(l)).collect();
    let added: Vec<_> = current.iter().filter(|l| !baseline.contains(l)).collect();
    if removed.is_empty() && added.is_empty() {
        println!("api: surface matches the baseline ({} items)", current.len());
        return ExitCode::SUCCESS;
    }
    for l in &removed {
        println!("- {l}");
    }
    for l in &added {
        println!("+ {l}");
    }
    eprintln!(
        "api: public surface drifted from tests/public_api_baseline.txt \
         ({} removed, {} added); if intended, run `cargo xtask api --write-baseline`",
        removed.len(),
        added.len()
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("invariance") => invariance(),
        Some("api") => api(&args[1..]),
        Some("bench-diff") => bench_diff(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--format json] [--stats] [--baseline FILE | --write-baseline FILE] | invariance | api [--write-baseline] | bench-diff [ARTIFACT]>"
            );
            ExitCode::from(2)
        }
    }
}
