//! Interprocedural (v3) fixture tests: the call-graph-driven
//! alloc-in-hot-path rule, stale-escape reporting, cross-file hot-chain
//! context on panic findings, and a regression pin that every reasoned
//! escape in the real workspace still earns its keep.

use std::path::Path;

use simlint::{lint_units, Rule, RuleSet, SourceUnit};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).expect("fixture exists")
}

fn unit(rel: &str, name: &str) -> SourceUnit {
    SourceUnit { rel: rel.to_string(), src: fixture(name), rules: RuleSet::all() }
}

#[test]
fn alloc_hot_fixture_direct_transitive_escaped() {
    let report =
        lint_units(&[unit("crates/fixa/src/lib.rs", "alloc_hot.rs")]).expect("fixture parses");
    let alloc: Vec<&simlint::Finding> =
        report.findings.iter().filter(|f| f.rule == Rule::AllocInHotPath).collect();
    let lines: Vec<usize> = alloc.iter().map(|f| f.line).collect();

    // Direct hits in the root itself: vec!, Vec::new, growth of the
    // born-here buffer.
    assert!(lines.contains(&6), "vec! in entry: {alloc:?}");
    assert!(lines.contains(&7), "Vec::new in entry: {alloc:?}");
    assert!(lines.contains(&8), "growth of a born local: {alloc:?}");

    // Transitive hit one call down, annotated with the chain.
    let step1 = alloc.iter().find(|f| f.line == 13).expect("format! in step1");
    assert!(step1.message.contains("hot path: entry → step1"), "{}", step1.message);
    assert!(step1.message.contains("root entry@2"), "{}", step1.message);

    // The escaped depth-two allocation is suppressed — and the escape is
    // recorded as consumed, not stale.
    assert!(!lines.contains(&20), "escaped to_string must not fire: {alloc:?}");
    assert!(report.findings.iter().all(|f| f.rule != Rule::StaleEscape), "{:?}", report.findings);
    let escape = report.stats.escapes.iter().find(|e| e.line == 19).expect("escape tracked");
    assert_eq!((escape.rule.as_str(), escape.consumed), ("alloc-in-hot-path", 1));

    // The mem::take-born scratch buffer is the sanctioned idiom.
    assert!(!lines.contains(&26), "take-born push must stay clean: {alloc:?}");

    // Beyond the configured depth nothing fires.
    assert!(!lines.contains(&31), "beyond-depth alloc must not fire: {alloc:?}");
}

#[test]
fn stale_escape_fixture_reports_only_the_dead_escape() {
    let report =
        lint_units(&[unit("crates/fixa/src/lib.rs", "stale_escape.rs")]).expect("fixture parses");
    let stale: Vec<&simlint::Finding> =
        report.findings.iter().filter(|f| f.rule == Rule::StaleEscape).collect();
    assert_eq!(stale.len(), 1, "{:?}", report.findings);
    assert_eq!(stale[0].line, 11, "{stale:?}");
    assert!(stale[0].message.contains("allow(wall-clock)"), "{}", stale[0].message);

    // The live escape next door consumed its finding and is not reported.
    let live = report.stats.escapes.iter().find(|e| e.line == 6).expect("live escape tracked");
    assert_eq!(live.consumed, 1);
    assert!(report.findings.iter().all(|f| f.rule != Rule::WallClock), "{:?}", report.findings);
}

#[test]
fn panic_chain_crosses_files_with_hot_context() {
    let report = lint_units(&[
        unit("crates/fixa/src/a.rs", "panic_chain_a.rs"),
        unit("crates/fixa/src/b.rs", "panic_chain_b.rs"),
    ])
    .expect("fixtures parse");
    let panic: Vec<&simlint::Finding> =
        report.findings.iter().filter(|f| f.rule == Rule::PanicPath).collect();
    let hit = panic
        .iter()
        .find(|f| f.file == "crates/fixa/src/b.rs" && f.line == 5)
        .expect("unwrap flagged in helper");
    assert!(hit.message.contains("hot path: entry → helper"), "{}", hit.message);
    assert!(hit.message.contains("root entry"), "{}", hit.message);
}

/// Regression pin for DESIGN.md §7: the real workspace lints clean, and
/// every reasoned escape suppresses exactly what it did when it was
/// written — the two v2 originals at one finding each, plus the
/// hot-path escapes added with the v3 rule. An entry appearing here
/// with `consumed: 0` would instead surface as a stale-escape finding.
#[test]
fn workspace_is_clean_and_escapes_all_earn_their_keep() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = simlint::lint_workspace_report(&root).expect("workspace lints");
    assert!(report.findings.is_empty(), "{:?}", report.findings);

    let mut got: Vec<(String, String, usize)> = report
        .stats
        .escapes
        .iter()
        .map(|e| (e.file.clone(), e.rule.clone(), e.consumed))
        .collect();
    got.sort();
    let want: Vec<(String, String, usize)> = [
        ("crates/datatap/src/clock.rs", "wall-clock", 1),
        ("crates/evpath/src/overlay.rs", "alloc-in-hot-path", 1),
        ("crates/evpath/src/overlay.rs", "alloc-in-hot-path", 1),
        ("crates/sim-core/src/kernel.rs", "alloc-in-hot-path", 1),
        ("crates/sim-core/src/trace.rs", "alloc-in-hot-path", 2),
        ("crates/simnet/src/net.rs", "alloc-in-hot-path", 1),
        ("crates/simnet/src/net.rs", "alloc-in-hot-path", 1),
        ("crates/simnet/src/net.rs", "alloc-in-hot-path", 2),
        ("crates/simnet/src/net.rs", "panic-path", 1),
        ("crates/simtel/src/telemetry.rs", "alloc-in-hot-path", 1),
        ("crates/simtel/src/telemetry.rs", "alloc-in-hot-path", 2),
        ("crates/simtel/src/telemetry.rs", "alloc-in-hot-path", 2),
        ("crates/simtel/src/telemetry.rs", "alloc-in-hot-path", 2),
        ("crates/stream/tests/stream_integration.rs", "wall-clock", 1),
    ]
    .into_iter()
    .map(|(f, r, n)| (f.to_string(), r.to_string(), n))
    .collect();
    assert_eq!(got, want);
}
