//! Fixture-file tests: each rule fires on its fixture, the clean fixture
//! reports nothing, and `allow(...)` escapes suppress everything.
//!
//! The fixtures under `tests/fixtures/` are scanned as text, never
//! compiled — they deliberately contain the hazards the lint exists for.

use std::path::Path;

use simlint::{lint_source, Rule, RuleSet};

fn lint_fixture(name: &str) -> Vec<simlint::Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    lint_source(Path::new(name), &src, &RuleSet::all())
}

#[test]
fn wall_clock_fixture_triggers() {
    let f = lint_fixture("wall_clock.rs");
    assert!(f.iter().any(|f| f.rule == Rule::WallClock && f.line == 5), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::WallClock && f.line == 10), "{f:?}");
    assert!(f.iter().all(|f| f.rule == Rule::WallClock));
}

#[test]
fn unordered_iter_fixture_triggers() {
    let f = lint_fixture("unordered_iter.rs");
    // The struct-field drain and the `for … in &live` loop.
    assert!(f.iter().any(|f| f.rule == Rule::UnorderedIter && f.line == 10), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::UnorderedIter && f.line == 15), "{f:?}");
}

#[test]
fn adhoc_rng_fixture_triggers() {
    let f = lint_fixture("adhoc_rng.rs");
    assert!(f.iter().any(|f| f.rule == Rule::AdhocRng && f.line == 5), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::AdhocRng && f.line == 10), "{f:?}");
}

#[test]
fn thread_spawn_fixture_triggers() {
    let f = lint_fixture("thread_spawn.rs");
    assert!(f.iter().any(|f| f.rule == Rule::ThreadSpawn && f.line == 3), "{f:?}");
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(lint_fixture("clean.rs"), vec![]);
}

#[test]
fn scoped_fork_join_is_not_flagged() {
    // simpar's pattern: `scope.spawn` joins before the scope returns, so
    // even the full ruleset has nothing to say about it.
    assert_eq!(lint_fixture("scoped_spawn.rs"), vec![]);
}

#[test]
fn allow_escapes_suppress_every_finding() {
    assert_eq!(lint_fixture("allowed.rs"), vec![]);
}

#[test]
fn diagnostics_carry_file_and_line() {
    let f = lint_fixture("thread_spawn.rs");
    let rendered = f[0].to_string();
    assert!(rendered.starts_with("thread_spawn.rs:3:"), "{rendered}");
    assert!(rendered.contains("[thread-spawn]"), "{rendered}");
}
