//! Fixture-file tests: each rule fires on its fixture, the clean fixture
//! reports nothing, and `allow(rule, reason)` escapes suppress
//! everything they cover.
//!
//! The fixtures under `tests/fixtures/` are scanned as text, never
//! compiled — they deliberately contain the hazards the lint exists for.

use std::path::Path;

use simlint::{lint_source, ruleset_for, Rule, RuleSet};

fn lint_fixture(name: &str) -> Vec<simlint::Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    lint_source(Path::new(name), &src, &RuleSet::all()).expect("fixture parses")
}

#[test]
fn wall_clock_fixture_triggers() {
    let f = lint_fixture("wall_clock.rs");
    assert!(f.iter().any(|f| f.rule == Rule::WallClock && f.line == 5), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::WallClock && f.line == 10), "{f:?}");
    assert!(f.iter().all(|f| f.rule == Rule::WallClock));
}

#[test]
fn unordered_iter_fixture_triggers() {
    let f = lint_fixture("unordered_iter.rs");
    // The struct-field drain has unresolved flow (conservative verdict);
    // the `for … in &live` loop provably reaches the scheduler, so the
    // dataflow pass upgrades it to order-taint.
    assert!(f.iter().any(|f| f.rule == Rule::UnorderedIter && f.line == 10), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::OrderTaint && f.line == 15), "{f:?}");
}

#[test]
fn adhoc_rng_fixture_triggers() {
    let f = lint_fixture("adhoc_rng.rs");
    assert!(f.iter().any(|f| f.rule == Rule::AdhocRng && f.line == 5), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::AdhocRng && f.line == 10), "{f:?}");
}

#[test]
fn thread_spawn_fixture_triggers() {
    let f = lint_fixture("thread_spawn.rs");
    assert!(f.iter().any(|f| f.rule == Rule::ThreadSpawn && f.line == 3), "{f:?}");
}

#[test]
fn panic_path_fixture_triggers() {
    let f = lint_fixture("panic_path.rs");
    let lines: Vec<usize> =
        f.iter().filter(|f| f.rule == Rule::PanicPath).map(|f| f.line).collect();
    assert!(lines.contains(&5), "unwrap: {f:?}");
    assert!(lines.contains(&9), "expect: {f:?}");
    assert!(lines.contains(&15), "panic!: {f:?}");
    assert!(lines.contains(&20), "literal index: {f:?}");
    assert!(lines.contains(&24), "arithmetic index: {f:?}");
    assert!(lines.contains(&28), "range slicing: {f:?}");
    // The by-construction bare-variable index idiom is sanctioned.
    assert!(!lines.contains(&32), "containers[id] must not fire: {f:?}");
    // Test code is exempt.
    assert!(lines.iter().all(|&l| l < 34), "test mod must be exempt: {f:?}");
}

#[test]
fn width_math_fixture_triggers() {
    let f = lint_fixture("width_math.rs");
    let lines: Vec<usize> =
        f.iter().filter(|f| f.rule == Rule::UncheckedWidthMath).map(|f| f.line).collect();
    assert!(lines.contains(&4), "bytes*scale/bps: {f:?}");
    assert!(lines.contains(&8), "chained multiply: {f:?}");
    assert!(!lines.contains(&12), "u128 widening is safe: {f:?}");
    assert!(!lines.contains(&16), "widemath routing is safe: {f:?}");
    assert!(!lines.contains(&20), "saturating_mul is explicit: {f:?}");
    assert!(!lines.contains(&24), "unit-less multiply out of scope: {f:?}");
}

#[test]
fn order_taint_fixture_separates_sinks_from_sanitized() {
    let f = lint_fixture("order_taint.rs");
    let taints: Vec<usize> =
        f.iter().filter(|f| f.rule == Rule::OrderTaint).map(|f| f.line).collect();
    assert!(taints.contains(&11), "scheduler sink: {f:?}");
    assert!(taints.contains(&17), "exported-vec sink: {f:?}");
    // Everything else in the fixture is sanitized: commutative sums,
    // sorted exports, BTree re-collection, lookups, counts.
    assert_eq!(taints.len(), 2, "{f:?}");
    assert!(
        f.iter().all(|f| f.rule == Rule::OrderTaint),
        "sanitized flows need no escape: {f:?}"
    );
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(lint_fixture("clean.rs"), vec![]);
}

#[test]
fn scoped_fork_join_is_not_flagged() {
    // simpar's pattern: `scope.spawn` joins before the scope returns, so
    // even the full ruleset has nothing to say about it.
    assert_eq!(lint_fixture("scoped_spawn.rs"), vec![]);
}

#[test]
fn allow_escapes_with_reasons_suppress_every_finding() {
    assert_eq!(lint_fixture("allowed.rs"), vec![]);
}

#[test]
fn diagnostics_carry_file_line_and_column() {
    let f = lint_fixture("thread_spawn.rs");
    let rendered = f[0].to_string();
    assert!(rendered.starts_with("thread_spawn.rs:3:"), "{rendered}");
    assert!(rendered.contains("[thread-spawn]"), "{rendered}");
}

#[test]
fn smartpointer_fragments_pass_order_taint_without_escape() {
    // Regression for the DESIGN.md §7 allowlist shrink: the fragment
    // indexes `dense` and `by_atom` are lookup-only hash maps — the
    // dataflow pass must prove them clean with no escape comment.
    let rel = Path::new("crates/smartpointer/src/fragments.rs");
    let abs = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel);
    let src = std::fs::read_to_string(&abs).expect("fragments.rs exists");
    assert!(!src.contains("simlint: allow(unordered-iter"), "no manual escape");
    assert!(!src.contains("simlint: allow(order-taint"), "no manual escape");
    let rules = ruleset_for(rel).expect("in scope");
    let f = lint_source(rel, &src, &rules).expect("parses");
    let order: Vec<_> = f
        .iter()
        .filter(|f| f.rule == Rule::OrderTaint || f.rule == Rule::UnorderedIter)
        .collect();
    assert!(order.is_empty(), "lookup-only maps must pass automatically: {order:?}");
}
