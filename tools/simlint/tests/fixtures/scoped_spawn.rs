// Fixture: simpar-style deterministic fork/join. Scoped spawns join
// before the scope returns and partials merge in chunk order, so the
// thread-spawn rule does not match them — only a free-running
// `thread::spawn` would fire.
fn map_chunks(n: usize) -> Vec<u64> {
    let mut parts: Vec<Option<u64>> = vec![None; n];
    std::thread::scope(|scope| {
        for (ix, slot) in parts.iter_mut().enumerate() {
            scope.spawn(move || {
                *slot = Some(ix as u64 * 2);
            });
        }
    });
    parts.into_iter().map(Option::unwrap).collect()
}
