// Fixture: panicking constructs in engine code (never compiled; scanned
// as text). The bare-variable index in `sanctioned_lookup` must NOT
// fire — it is the workspace's by-construction container-id idiom.
fn take_next(q: &mut Queue) -> Event {
    q.pop_front().unwrap()
}

fn lease(staging: &mut Staging, take: u32) -> Lease {
    staging.lease(take).expect("spare count checked")
}

fn dispatch(state: State) {
    match state {
        State::Ready => run(),
        _ => panic!("dispatch from non-ready state"),
    }
}

fn head(v: &[u64]) -> u64 {
    v[0]
}

fn neighbor(v: &[u64], i: usize) -> u64 {
    v[i - 1]
}

fn window(v: &[u64], n: usize) -> &[u64] {
    &v[..n]
}

fn sanctioned_lookup(containers: &[Container], id: usize) -> &Container {
    &containers[id]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        build().unwrap();
        assert_eq!(parts()[0], 1);
    }
}
