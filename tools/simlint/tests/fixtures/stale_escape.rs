// Fixture: a reasoned escape that still earns its keep next to one that
// no longer suppresses anything (never compiled; scanned as text).
use std::time::Instant;

fn timed() -> Instant {
    // simlint: allow(wall-clock, fixture: models a wall deadline)
    Instant::now()
}

fn stale() -> u64 {
    // simlint: allow(wall-clock, this once suppressed a now-deleted clock read)
    42
}
