// Fixture: the hot entry point; its panic lives two files away (never
// compiled; scanned as text).
// simlint: hot-root(entry)

pub fn entry(xs: &[u64]) -> u64 {
    helper(xs)
}
