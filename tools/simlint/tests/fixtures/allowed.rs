// Fixture: the same hazards as elsewhere, every one explicitly allowed
// with the v2 escape grammar — `allow(<rule>, <reason>)`.
use std::time::Instant;

fn wall_clock_bridge() -> Instant {
    // This is the one sanctioned wall-clock read: the process-epoch base.
    // simlint: allow(wall-clock, process-epoch base for telemetry export)
    Instant::now()
}

fn seeded_escape() -> u64 {
    let mut rng = rand::thread_rng(); // simlint: allow(adhoc-rng, fixture: exercising the escape)
    rng.gen()
}

fn checked_by_construction(v: &[u32]) -> u32 {
    // simlint: allow(panic-path, index 0 guaranteed by the caller's invariant)
    v[0]
}

fn widened_elsewhere(bytes: u64, bandwidth_bps: u64) -> u64 {
    // simlint: allow(unchecked-width-math, fixture: operands bounded < 2^32)
    bytes * 1_000_000_000 / bandwidth_bps
}
