// Fixture: the same hazards as elsewhere, every one explicitly allowed.
use std::time::Instant;

fn wall_clock_bridge() -> Instant {
    // This is the one sanctioned wall-clock read: the process-epoch base.
    // simlint: allow(wall-clock)
    Instant::now()
}

fn seeded_escape() -> u64 {
    let mut rng = rand::thread_rng(); // simlint: allow(adhoc-rng)
    rng.gen()
}
