// Fixture: OS-seeded RNG construction outside the kernel seed.
use rand::{thread_rng, Rng, SeedableRng};

fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

fn fresh() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}
