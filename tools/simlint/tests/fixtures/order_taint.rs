// Fixture: hash-order dataflow (never compiled; scanned as text).
// Tainted flows reach sinks; sanitized/commutative flows must pass
// without any escape.
use std::collections::{BTreeMap, HashMap, HashSet};

struct Registry {
    by_id: HashMap<u64, u64>,
}

fn schedule_all(m: HashMap<u64, u64>, sim: &mut Sim) {
    for k in m.keys() {
        sim.schedule(k);
    }
}

fn export_unsorted(m: &HashMap<u64, u64>, out: &mut Vec<u64>) {
    for (_, v) in m.iter() {
        out.push(*v);
    }
}

fn total(m: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for (_, v) in m {
        sum += v;
    }
    sum
}

fn sum_chain(m: &HashMap<u64, u64>) -> u64 {
    m.values().sum()
}

fn ordered_export(m: &HashMap<u64, u64>, out: &mut Vec<u64>) {
    let mut keys: Vec<u64> = m.keys().copied().collect();
    keys.sort();
    out.extend(keys);
}

fn rekeyed(m: &HashMap<u64, u64>) -> BTreeMap<u64, u64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u64>>()
}

fn lookup_only(r: &Registry, id: u64) -> Option<u64> {
    r.by_id.get(&id).copied()
}

fn counted(s: &HashSet<u32>) -> usize {
    s.iter().count()
}
