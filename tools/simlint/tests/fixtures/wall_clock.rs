// Fixture: wall-clock reads in sim code (never compiled; scanned as text).
use std::time::{Instant, SystemTime};

fn elapsed_ms(start: Instant) -> u128 {
    let now = Instant::now();
    now.duration_since(start).as_millis()
}

fn stamp() -> SystemTime {
    SystemTime::now()
}
