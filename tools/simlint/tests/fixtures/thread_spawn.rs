// Fixture: free-running thread in a single-threaded sim crate.
fn run_background() {
    std::thread::spawn(|| loop {
        poll();
    });
}

fn poll() {}
