// Fixture: u64 width hazards on bytes × bandwidth/time operands (never
// compiled; scanned as text). The widened and routed forms must pass.
fn wire_time_ns(payload_bytes: u64, bandwidth_bps: u64) -> u64 {
    payload_bytes * 1_000_000_000 / bandwidth_bps
}

fn drain_estimate(queued_bytes: u64, rate: u64) -> u64 {
    queued_bytes * 8 / rate * 1_000_000_000
}

fn widened(payload_bytes: u64, bandwidth_bps: u64) -> u64 {
    ((payload_bytes as u128 * 1_000_000_000u128) / bandwidth_bps as u128) as u64
}

fn routed(payload_bytes: u64, bandwidth_bps: u64) -> u64 {
    widemath::mul_div_ceil(payload_bytes, 1_000_000_000, bandwidth_bps)
}

fn saturating_is_explicit(size_bytes: u64, copies: u64) -> u64 {
    size_bytes.saturating_mul(copies)
}

fn unrelated_scale(score: u64, weight: u64) -> u64 {
    score * weight
}
