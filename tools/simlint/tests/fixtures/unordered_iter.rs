// Fixture: hash-collection iteration reaching behaviour.
use std::collections::{HashMap, HashSet};

struct Overlay {
    per_stone: HashMap<u64, u64>,
}

impl Overlay {
    fn drain_counts(&mut self) -> Vec<(u64, u64)> {
        self.per_stone.drain().collect()
    }
}

fn visit(live: HashSet<u32>) {
    for id in &live {
        schedule(*id);
    }
}

fn schedule(_id: u32) {}
