// Fixture: the helper a hot root reaches cross-file; its unwrap should
// carry the call chain (never compiled; scanned as text).

pub fn helper(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
