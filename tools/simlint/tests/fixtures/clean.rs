// Fixture: deterministic sim code — nothing to report.
use std::collections::BTreeMap;

struct World {
    queues: BTreeMap<u32, Vec<u64>>,
}

impl World {
    fn drain_in_order(&mut self) -> Vec<(u32, Vec<u64>)> {
        // BTreeMap iteration order is the key order: deterministic.
        std::mem::take(&mut self.queues).into_iter().collect()
    }
}

fn draw(rng: &mut impl rand::Rng) -> u64 {
    // Drawing from the kernel's seeded RNG is the sanctioned path.
    rng.gen()
}
