// Fixture: allocations on hot paths (never compiled; scanned as text).
// The directive seeds `entry` as a hot root reaching two call levels.
// simlint: hot-root(entry@2)

fn entry(xs: &[u64]) {
    let v = vec![1u64];
    let mut grown = Vec::new();
    grown.push(xs.len());
    step1(v, grown);
}

fn step1(v: Vec<u64>, g: Vec<usize>) {
    let label = format!("{}:{}", v.len(), g.len());
    reuse_scratch(label.len());
    deep(label);
}

fn deep(label: String) {
    // simlint: allow(alloc-in-hot-path, fixture: sanctioned cold-site allocation at depth two)
    let owned = label.to_string();
    beyond(owned);
}

fn reuse_scratch(n: usize) {
    let mut buf = std::mem::take(&mut scratch());
    buf.push(n);
    put_back(buf);
}

fn beyond(s: String) {
    let _ = s.to_owned();
}
