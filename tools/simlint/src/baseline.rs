//! JSON findings artifact and baseline diffing.
//!
//! No serde offline, so both the emitter and the (tiny, findings-shaped)
//! parser are hand-rolled. Baseline matching is **line-insensitive**: a
//! finding matches a baseline entry by `(file, rule, message)` multiset,
//! so unrelated edits that shift line numbers neither resurrect old
//! findings nor mask new ones of the same shape beyond the baselined
//! count.

use std::collections::BTreeMap;

use crate::Finding;

/// Renders findings as the versioned JSON artifact.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 3,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": {}, ", quote(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"column\": {}, ", f.column));
        out.push_str(&format!("\"rule\": {}, ", quote(f.rule.name())));
        out.push_str(&format!("\"message\": {}", quote(&f.message)));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One baseline entry: the line-insensitive identity of a finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineKey {
    /// Repo-relative file path.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Finding message.
    pub message: String,
}

impl BaselineKey {
    fn of(f: &Finding) -> BaselineKey {
        BaselineKey {
            file: f.file.clone(),
            rule: f.rule.name().to_string(),
            message: f.message.clone(),
        }
    }
}

/// Parses a findings JSON document (ours or hand-maintained with the
/// same shape) into baseline keys.
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineKey>, String> {
    let value = json::parse(src)?;
    let obj = value.as_object().ok_or("baseline root must be an object")?;
    if let Some(version) = obj.get("version") {
        if version.as_f64() != Some(3.0) {
            return Err(format!("unsupported baseline version {version:?} (want 3)"));
        }
    }
    let findings = obj
        .get("findings")
        .and_then(Value::as_array)
        .ok_or("baseline must have a \"findings\" array")?;
    let mut out = Vec::new();
    for (i, f) in findings.iter().enumerate() {
        let f = f.as_object().ok_or_else(|| format!("finding #{i} must be an object"))?;
        let field = |name: &str| -> Result<String, String> {
            f.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("finding #{i} missing string field \"{name}\""))
        };
        out.push(BaselineKey { file: field("file")?, rule: field("rule")?, message: field("message")? });
    }
    Ok(out)
}

/// Returns the findings NOT covered by the baseline: each baseline key
/// absorbs up to its multiplicity of matching findings.
pub fn new_findings(findings: &[Finding], baseline: &[BaselineKey]) -> Vec<Finding> {
    let mut budget: BTreeMap<&BaselineKey, usize> = BTreeMap::new();
    for k in baseline {
        *budget.entry(k).or_insert(0) += 1;
    }
    findings
        .iter()
        .filter(|f| {
            let key = BaselineKey::of(f);
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            }
        })
        .cloned()
        .collect()
}

use json::Value;

/// A minimal JSON value parser — enough for the findings artifact.
mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false` (parsed for completeness; findings artifacts
        /// carry no booleans, so nothing outside tests reads the payload)
        #[cfg_attr(not(test), allow(dead_code))]
        Bool(bool),
        /// Any number (kept as f64; line numbers fit exactly).
        Number(f64),
        /// String
        Str(String),
        /// Array
        Array(Vec<Value>),
        /// Object
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// The value as an object map, if it is one.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The value as an array, if it is one.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        /// The value as a string slice, if it is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a number, if it is one.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a bool, if it is one.
        #[cfg_attr(not(test), allow(dead_code))]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(src: &str) -> Result<Value, String> {
        let bytes = src.as_bytes();
        let mut i = 0;
        let v = value(bytes, &mut i)?;
        skip_ws(bytes, &mut i);
        if i != bytes.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(Value::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(_) => number(b, i),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, text: &str, v: Value) -> Result<Value, String> {
        if b[*i..].starts_with(text.as_bytes()) {
            *i += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", *i))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Value, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        *i += 1; // opening quote
        let mut out = String::new();
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *i))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *i)),
                    }
                    *i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = &b[*i..];
                    let ch_len = utf8_len(s[0]);
                    let chunk = s.get(..ch_len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    *i += ch_len;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // [
        let mut out = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *i)),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // {
        let mut out = BTreeMap::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Value::Object(out));
        }
        loop {
            skip_ws(b, i);
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected object key at byte {}", *i));
            }
            let key = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", *i));
            }
            *i += 1;
            out.insert(key, value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json;

    #[test]
    fn parser_covers_scalars_and_nesting() {
        let v = json::parse(r#"{"a": [1, 2.5, true, null, "sA"], "b": {"c": false}}"#)
            .expect("parses");
        let obj = v.as_object().expect("object root");
        let arr = obj.get("a").and_then(json::Value::as_array).expect("array");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[4].as_str(), Some("sA"));
        let b = obj.get("b").and_then(json::Value::as_object).expect("nested");
        assert_eq!(b.get("c").and_then(json::Value::as_bool), Some(false));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2] trailing").is_err());
        assert!(json::parse("\"unterminated").is_err());
    }
}
