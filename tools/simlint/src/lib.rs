//! # simlint — determinism static analysis for the simulation substrate
//!
//! The experiment harness's credibility rests on bit-identical replays:
//! the same seed must produce the same schedule, the same figures, the
//! same report. This linter scans the sim-path crates for the constructs
//! that historically break that promise:
//!
//! * **wall-clock** — `Instant::now()` / `SystemTime` in simulation code.
//!   Virtual time must come from the kernel clock (`SimTime`); wall-clock
//!   reads make results depend on host load.
//! * **unordered-iter** — iterating a `HashMap`/`HashSet` (`iter`, `keys`,
//!   `values`, `into_iter`, `drain`, `for _ in map`). Hash iteration order
//!   is unspecified and (with a randomized hasher) differs between
//!   processes; if it reaches scheduling or output, replays diverge.
//! * **adhoc-rng** — RNG construction outside the kernel's seeded
//!   `StdRng` (`thread_rng`, `from_entropy`, `rand::random`). Every
//!   random draw must descend from the experiment seed.
//! * **thread-spawn** — `std::thread::spawn` in single-threaded sim
//!   crates. The DES kernel is the only scheduler; free-running threads
//!   reintroduce host-dependent interleavings. (Scoped fork/join
//!   parallelism in compute kernels is fine and not matched.)
//!
//! Findings carry `file:line` so they paste into an editor. A finding is
//! suppressed by a `// simlint: allow(<rule>)` comment on the same line
//! or the line directly above. Per-path rule configuration lives in
//! [`ruleset_for`]: genuinely threaded crates (the datatap transport, the
//! EVPath overlay, the threaded pipeline bridge) are exempt from the
//! threading/wall-clock rules — but **never** from the RNG rules.
//!
//! The scanner is a hand-rolled token scanner rather than a full parser:
//! the container image has no network access to fetch `syn`, and the four
//! rules only need comment/string-aware token windows, not a syntax tree.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The determinism rules simlint enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) in sim code.
    WallClock,
    /// `HashMap`/`HashSet` iteration whose order can leak into behaviour.
    UnorderedIter,
    /// RNG construction not derived from the experiment seed.
    AdhocRng,
    /// Free-running `std::thread::spawn` in single-threaded sim crates.
    ThreadSpawn,
}

impl Rule {
    /// The rule's name as used in diagnostics and `allow(...)` escapes.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedIter => "unordered-iter",
            Rule::AdhocRng => "adhoc-rng",
            Rule::ThreadSpawn => "thread-spawn",
        }
    }
}

/// Which rules apply to a given file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSet {
    /// Enforce [`Rule::WallClock`].
    pub wall_clock: bool,
    /// Enforce [`Rule::UnorderedIter`].
    pub unordered_iter: bool,
    /// Enforce [`Rule::AdhocRng`].
    pub adhoc_rng: bool,
    /// Enforce [`Rule::ThreadSpawn`].
    pub thread_spawn: bool,
}

impl RuleSet {
    /// All rules on — the default for sim-path crates.
    pub fn all() -> RuleSet {
        RuleSet { wall_clock: true, unordered_iter: true, adhoc_rng: true, thread_spawn: true }
    }

    fn enabled(&self, rule: Rule) -> bool {
        match rule {
            Rule::WallClock => self.wall_clock,
            Rule::UnorderedIter => self.unordered_iter,
            Rule::AdhocRng => self.adhoc_rng,
            Rule::ThreadSpawn => self.thread_spawn,
        }
    }
}

/// One diagnostic: a determinism hazard at a specific line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// File the hazard is in (as passed to the linter).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// A source token: an identifier or a single punctuation char.
#[derive(Clone, Debug)]
struct Tok {
    text: String,
    line: usize,
}

/// Lexer output: the token stream plus the `allow(...)` escapes found in
/// line comments, keyed by the comment's line number.
struct Lexed {
    toks: Vec<Tok>,
    allows: BTreeMap<usize, BTreeSet<String>>,
}

/// Strips comments, strings and char literals; splits the rest into
/// identifier tokens and single-char punctuation, all tagged with their
/// line number.
fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                parse_allow(&src[start..i], line, &mut allows);
            }
            '/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Lifetime or char literal. A char literal closes with a
                // quote within a few bytes; a lifetime never does.
                if b.get(i + 1) == Some(&b'\\')
                    || (b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\''))
                {
                    // Char literal: skip to the closing quote.
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                } else {
                    // Lifetime: skip the quote; the label lexes as an ident.
                    i += 1;
                }
            }
            _ if c == '_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || (b[i] as char).is_ascii_alphanumeric()) {
                    i += 1;
                }
                let text = &src[start..i];
                // Raw/byte string prefix? (r"...", r#"..."#, b"...", br#"..."#)
                if matches!(text, "r" | "b" | "br") && raw_string_ahead(b, i) {
                    i = skip_raw_string(b, i, &mut line);
                } else {
                    toks.push(Tok { text: text.to_string(), line });
                }
            }
            _ if c.is_ascii_digit() => {
                while i < b.len()
                    && (b[i] == b'_' || b[i] == b'.' || (b[i] as char).is_ascii_alphanumeric())
                {
                    i += 1;
                }
            }
            _ if c.is_whitespace() => i += 1,
            _ => {
                toks.push(Tok { text: c.to_string(), line });
                i += 1;
            }
        }
    }
    Lexed { toks, allows }
}

/// True if position `i` starts the `#*"` tail of a raw string literal.
fn raw_string_ahead(b: &[u8], mut i: usize) -> bool {
    while b.get(i) == Some(&b'#') {
        i += 1;
    }
    b.get(i) == Some(&b'"')
}

/// Skips a raw string starting at the `#*"` tail, returning the index
/// just past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && b.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Parses `simlint: allow(rule, rule)` out of one line comment's body.
fn parse_allow(comment: &str, line: usize, allows: &mut BTreeMap<usize, BTreeSet<String>>) {
    let t = comment.trim();
    let Some(rest) = t.strip_prefix("simlint:") else { return };
    let rest = rest.trim();
    let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) else {
        return;
    };
    let set = allows.entry(line).or_default();
    for rule in inner.split(',') {
        set.insert(rule.trim().to_string());
    }
}

const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];

/// Lints one file's source under `rules`, honouring `allow(...)` escapes.
pub fn lint_source(path: &Path, src: &str, rules: &RuleSet) -> Vec<Finding> {
    let Lexed { toks, allows } = lex(src);
    let mut findings: Vec<Finding> = Vec::new();
    let push = |findings: &mut Vec<Finding>, line: usize, rule: Rule, message: String| {
        if !rules.enabled(rule) || findings.iter().any(|f| f.line == line && f.rule == rule) {
            return; // one diagnostic per (line, rule)
        }
        findings.push(Finding { file: path.to_path_buf(), line, rule, message });
    };

    let is = |i: usize, s: &str| toks.get(i).is_some_and(|t| t.text == s);
    let path_sep = |i: usize| is(i, ":") && is(i + 1, ":");

    // ---- token-window rules -------------------------------------------
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.text == "Instant" && path_sep(i + 1) && is(i + 3, "now") {
            push(
                &mut findings,
                t.line,
                Rule::WallClock,
                "Instant::now() reads the wall clock; use the kernel's SimTime (or an \
                 injected Clock) so replays are host-independent"
                    .into(),
            );
        }
        if t.text == "SystemTime" {
            push(
                &mut findings,
                t.line,
                Rule::WallClock,
                "SystemTime is wall-clock time; sim code must derive time from SimTime".into(),
            );
        }
        if t.text == "thread_rng" {
            push(
                &mut findings,
                t.line,
                Rule::AdhocRng,
                "thread_rng() is OS-seeded; draw from the kernel's seeded StdRng instead".into(),
            );
        }
        if t.text == "from_entropy" {
            push(
                &mut findings,
                t.line,
                Rule::AdhocRng,
                "from_entropy() bypasses the experiment seed; use seed_from_u64 from the \
                 kernel seed"
                    .into(),
            );
        }
        if t.text == "random" && i >= 3 && toks[i - 3].text == "rand" && path_sep(i - 2) {
            push(
                &mut findings,
                t.line,
                Rule::AdhocRng,
                "rand::random() is OS-seeded; draw from the kernel's seeded StdRng instead".into(),
            );
        }
        if t.text == "thread" && path_sep(i + 1) && is(i + 3, "spawn") {
            push(
                &mut findings,
                t.line,
                Rule::ThreadSpawn,
                "thread::spawn in a sim crate adds host-scheduled concurrency; the DES kernel \
                 must be the only scheduler"
                    .into(),
            );
        }
    }

    // ---- unordered-iter: declaration pass, then iteration pass --------
    if rules.unordered_iter {
        let mut hash_idents: BTreeSet<String> = BTreeSet::new();
        for i in 0..toks.len() {
            if toks[i].text != "HashMap" && toks[i].text != "HashSet" {
                continue;
            }
            // Unwind a leading path (`std :: collections :: HashMap`).
            let mut j = i;
            while j >= 3
                && toks[j - 1].text == ":"
                && toks[j - 2].text == ":"
                && toks[j - 3].text.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                j -= 3;
            }
            // `name : HashMap<...>` — a binding or struct-field annotation.
            if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text != ":" {
                let name = &toks[j - 2].text;
                if name.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                    hash_idents.insert(name.clone());
                }
            }
            // `let [mut] name = ... HashMap::new()` (untyped binding):
            // walk back to the nearest `let` within the statement.
            let mut k = i;
            while k > 0 && toks[k].text != ";" && toks[k].text != "let" && i - k < 24 {
                k -= 1;
            }
            if toks.get(k).is_some_and(|t| t.text == "let") {
                let mut n = k + 1;
                if toks.get(n).is_some_and(|t| t.text == "mut") {
                    n += 1;
                }
                if let Some(t) = toks.get(n) {
                    if t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                        hash_idents.insert(t.text.clone());
                    }
                }
            }
        }

        for i in 0..toks.len() {
            let t = &toks[i];
            // `name.iter()` / `self.name.drain(..)` …
            if hash_idents.contains(&t.text)
                && is(i + 1, ".")
                && toks.get(i + 2).is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            {
                let method = toks[i + 2].text.clone();
                push(
                    &mut findings,
                    t.line,
                    Rule::UnorderedIter,
                    format!(
                        "`{}` is a hash collection; `.{}()` iterates in unspecified order — \
                         use a BTreeMap/BTreeSet or sort before use",
                        t.text, method
                    ),
                );
            }
            // `for x in &name {` / `for (k, v) in name {`
            if t.text == "in" {
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| t.text == "&" || t.text == "mut") {
                    j += 1;
                }
                if let Some(nm) = toks.get(j) {
                    if hash_idents.contains(&nm.text) && is(j + 1, "{") {
                        let (line, name) = (nm.line, nm.text.clone());
                        push(
                            &mut findings,
                            line,
                            Rule::UnorderedIter,
                            format!(
                                "`for … in {name}` iterates a hash collection in unspecified \
                                 order — use a BTreeMap/BTreeSet or sort before use"
                            ),
                        );
                    }
                }
            }
        }
    }

    // ---- apply allow(...) escapes -------------------------------------
    findings.retain(|f| {
        let allowed = |line: usize| {
            allows
                .get(&line)
                .is_some_and(|set| set.contains(f.rule.name()) || set.contains("all"))
        };
        !(allowed(f.line) || (f.line > 1 && allowed(f.line - 1)))
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// The rule configuration for a workspace-relative path, or `None` if the
/// file is out of scope.
///
/// This table is the single source of truth for which crates are "sim
/// path" (everything on by default) versus genuinely threaded transports
/// (threading rules off, **RNG rules always on**).
pub fn ruleset_for(rel: &Path) -> Option<RuleSet> {
    let p = rel.to_string_lossy().replace('\\', "/");
    if !p.ends_with(".rs") {
        return None;
    }
    let in_scope = p.starts_with("src/") || p.starts_with("crates/");
    if !in_scope {
        return None; // vendor stubs, tools, benches, integration tests
    }
    // The bench crate measures wall-clock by design.
    if p.starts_with("crates/bench/") {
        return None;
    }
    let mut rs = RuleSet::all();
    // datatap is the threaded two-phase transport: its tests exercise real
    // writer/reader threads, and its timeout path owns an injected clock.
    if p.starts_with("crates/datatap/") {
        rs.thread_spawn = false;
    }
    // The EVPath overlay runs stones on real worker threads.
    if p.starts_with("crates/evpath/") {
        rs.thread_spawn = false;
    }
    // simpar is the deterministic fork/join substrate: scoped spawns are
    // its whole purpose (and its merge order makes them safe), so the
    // thread rule is off — but it must stay clock- and RNG-free, since
    // every analytics kernel's determinism rests on it.
    if p.starts_with("crates/simpar/") {
        rs.thread_spawn = false;
    }
    // The threaded pipeline bridge is honest wall-clock/threads territory —
    // but still must not construct OS-seeded RNGs.
    if p == "crates/iocontainers/src/threaded.rs" {
        rs.wall_clock = false;
        rs.thread_spawn = false;
    }
    // simfault deliberately owns per-plan RNGs (message-loss sampling) and
    // is NOT exempted from anything: its samplers derive from the plan seed
    // via `seed_from_u64`, which is the sanctioned construction everywhere,
    // so every rule stays on.
    Some(rs)
}

/// Recursively collects the `.rs` files under `root` that are in scope,
/// in sorted (deterministic) order.
fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            let path = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                walk(&path, out)?;
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    Ok(out)
}

/// Lints every in-scope file under the workspace `root`. Paths in the
/// returned findings are workspace-relative.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for abs in collect_files(root)? {
        let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
        let Some(rules) = ruleset_for(&rel) else { continue };
        let src = std::fs::read_to_string(&abs)?;
        findings.extend(lint_source(&rel, &src, &rules));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, &RuleSet::all())
    }

    #[test]
    fn instant_now_is_flagged_with_line() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
        assert_eq!(f[0].line, 2);
        assert!(f[0].to_string().starts_with("test.rs:2: [wall-clock]"));
    }

    #[test]
    fn launch_model_instant_variant_is_not_wall_clock() {
        let src = "fn f() { let m = LaunchModel::Instant; g(Instant); }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = "// Instant::now() in a comment\nfn f() { let s = \"thread_rng()\"; }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_escape_suppresses_same_and_next_line() {
        let src = "// simlint: allow(adhoc-rng)\nlet r = thread_rng();\n\
                   let q = thread_rng(); // simlint: allow(adhoc-rng)\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_of_other_rule_does_not_suppress() {
        let src = "// simlint: allow(wall-clock)\nlet r = thread_rng();\n";
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn hashmap_iteration_is_flagged_lookup_is_not() {
        let src = "fn f(m: HashMap<u32, u32>) {\n    let _ = m.get(&1);\n    \
                   for (k, v) in &m {\n        use_it(k, v);\n    }\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnorderedIter);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn let_bound_hashset_drain_is_flagged() {
        let src = "fn f() {\n    let mut s = HashSet::new();\n    s.insert(1);\n    \
                   for x in s.drain() { g(x); }\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn struct_field_hash_iteration_is_flagged() {
        let src = "struct S { per_stone: HashMap<u64, u64> }\nimpl S {\n    fn g(&self) { \
                   for k in self.per_stone.keys() { h(k); } }\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnorderedIter);
    }

    #[test]
    fn btreemap_is_clean() {
        let src = "fn f(m: BTreeMap<u32, u32>) { for (k, v) in &m { g(k, v); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn thread_spawn_respects_ruleset() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(lint(src).len(), 1);
        let mut rs = RuleSet::all();
        rs.thread_spawn = false;
        assert!(lint_source(Path::new("t.rs"), src, &rs).is_empty());
    }

    #[test]
    fn threaded_bridge_keeps_rng_rules() {
        let rs = ruleset_for(Path::new("crates/iocontainers/src/threaded.rs")).unwrap();
        assert!(!rs.wall_clock && !rs.thread_spawn);
        assert!(rs.adhoc_rng && rs.unordered_iter);
    }

    #[test]
    fn simpar_is_thread_exempt_but_rng_checked() {
        let rs = ruleset_for(Path::new("crates/simpar/src/lib.rs")).unwrap();
        assert!(!rs.thread_spawn);
        assert!(rs.wall_clock && rs.adhoc_rng && rs.unordered_iter);
    }

    #[test]
    fn vendor_and_tools_are_out_of_scope() {
        assert!(ruleset_for(Path::new("vendor/rand/src/lib.rs")).is_none());
        assert!(ruleset_for(Path::new("tools/simlint/src/lib.rs")).is_none());
        assert!(ruleset_for(Path::new("crates/bench/benches/transport.rs")).is_none());
        assert!(ruleset_for(Path::new("crates/sim-core/src/kernel.rs")).is_some());
    }

    #[test]
    fn simfault_is_fully_in_scope_and_seeded_rng_passes() {
        // The fault-injection crate gets every rule: its loss samplers are
        // only sanctioned because they derive from the plan seed.
        let rs = ruleset_for(Path::new("crates/simfault/src/lib.rs")).unwrap();
        assert!(rs.wall_clock && rs.adhoc_rng && rs.unordered_iter && rs.thread_spawn);
        let seeded = "fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed ^ 0xFA17); }";
        assert!(
            lint_source(Path::new("crates/simfault/src/lib.rs"), seeded, &rs).is_empty(),
            "seed_from_u64 is the sanctioned construction"
        );
        let adhoc = "fn f() { let rng = rand::thread_rng(); }";
        assert_eq!(
            lint_source(Path::new("crates/simfault/src/lib.rs"), adhoc, &rs)
                .iter()
                .filter(|f| f.rule == Rule::AdhocRng)
                .count(),
            1,
            "OS-seeded construction stays flagged even in simfault"
        );
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let _ = r#\"thread_rng()\"#; x }";
        assert!(lint(src).is_empty());
    }
}
