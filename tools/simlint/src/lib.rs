//! # simlint — determinism static analysis for the simulation substrate
//!
//! The experiment harness's credibility rests on bit-identical replays:
//! the same seed must produce the same schedule, the same figures, the
//! same report. This linter parses every sim-path crate into an item
//! AST (via the vendored `syn` stand-in), resolves `use` aliases, and
//! enforces seven rule classes:
//!
//! * **wall-clock** — `Instant::now()` / `SystemTime` in simulation
//!   code. Virtual time must come from the kernel clock (`SimTime`).
//! * **unordered-iter** — hash iteration whose order flow could not be
//!   resolved by the dataflow pass (the conservative verdict).
//! * **order-taint** — hash iteration whose order *provably* reaches an
//!   order-observable sink (event scheduling, exported output, trace
//!   hashes). The dataflow pass also proves the inverse: iterations
//!   consumed commutatively (`+=`, `insert`, `max`, collects into
//!   ordered or re-keyed collections) pass with no escape at all.
//! * **adhoc-rng** — RNG construction outside the kernel's seeded
//!   `StdRng` (`thread_rng`, `from_entropy`, `rand::random`).
//! * **thread-spawn** — `std::thread::spawn` in single-threaded sim
//!   crates; the DES kernel is the only scheduler.
//! * **panic-path** — `unwrap`/`expect`, `panic!`-family macros, and
//!   hazardous indexing (literal/arithmetic indices, range slicing) in
//!   engine hot paths. Test code is exempt; everything else must
//!   propagate typed errors.
//! * **unchecked-width-math** — u64 multiply chains over
//!   bytes × bandwidth/time-scale operands outside
//!   `sim_core::widemath`'s u128 ceiling helpers.
//!
//! Findings carry `file:line:column` spans. A finding is suppressed by
//! `// simlint: allow(<rule>, <reason>)` on the same line or the line
//! directly above — the reason is **mandatory**; reasonless escapes are
//! ignored and the unsuppressed finding says why. Per-path rule
//! configuration lives in [`ruleset_for`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod callgraph;
mod engine;
mod rules;
mod taint;

/// The determinism rules simlint enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) in sim code.
    WallClock,
    /// Hash iteration with unresolved order flow.
    UnorderedIter,
    /// Hash iteration order proven to reach an order-observable sink.
    OrderTaint,
    /// RNG construction not derived from the experiment seed.
    AdhocRng,
    /// Free-running `std::thread::spawn` in single-threaded sim crates.
    ThreadSpawn,
    /// Panicking constructs in engine hot paths.
    PanicPath,
    /// Unwidened u64 arithmetic on bytes/bandwidth/time operands.
    UncheckedWidthMath,
    /// Heap allocation reachable from a configured hot root (v3,
    /// interprocedural — see [`callgraph`]).
    AllocInHotPath,
    /// A reasoned `allow(...)` escape that no longer suppresses any
    /// finding (v3; workspace passes only).
    StaleEscape,
}

impl Rule {
    /// The rule's name as used in diagnostics and `allow(...)` escapes.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedIter => "unordered-iter",
            Rule::OrderTaint => "order-taint",
            Rule::AdhocRng => "adhoc-rng",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::PanicPath => "panic-path",
            Rule::UncheckedWidthMath => "unchecked-width-math",
            Rule::AllocInHotPath => "alloc-in-hot-path",
            Rule::StaleEscape => "stale-escape",
        }
    }

    /// Every rule, for stats tables.
    pub fn all_rules() -> &'static [Rule] {
        &[
            Rule::WallClock,
            Rule::UnorderedIter,
            Rule::OrderTaint,
            Rule::AdhocRng,
            Rule::ThreadSpawn,
            Rule::PanicPath,
            Rule::UncheckedWidthMath,
            Rule::AllocInHotPath,
            Rule::StaleEscape,
        ]
    }
}

/// Which rules apply to a given file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleSet {
    /// Enforce [`Rule::WallClock`].
    pub wall_clock: bool,
    /// Enforce [`Rule::UnorderedIter`].
    pub unordered_iter: bool,
    /// Enforce [`Rule::OrderTaint`].
    pub order_taint: bool,
    /// Enforce [`Rule::AdhocRng`].
    pub adhoc_rng: bool,
    /// Enforce [`Rule::ThreadSpawn`].
    pub thread_spawn: bool,
    /// Enforce [`Rule::PanicPath`].
    pub panic_path: bool,
    /// Enforce [`Rule::UncheckedWidthMath`].
    pub width_math: bool,
    /// Enforce [`Rule::AllocInHotPath`] (workspace passes only — needs
    /// the call graph, so [`lint_source`] never fires it).
    pub alloc_hot: bool,
    /// Enforce [`Rule::StaleEscape`] (workspace passes only).
    pub stale_escape: bool,
}

impl RuleSet {
    /// Every rule on — what fixtures and the hot-path files get.
    pub fn all() -> RuleSet {
        RuleSet {
            wall_clock: true,
            unordered_iter: true,
            order_taint: true,
            adhoc_rng: true,
            thread_spawn: true,
            panic_path: true,
            width_math: true,
            alloc_hot: true,
            stale_escape: true,
        }
    }

    /// The sim-path default: the four legacy rules plus the order-taint
    /// dataflow; panic-path and width-math are opt-in per hot path. The
    /// interprocedural v3 rules are on everywhere — allocation is only
    /// flagged in *hot* functions, and stale escapes are hazards in any
    /// file.
    pub fn sim_default() -> RuleSet {
        RuleSet { panic_path: false, width_math: false, ..RuleSet::all() }
    }
}

/// One diagnostic: a determinism hazard at a specific span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path (as passed to the linter).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.column,
            self.rule.name(),
            self.message
        )
    }
}

/// Lints one file's source under `rules`, honouring `allow(...)`
/// escapes. Fails with a `line:col: message` string if the file does not
/// parse.
pub fn lint_source(path: &Path, src: &str, rules: &RuleSet) -> Result<Vec<Finding>, String> {
    lint_source_with(path, src, rules, &BTreeSet::new())
}

/// [`lint_source`] with extra crate-level hash-typed names (struct
/// fields declared in sibling files of the same crate).
pub fn lint_source_with(
    path: &Path,
    src: &str,
    rules: &RuleSet,
    extra_hash_names: &BTreeSet<String>,
) -> Result<Vec<Finding>, String> {
    let file = syn::parse_file(src).map_err(|e| e.to_string())?;
    let cx = engine::FileCx::build(&file.items, src);
    let flat = engine::flatten(&file.items);
    let mut fns = Vec::new();
    engine::for_each_fn(&file.items, false, &mut fns);

    let mut hash_names = taint::collect_hash_names(&cx, &flat);
    hash_names.extend(extra_hash_names.iter().cloned());

    let mut raw = Vec::new();
    rules::token_rules(&cx, &flat, rules, &mut raw);
    if rules.panic_path {
        rules::panic_path(&fns, &mut raw);
    }
    if rules.width_math {
        rules::width_math(&fns, &mut raw);
    }
    taint::analyze(&cx, &fns, &hash_names, rules, &mut raw);

    let rel = path.to_string_lossy().replace('\\', "/");
    let mut findings = Vec::new();
    rules::finalize(&rel, &cx, raw, &mut findings);
    findings.sort_by_key(|f| (f.line, f.column, f.rule));
    findings.dedup_by_key(|f| (f.line, f.column, f.rule));
    Ok(findings)
}

/// The rule configuration for a workspace-relative path, or `None` if
/// the file is out of scope.
///
/// This table is the single source of truth for which crates are "sim
/// path" (sim defaults on) versus genuinely threaded transports
/// (threading rules off, **RNG rules always on**), and for which hot
/// paths additionally get the panic-path and width-math classes.
pub fn ruleset_for(rel: &Path) -> Option<RuleSet> {
    let p = rel.to_string_lossy().replace('\\', "/");
    if !p.ends_with(".rs") {
        return None;
    }
    let in_scope = p.starts_with("src/") || p.starts_with("crates/");
    if !in_scope {
        return None; // vendor stubs, tools, benches, integration tests
    }
    // The bench crate measures wall-clock by design.
    if p.starts_with("crates/bench/") {
        return None;
    }
    let mut rs = RuleSet::sim_default();
    // datatap is the threaded two-phase transport: its tests exercise real
    // writer/reader threads, and its timeout path owns an injected clock.
    if p.starts_with("crates/datatap/") {
        rs.thread_spawn = false;
    }
    // The EVPath overlay runs stones on real worker threads.
    if p.starts_with("crates/evpath/") {
        rs.thread_spawn = false;
    }
    // simpar is the deterministic fork/join substrate: scoped spawns are
    // its whole purpose (and its merge order makes them safe), so the
    // thread rule is off — but it must stay clock- and RNG-free, since
    // every analytics kernel's determinism rests on it.
    if p.starts_with("crates/simpar/") {
        rs.thread_spawn = false;
    }
    // The threaded pipeline bridge is honest wall-clock/threads territory —
    // but still must not construct OS-seeded RNGs.
    if p == "crates/iocontainers/src/threaded.rs" {
        rs.wall_clock = false;
        rs.thread_spawn = false;
    }
    // The step-streaming engine is threaded-transport territory like
    // datatap (its unit tests spawn real pausers/pullers), and its
    // library paths carry live experiment data: a panic there loses every
    // attached pipeline at once, so failures must be typed.
    if p.starts_with("crates/stream/") {
        rs.thread_spawn = false;
    }
    // simfault deliberately owns per-plan RNGs (message-loss sampling) and
    // is NOT exempted from anything: its samplers derive from the plan seed
    // via `seed_from_u64`, which is the sanctioned construction everywhere,
    // so every rule stays on.

    // Engine hot paths: a panic mid-run loses the whole experiment, so
    // failure must surface as typed errors.
    let panic_scope = p.starts_with("crates/sim-core/src/")
        || p.starts_with("crates/simnet/src/")
        || p.starts_with("crates/stream/src/")
        || p == "crates/iocontainers/src/pipeline.rs"
        || p == "crates/iocontainers/src/policy.rs"
        || p == "crates/iocontainers/src/protocol.rs";
    if panic_scope {
        rs.panic_path = true;
    }
    // Bytes × bandwidth × time arithmetic lives here; everything must
    // route through sim_core::widemath. widemath.rs itself is the
    // sanctioned u128 sink and is excluded.
    let width_scope = p.starts_with("crates/simnet/src/")
        || p == "crates/datatap/src/cost.rs"
        || p == "crates/iocontainers/src/pipeline.rs";
    if width_scope && p != "crates/sim-core/src/widemath.rs" {
        rs.width_math = true;
    }
    Some(rs)
}

/// Recursively collects the `.rs` files under `root` that are in scope,
/// in sorted (deterministic) order.
fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            let path = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                walk(&path, out)?;
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    Ok(out)
}

/// The crate-grouping key of a workspace-relative path (hash-typed field
/// names are shared crate-wide for the taint pass).
fn crate_key(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => format!("crates/{}", parts.next().unwrap_or("")),
        other => other.unwrap_or("").to_string(),
    }
}

/// One file handed to [`lint_units`]: workspace-relative path, raw
/// source, and its rule configuration.
pub struct SourceUnit {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// The file's source text.
    pub src: String,
    /// Which rules apply.
    pub rules: RuleSet,
}

/// How much one reasoned escape comment earned: the number of findings
/// it suppressed across every pass. Zero means the escape is stale (and
/// reported, when the file's ruleset has `stale_escape` on).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EscapeUse {
    /// File owning the escape comment.
    pub file: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// The rule text as written inside `allow(...)` (may be `all`).
    pub rule: String,
    /// Findings suppressed by this escape.
    pub consumed: usize,
}

/// Workspace-level lint statistics (`cargo xtask lint --stats`).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Files linted.
    pub files: usize,
    /// Function items seen by the call graph (tests included).
    pub functions: usize,
    /// Resolved call-graph edges (call sites with a proven callee).
    pub resolved_calls: usize,
    /// Call sites left as conservative unknown-callee edges.
    pub unknown_calls: usize,
    /// Functions reachable from the hot-root set.
    pub hot_functions: usize,
    /// Post-escape finding counts per rule name.
    pub per_rule: BTreeMap<&'static str, usize>,
    /// Every reasoned escape with its consumption count.
    pub escapes: Vec<EscapeUse>,
}

/// Findings plus the statistics of the run that produced them.
pub struct Report {
    /// All unsuppressed findings, ordered by file then span.
    pub findings: Vec<Finding>,
    /// The run's statistics.
    pub stats: Stats,
}

/// Lints a set of files as one workspace: per-file rules plus the
/// interprocedural v3 passes (call-graph reachability, alloc-in-hot-path,
/// hot-chain context on panic/order findings, stale-escape). This is the
/// engine behind [`lint_workspace`]; fixtures drive it directly with
/// in-memory multi-file sets.
pub fn lint_units(units: &[SourceUnit]) -> Result<Report, String> {
    let mut files = Vec::new();
    for u in units {
        files.push(syn::parse_file(&u.src).map_err(|e| format!("{}: {e}", u.rel))?);
    }
    let cxs: Vec<engine::FileCx> =
        units.iter().zip(&files).map(|(u, f)| engine::FileCx::build(&f.items, &u.src)).collect();

    // Crate-wide hash-typed names (fields declared in one file, iterated
    // in another).
    let mut crate_hash: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for ((u, f), cx) in units.iter().zip(&files).zip(&cxs) {
        let flat = engine::flatten(&f.items);
        crate_hash
            .entry(crate_key(&u.rel))
            .or_default()
            .extend(taint::collect_hash_names(cx, &flat));
    }

    // The workspace call graph and the hot set: built-in roots plus any
    // `// simlint: hot-root(...)` directives.
    let graph_units: Vec<(usize, String, &[syn::Item])> = units
        .iter()
        .enumerate()
        .zip(&files)
        .map(|((i, u), f)| (i, crate_key(&u.rel), f.items.as_slice()))
        .collect();
    let graph = callgraph::build(&graph_units);
    let mut roots: Vec<callgraph::HotRoot> = callgraph::DEFAULT_HOT_ROOTS
        .iter()
        .filter_map(|s| callgraph::parse_hot_root(s))
        .collect();
    for u in units {
        roots.extend(callgraph::hot_root_directives(&u.src));
    }
    let hot = callgraph::hot_set(&graph, &roots);
    let mut hot_by_unit: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
    for &ix in hot.keys() {
        hot_by_unit[graph.nodes[ix].unit].push(ix);
    }

    let mut findings = Vec::new();
    let mut stats = Stats {
        files: units.len(),
        functions: graph.nodes.len(),
        resolved_calls: graph.resolved_calls,
        unknown_calls: graph.unknown_calls,
        hot_functions: hot.len(),
        ..Stats::default()
    };

    for (i, u) in units.iter().enumerate() {
        let file = &files[i];
        let cx = &cxs[i];
        let flat = engine::flatten(&file.items);
        let mut fns = Vec::new();
        engine::for_each_fn(&file.items, false, &mut fns);

        let mut hash_names = taint::collect_hash_names(cx, &flat);
        if let Some(extra) = crate_hash.get(&crate_key(&u.rel)) {
            hash_names.extend(extra.iter().cloned());
        }

        let mut raw = Vec::new();
        rules::token_rules(cx, &flat, &u.rules, &mut raw);
        if u.rules.panic_path {
            rules::panic_path(&fns, &mut raw);
        }
        if u.rules.width_math {
            rules::width_math(&fns, &mut raw);
        }
        taint::analyze(cx, &fns, &hash_names, &u.rules, &mut raw);

        // Hot-chain context: a panic/order finding inside a hot function
        // names the call chain that reaches it.
        let hot_fn_at = |line: usize| -> Option<usize> {
            hot_by_unit[i]
                .iter()
                .copied()
                .filter(|&ix| {
                    let n = &graph.nodes[ix];
                    n.start_line <= line && line <= n.end_line
                })
                .max_by_key(|&ix| graph.nodes[ix].start_line)
        };
        for (span, rule, message) in &mut raw {
            if matches!(rule, Rule::PanicPath | Rule::OrderTaint) {
                if let Some(ix) = hot_fn_at(span.line) {
                    let info = &hot[&ix];
                    message.push_str(&format!(
                        " (hot path: {}, root {})",
                        callgraph::chain_display(&graph, &info.chain),
                        info.root
                    ));
                }
            }
        }

        // The alloc-in-hot-path rule over this unit's hot functions.
        if u.rules.alloc_hot {
            for &ix in &hot_by_unit[i] {
                let node = &graph.nodes[ix];
                let Some(f) = fns.iter().find(|f| {
                    f.item.ident.span.line == node.start_line && f.item.ident.text == node.name
                }) else {
                    continue;
                };
                let Some(body) = &f.item.body else { continue };
                let info = &hot[&ix];
                let suffix = format!(
                    " (hot path: {}, root {})",
                    callgraph::chain_display(&graph, &info.chain),
                    info.root
                );
                let mut sites = Vec::new();
                rules::alloc_sites(&body.stream, &mut sites);
                raw.extend(sites.into_iter().map(|(span, rule, mut msg)| {
                    msg.push_str(&suffix);
                    (span, rule, msg)
                }));
            }
        }

        raw.sort_by_key(|(s, r, _)| (s.line, s.column, *r));
        raw.dedup_by(|a, b| a.0.line == b.0.line && a.0.column == b.0.column && a.1 == b.1);

        let mut unit_findings = Vec::new();
        let mut consumed = BTreeMap::new();
        rules::finalize_tracked(&u.rel, cx, raw, &mut unit_findings, &mut consumed);

        // Stale escapes: reasoned allow(...) comments that suppressed
        // nothing in any pass.
        for (line, escapes) in &cx.escapes {
            for e in escapes {
                if e.reason.is_none() {
                    continue;
                }
                let used = consumed.get(&(*line, e.rule.clone())).copied().unwrap_or(0);
                stats.escapes.push(EscapeUse {
                    file: u.rel.clone(),
                    line: *line,
                    rule: e.rule.clone(),
                    consumed: used,
                });
                if used == 0 && u.rules.stale_escape {
                    unit_findings.push(Finding {
                        file: u.rel.clone(),
                        line: *line,
                        column: 1,
                        rule: Rule::StaleEscape,
                        message: format!(
                            "allow({}) no longer suppresses any finding; \
                             delete the stale escape or restore what it justified",
                            e.rule
                        ),
                    });
                }
            }
        }

        unit_findings.sort_by_key(|f| (f.line, f.column, f.rule));
        unit_findings.dedup_by_key(|f| (f.line, f.column, f.rule));
        findings.extend(unit_findings);
    }

    for f in &findings {
        *stats.per_rule.entry(f.rule.name()).or_insert(0) += 1;
    }
    Ok(Report { findings, stats })
}

/// Lints every in-scope file under the workspace `root`. Paths in the
/// returned findings are workspace-relative. Parse failures become
/// `InvalidData` IO errors naming the file.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    lint_workspace_report(root).map(|r| r.findings)
}

/// [`lint_workspace`] with the run's [`Stats`] attached.
pub fn lint_workspace_report(root: &Path) -> std::io::Result<Report> {
    let mut units = Vec::new();
    for abs in collect_files(root)? {
        let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
        let Some(rules) = ruleset_for(&rel) else { continue };
        let src = std::fs::read_to_string(&abs)?;
        units.push(SourceUnit { rel: rel.to_string_lossy().replace('\\', "/"), src, rules });
    }
    lint_units(&units)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, &RuleSet::all()).expect("fixture parses")
    }

    #[test]
    fn instant_now_is_flagged_with_span() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
        assert_eq!(f[0].line, 2);
        assert!(f[0].column > 1, "span carries a real column");
        assert!(f[0].to_string().starts_with("test.rs:2:"));
        assert!(f[0].to_string().contains("[wall-clock]"));
    }

    #[test]
    fn aliased_instant_is_still_wall_clock() {
        let src = "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn launch_model_instant_variant_is_not_wall_clock() {
        let src = "fn f() { let m = LaunchModel::Instant; g(Instant); }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = "// Instant::now() in a comment\nfn f() { let s = \"thread_rng()\"; }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "fn f() {\n// simlint: allow(adhoc-rng, fixture: sanctioned in this test)\n\
                   let r = thread_rng();\n\
                   let q = thread_rng(); // simlint: allow(adhoc-rng, fixture: ditto)\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn reasonless_allow_no_longer_suppresses() {
        let src = "fn f() {\n// simlint: allow(adhoc-rng)\nlet r = thread_rng();\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1, "legacy escapes without a reason are dead");
        assert!(f[0].message.contains("missing a reason"));
    }

    #[test]
    fn allow_of_other_rule_does_not_suppress() {
        let src = "fn f() {\n// simlint: allow(wall-clock, wrong rule)\nlet r = thread_rng();\n}\n";
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn hashmap_iteration_is_flagged_lookup_is_not() {
        let src = "fn f(m: HashMap<u32, u32>) {\n    let _ = m.get(&1);\n    \
                   for (k, v) in &m {\n        use_it(k, v);\n    }\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnorderedIter);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn let_bound_hashset_drain_is_flagged() {
        let src = "fn f() {\n    let mut s = HashSet::new();\n    s.insert(1);\n    \
                   for x in s.drain() { g(x); }\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn struct_field_hash_iteration_is_flagged() {
        let src = "struct S { per_stone: HashMap<u64, u64> }\nimpl S {\n    fn g(&self) { \
                   for k in self.per_stone.keys() { h(k); } }\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnorderedIter);
    }

    #[test]
    fn btreemap_is_clean() {
        let src = "fn f(m: BTreeMap<u32, u32>) { for (k, v) in &m { g(k, v); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn commutative_reduction_passes_without_escape() {
        let src = "fn f(m: HashMap<u32, u64>) {\n    let mut total = 0u64;\n    \
                   for (_, v) in &m {\n        total += v;\n    }\n    let _ = total;\n}\n";
        assert!(lint(src).is_empty(), "order-insensitive reduction is clean");
    }

    #[test]
    fn sum_chain_passes_without_escape() {
        let src = "fn f(m: HashMap<u32, u64>) -> u64 { m.values().sum() }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn collect_into_btree_passes_without_escape() {
        let src = "fn f(m: HashMap<u32, u64>) {\n    \
                   let v: BTreeSet<u32> = m.keys().copied().collect();\n    emit(v);\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn sorted_vec_then_sink_passes() {
        let src = "fn f(m: HashMap<u32, u64>, out: &mut Vec<u32>) {\n    \
                   let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort();\n    \
                   out.extend(v);\n}\n";
        assert!(lint(src).is_empty(), "sort launders iteration order");
    }

    #[test]
    fn iteration_reaching_scheduler_is_order_taint() {
        let src = "fn f(m: HashMap<u32, u64>, sim: &mut Sim) {\n    \
                   for k in m.keys() {\n        sim.schedule(k);\n    }\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::OrderTaint);
        assert!(f[0].message.contains("schedule"));
    }

    #[test]
    fn unwrap_in_engine_fn_is_panic_path() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PanicPath);
    }

    #[test]
    fn unwrap_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { g().unwrap(); }\n}\n\
                   fn prod() -> u32 { h().expect(\"boom\") }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1, "only the non-test expect is flagged");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn bare_variable_indexing_is_not_flagged() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }";
        assert!(lint(src).is_empty(), "by-construction index idiom is sanctioned");
    }

    #[test]
    fn literal_and_arithmetic_indexing_are_flagged() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[0] + v[i - 1] }";
        let f = lint(src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::PanicPath));
    }

    #[test]
    fn range_slicing_is_flagged() {
        let src = "fn f(v: &[u32], n: usize) -> &[u32] { &v[..n] }";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("range slicing"));
    }

    #[test]
    fn width_hazard_multiply_is_flagged_u128_is_not() {
        let bad = "fn f(queued_bytes: u64, bandwidth_bps: u64) -> u64 {\n    \
                   queued_bytes * 1_000_000_000 / bandwidth_bps\n}\n";
        let f = lint(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UncheckedWidthMath);

        let widened = "fn f(queued_bytes: u64, bandwidth_bps: u64) -> u64 {\n    \
                       ((queued_bytes as u128 * 1_000_000_000u128) / bandwidth_bps as u128) as u64\n}\n";
        assert!(lint(widened).is_empty(), "explicit u128 widening is safe");

        let routed = "fn f(queued_bytes: u64, bandwidth_bps: u64) -> u64 {\n    \
                      widemath::mul_div_ceil(queued_bytes, 1_000_000_000, bandwidth_bps)\n}\n";
        assert!(lint(routed).is_empty(), "the sanctioned sink is exempt");
    }

    #[test]
    fn thread_spawn_respects_ruleset() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(lint(src).len(), 1);
        let mut rs = RuleSet::all();
        rs.thread_spawn = false;
        assert!(lint_source(Path::new("t.rs"), src, &rs).expect("parses").is_empty());
    }

    #[test]
    fn aliased_spawn_is_flagged() {
        let src = "use std::thread::spawn;\nfn f() { spawn(|| {}); }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ThreadSpawn);
    }

    #[test]
    fn threaded_bridge_keeps_rng_rules() {
        let rs = ruleset_for(Path::new("crates/iocontainers/src/threaded.rs")).unwrap();
        assert!(!rs.wall_clock && !rs.thread_spawn);
        assert!(rs.adhoc_rng && rs.unordered_iter && rs.order_taint);
    }

    #[test]
    fn simpar_is_thread_exempt_but_rng_checked() {
        let rs = ruleset_for(Path::new("crates/simpar/src/lib.rs")).unwrap();
        assert!(!rs.thread_spawn);
        assert!(rs.wall_clock && rs.adhoc_rng && rs.unordered_iter);
    }

    #[test]
    fn hot_paths_get_panic_and_width_rules() {
        let pipeline = ruleset_for(Path::new("crates/iocontainers/src/pipeline.rs")).unwrap();
        assert!(pipeline.panic_path && pipeline.width_math);
        let net = ruleset_for(Path::new("crates/simnet/src/net.rs")).unwrap();
        assert!(net.panic_path && net.width_math);
        let kernel = ruleset_for(Path::new("crates/sim-core/src/kernel.rs")).unwrap();
        assert!(kernel.panic_path && !kernel.width_math);
        let cost = ruleset_for(Path::new("crates/datatap/src/cost.rs")).unwrap();
        assert!(cost.width_math && !cost.panic_path);
        // The sanctioned u128 sink is not width-checked against itself.
        let wm = ruleset_for(Path::new("crates/sim-core/src/widemath.rs")).unwrap();
        assert!(!wm.width_math && wm.panic_path);
        // Cold paths keep the sim defaults.
        let tel = ruleset_for(Path::new("crates/simtel/src/lib.rs")).unwrap();
        assert!(!tel.panic_path && !tel.width_math);
    }

    #[test]
    fn stream_engine_is_panic_checked_and_thread_exempt() {
        let engine = ruleset_for(Path::new("crates/stream/src/engine.rs")).unwrap();
        assert!(engine.panic_path, "library paths carry live data: failures must be typed");
        assert!(!engine.thread_spawn, "the engine is threaded-transport territory");
        assert!(engine.wall_clock && engine.adhoc_rng, "clock and RNG discipline stay on");
        // The integration tests assert with unwrap/expect freely: only
        // src/ gets the panic class.
        let tests = ruleset_for(Path::new("crates/stream/tests/stream_integration.rs")).unwrap();
        assert!(!tests.panic_path && !tests.thread_spawn);
    }

    #[test]
    fn indexed_event_queue_keeps_every_determinism_rule_on() {
        // The event-kernel speed campaign rewrote the queue for
        // throughput; this pin guarantees the hot path did not buy its
        // speed by slipping out of lint scope. Every determinism rule and
        // the panic-path rule must stay on for queue.rs, exactly like the
        // kernel that drives it.
        let rs = ruleset_for(Path::new("crates/sim-core/src/queue.rs")).unwrap();
        assert!(rs.wall_clock && rs.adhoc_rng && rs.unordered_iter && rs.thread_spawn);
        assert!(rs.order_taint);
        assert!(rs.panic_path, "queue sifts/indexing must surface errors, not panic");
        assert!(!rs.width_math, "time ranks are plain u64s, not byte-bandwidth math");
    }

    #[test]
    fn fns_after_a_restricted_visibility_struct_stay_visible_to_panic_path() {
        // queue.rs opens with `pub(crate) struct EventQueue<T> { … }`; a
        // parser regression once swallowed every item after such a struct
        // into one token run, leaving per-fn rules (panic-path, width-math,
        // order-taint) blind to the whole hot path while token-linear
        // rules still fired. Pin the shape end-to-end.
        let src = "pub(crate) struct Q<T> {\n    slots: Vec<T>,\n}\n\
                   impl<T> Q<T> {\n    fn pop_front(&mut self) -> u32 { self.slots.first().unwrap() }\n}\n";
        let f = lint(src);
        assert_eq!(f.len(), 1, "unwrap inside the impl must be seen: {f:?}");
        assert_eq!(f[0].rule, Rule::PanicPath);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn vendor_and_tools_are_out_of_scope() {
        assert!(ruleset_for(Path::new("vendor/rand/src/lib.rs")).is_none());
        assert!(ruleset_for(Path::new("tools/simlint/src/lib.rs")).is_none());
        assert!(ruleset_for(Path::new("crates/bench/benches/transport.rs")).is_none());
        assert!(ruleset_for(Path::new("crates/sim-core/src/kernel.rs")).is_some());
    }

    #[test]
    fn simfault_is_fully_in_scope_and_seeded_rng_passes() {
        // The fault-injection crate gets every sim rule: its loss samplers
        // are only sanctioned because they derive from the plan seed.
        let rs = ruleset_for(Path::new("crates/simfault/src/lib.rs")).unwrap();
        assert!(rs.wall_clock && rs.adhoc_rng && rs.unordered_iter && rs.thread_spawn);
        let seeded = "fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed ^ 0xFA17); }";
        assert!(
            lint_source(Path::new("crates/simfault/src/lib.rs"), seeded, &rs)
                .expect("parses")
                .is_empty(),
            "seed_from_u64 is the sanctioned construction"
        );
        let adhoc = "fn f() { let rng = rand::thread_rng(); }";
        assert_eq!(
            lint_source(Path::new("crates/simfault/src/lib.rs"), adhoc, &rs)
                .expect("parses")
                .iter()
                .filter(|f| f.rule == Rule::AdhocRng)
                .count(),
            1,
            "OS-seeded construction stays flagged even in simfault"
        );
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let _ = r#\"thread_rng()\"#; x }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn json_roundtrip_and_baseline_diff() {
        let f1 = Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line: 10,
            column: 5,
            rule: Rule::WallClock,
            message: "msg \"quoted\"".to_string(),
        };
        let f2 = Finding { line: 99, rule: Rule::PanicPath, ..f1.clone() };
        let json = baseline::render_json(&[f1.clone(), f2.clone()]);
        let keys = baseline::parse_baseline(&json).expect("own artifact parses");
        assert_eq!(keys.len(), 2);
        // Line drift does not resurrect a baselined finding…
        let drifted = Finding { line: 11, ..f1.clone() };
        assert!(baseline::new_findings(&[drifted], &keys).is_empty());
        // …but a genuinely new finding still fails.
        let fresh = Finding { message: "different".to_string(), ..f1 };
        assert_eq!(baseline::new_findings(&[fresh], &keys).len(), 1);
    }
}
