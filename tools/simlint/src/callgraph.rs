//! Workspace call graph + hot-path reachability (the v3 engine).
//!
//! The per-file rules answer "is this construct hazardous?"; this module
//! answers "is it *reachable* from a path that matters?". It builds a
//! conservative call graph over every linted unit:
//!
//! * **Nodes** are function items (free, inherent and trait methods),
//!   qualified by file, crate, enclosing `impl` type, and body line
//!   range. Test code is collected but never resolved against or marked
//!   hot.
//! * **Edges** come from a token scan of each body: `name(...)` is a
//!   free call, `recv.name(...)` a method call, `Qual::name(...)` an
//!   associated call. Resolution is deliberately conservative — an edge
//!   is added only when the callee is provable from the AST:
//!   - `self.m(...)` resolves within the caller's own impl type;
//!   - `Self::f` / `Ty::f` resolve through the `(type, name)` index,
//!     falling back to a free function when `Ty` is really a module
//!     path segment (`widemath::mul_div_ceil`);
//!   - `recv.m(...)` resolves when every `recv: Type` declaration in
//!     the workspace (struct fields, params, typed lets — wrappers like
//!     `Arc<T>`/`Rc<T>` stripped) agrees on a single type that defines
//!     `m`, or else when `m` is defined by exactly one type in the
//!     workspace and is not a ubiquitous std method name;
//!   - everything else is an **unknown callee**: counted, never an
//!     edge. Reachability therefore under-approximates — a finding
//!     with a chain is definitely hot; absence of a chain proves
//!     nothing.
//! * **Hot roots** seed a bounded BFS (default depth 3 — root, callee,
//!   callee-of-callee). Specs use `crate::Type::fn`, `crate::fn`,
//!   `Type::fn` or bare `fn`, with an optional `@N` depth suffix. The
//!   built-in set covers the per-message transport paths; files can add
//!   roots with a `// simlint: hot-root(<spec>)` comment (fixtures and
//!   future hot paths).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use syn::{Item, ItemFn, TokenTree};

use crate::engine;

/// Reachability depth when a root spec has no `@N` suffix: the root
/// itself plus three levels of callees.
pub const DEFAULT_DEPTH: usize = 3;

/// The built-in hot roots: the per-message transport paths (datatap
/// channel send/pull, simnet transfer/wire-time, evpath stone delivery),
/// event dispatch, and the manager policy tick. `policy_tick@0` pins
/// the tick body itself (it runs every poll interval and was
/// de-allocated into `PolicyScratch` recycling); `decide_cluster@2`
/// covers the pure decision path the tick evaluates every round. The
/// `perform_*` action executors are deliberately *not* roots: cooldown
/// and the in-flight guard make them per-action, not per-tick.
pub const DEFAULT_HOT_ROOTS: &[&str] = &[
    "datatap::Writer::write",
    "datatap::Writer::try_write",
    "datatap::Reader::pull",
    "datatap::Reader::pull_checked",
    "datatap::Reader::pull_timeout",
    "datatap::Reader::try_pull",
    "datatap::Reader::peek_meta",
    "simnet::Network::transfer",
    "simnet::Network::effective_wire_time",
    "simnet::NetworkConfig::wire_time",
    "evpath::Worker::dispatch",
    "sim-core::Sim::step",
    "sim-core::EventQueue::pop",
    "iocontainers::policy_tick@0",
    "iocontainers::decide_cluster@2",
];

/// Method names too common to resolve by workspace-wide uniqueness:
/// std containers, iterators, smart pointers, sync primitives. A call
/// through one of these stays an unknown callee unless the receiver's
/// declared type resolves it first.
const UBIQUITOUS_METHODS: &[&str] = &[
    "push", "pop", "insert", "remove", "get", "get_mut", "get_or_insert_with", "contains",
    "contains_key", "len", "is_empty", "clear", "iter", "iter_mut", "into_iter", "keys", "values",
    "values_mut", "drain", "entry", "or_default", "or_insert", "or_insert_with", "clone",
    "to_vec", "to_string", "to_owned", "collect", "map", "map_err", "filter", "filter_map",
    "and_then", "or_else", "unwrap", "unwrap_or", "unwrap_or_else", "unwrap_or_default",
    "expect", "ok", "ok_or", "ok_or_else", "err", "is_some", "is_none", "is_ok", "is_err",
    "as_ref", "as_mut", "as_str", "as_slice", "as_deref", "take", "replace", "lock", "borrow",
    "borrow_mut", "try_borrow", "try_lock", "wait", "wait_for", "notify_all", "notify_one",
    "send", "recv", "try_recv", "next", "peekable", "front", "back", "push_back", "push_front",
    "pop_front", "pop_back", "first", "last", "sort", "sort_unstable", "sort_by", "sort_by_key",
    "sort_unstable_by", "sort_unstable_by_key", "extend", "append", "split_off", "split_at",
    "retain", "truncate", "resize", "reserve", "min", "max", "abs", "sum", "product", "count",
    "fold", "rev", "enumerate", "zip", "chain", "flatten", "flat_map", "copied", "cloned",
    "position", "find", "any", "all", "min_by_key", "max_by_key", "max_by", "min_by", "step_by",
    "skip", "now", "starts_with", "ends_with", "trim", "split", "join", "fmt", "eq", "cmp",
    "partial_cmp", "hash", "default", "from", "into", "try_into", "try_from", "new",
    "with_capacity", "to_le_bytes", "to_be_bytes", "swap", "windows", "chunks", "get_unchecked",
    "saturating_add", "saturating_sub", "saturating_mul", "checked_add", "checked_sub",
    "checked_mul", "checked_div", "wrapping_add", "wrapping_sub", "wrapping_mul", "min_assign",
    "rotate_left", "rotate_right", "leading_zeros", "trailing_zeros",
];

/// Keywords and value constructors that look like `ident(...)` but are
/// never calls the graph should chase.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "return", "for", "in", "loop", "else", "move", "as", "let", "mut",
    "ref", "box", "await", "fn", "impl", "where", "unsafe", "pub", "crate", "super", "dyn",
    "Some", "None", "Ok", "Err", "Self",
];

/// One function node in the workspace call graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the owning [`crate::SourceUnit`].
    pub unit: usize,
    /// The unit's crate key (`crates/<name>` or the top directory).
    pub crate_key: String,
    /// Enclosing `impl` type, when the node is a method.
    pub ty: Option<String>,
    /// The function name.
    pub name: String,
    /// Line of the `fn` identifier.
    pub start_line: usize,
    /// Last line of the body (signature line when bodyless).
    pub end_line: usize,
    /// Test code: `#[test]` or inside a `#[cfg(test)]` module/impl.
    pub in_test: bool,
}

impl FnNode {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn display(&self) -> String {
        match &self.ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A call site extracted from a body, before resolution.
enum CallSite {
    Free(String),
    Method { recv: Option<String>, name: String },
    Assoc { qual: String, name: String },
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// All function nodes, in unit/source order.
    pub nodes: Vec<FnNode>,
    /// Resolved callee node ids per node (deduplicated).
    pub edges: Vec<Vec<usize>>,
    /// Total resolved call sites.
    pub resolved_calls: usize,
    /// Call sites left as unknown-callee terminal edges.
    pub unknown_calls: usize,
}

/// Why a function is hot: the matched root spec and the call chain that
/// reaches it (node ids, root first, this node last).
#[derive(Clone, Debug)]
pub struct HotInfo {
    /// The root spec (as written) this chain starts from.
    pub root: String,
    /// Path of node ids from the root to this function, inclusive.
    pub chain: Vec<usize>,
}

/// A parsed hot-root spec: `[crate::][Type::]fn[@depth]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotRoot {
    /// Constrains `FnNode::crate_key` when present.
    pub krate: Option<String>,
    /// Constrains the enclosing impl type when present.
    pub ty: Option<String>,
    /// The function name (always required).
    pub name: String,
    /// Reachability depth from this root.
    pub depth: usize,
    /// The spec as written (diagnostics).
    pub spec: String,
}

/// Parses a hot-root spec. Two-segment specs disambiguate by case:
/// `Type::fn` when the first segment starts uppercase, `crate::fn`
/// otherwise (crate names are kebab/lowercase throughout the workspace).
pub fn parse_hot_root(spec: &str) -> Option<HotRoot> {
    let spec = spec.trim();
    let (path, depth) = match spec.split_once('@') {
        Some((p, d)) => (p.trim(), d.trim().parse::<usize>().ok()?),
        None => (spec, DEFAULT_DEPTH),
    };
    let segs: Vec<&str> = path.split("::").map(str::trim).collect();
    if segs.iter().any(|s| s.is_empty()) {
        return None;
    }
    let (krate, ty, name) = match segs.as_slice() {
        [f] => (None, None, *f),
        [a, f] if a.starts_with(char::is_uppercase) => (None, Some(*a), *f),
        [c, f] => (Some(*c), None, *f),
        [c, t, f] => (Some(*c), Some(*t), *f),
        _ => return None,
    };
    Some(HotRoot {
        krate: krate.map(str::to_string),
        ty: ty.map(str::to_string),
        name: name.to_string(),
        depth,
        spec: spec.to_string(),
    })
}

/// Extracts every `// simlint: hot-root(<spec>)` directive from raw
/// source. Malformed specs are ignored (the lint must not fail a build
/// over a comment).
pub fn hot_root_directives(src: &str) -> Vec<HotRoot> {
    let mut out = Vec::new();
    for raw in src.lines() {
        let Some(comment_at) = raw.find("//") else { continue };
        let comment = raw[comment_at + 2..].trim();
        let Some(rest) = comment.strip_prefix("simlint:") else { continue };
        let Some(open) = rest.trim().strip_prefix("hot-root(") else { continue };
        let Some(close) = open.rfind(')') else { continue };
        if let Some(root) = parse_hot_root(&open[..close]) {
            out.push(root);
        }
    }
    out
}

fn root_matches(root: &HotRoot, node: &FnNode) -> bool {
    if node.in_test || node.name != root.name {
        return false;
    }
    if let Some(t) = &root.ty {
        if node.ty.as_deref() != Some(t.as_str()) {
            return false;
        }
    }
    if let Some(c) = &root.krate {
        if node.crate_key != *c && node.crate_key != format!("crates/{c}") {
            return false;
        }
    }
    true
}

/// The deepest line reached by any token in the stream.
fn max_line(stream: &[TokenTree], acc: &mut usize) {
    for t in stream {
        *acc = (*acc).max(t.span().line);
        if let TokenTree::Group(g) = t {
            *acc = (*acc).max(g.span.line);
            max_line(&g.stream, acc);
        }
    }
}

/// The self type of an `impl` header: the first type ident after `for`
/// (trait impls), or the first ident after `impl` and its generic
/// parameter list (inherent impls).
fn impl_type(header: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    if engine::is_ident(header.first(), "impl") {
        i = 1;
    }
    // Skip the generic parameter list, tracking <> depth.
    if engine::is_punct(header.get(i), '<') {
        let mut depth = 0usize;
        while i < header.len() {
            match header[i].punct() {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Trait impl: the self type follows the top-level `for`.
    let mut depth = 0usize;
    for (j, t) in header.iter().enumerate().skip(i) {
        match t.punct() {
            Some('<') => depth += 1,
            Some('>') => depth = depth.saturating_sub(1),
            _ => {}
        }
        if depth == 0 && engine::is_ident(Some(t), "for") {
            // First ident after `for` (skipping `&`, `mut`, lifetimes);
            // for a path like `crate::Foo` take the last leading segment.
            return last_path_head(&header[j + 1..]);
        }
    }
    last_path_head(&header[i..])
}

/// First type name in a token run: skips references/lifetimes, then
/// follows leading path segments (`a::b::Ty` → the segment before a
/// non-`::` token).
fn last_path_head(toks: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if matches!(p.ch, '&' | '\'') => i += 1,
            TokenTree::Ident(id) if matches!(id.text.as_str(), "mut" | "dyn") => i += 1,
            _ => break,
        }
    }
    let mut head = None;
    while let Some(TokenTree::Ident(id)) = toks.get(i) {
        head = Some(id.text.clone());
        if engine::is_path_sep(toks, i + 1) {
            i += 3;
        } else {
            break;
        }
    }
    head
}

fn collect_fns<'a>(
    items: &'a [Item],
    in_test: bool,
    ty: Option<&str>,
    out: &mut Vec<(&'a ItemFn, bool, Option<String>)>,
) {
    for item in items {
        match item {
            Item::Fn(f) => {
                let test = in_test || f.attrs.iter().any(|a| a.is_test());
                out.push((f, test, ty.map(str::to_string)));
            }
            Item::Mod(m) => {
                if let Some(content) = &m.content {
                    let test = in_test || m.attrs.iter().any(|a| a.is_cfg_test());
                    collect_fns(content, test, None, out);
                }
            }
            Item::Impl(im) => {
                let test = in_test || im.attrs.iter().any(|a| a.is_cfg_test());
                let self_ty = impl_type(&im.header);
                collect_fns(&im.items, test, self_ty.as_deref(), out);
            }
            _ => {}
        }
    }
}

/// Wrapper types stripped when reading a declared receiver type:
/// `telemetry: Arc<Inner>` types the receiver as `Inner`.
const TYPE_WRAPPERS: &[&str] =
    &["Arc", "Rc", "Box", "RefCell", "Cell", "Mutex", "RwLock", "Option", "Shared"];

/// Collects `ident: Type` declarations (struct fields, fn params, typed
/// lets, struct-literal enum paths) into a name → candidate-types map.
/// Resolution only trusts names whose every declaration agrees on one
/// type, so over-collection here costs precision, never soundness.
fn collect_decl_types(stream: &[TokenTree], out: &mut BTreeMap<String, BTreeSet<String>>) {
    for (i, t) in stream.iter().enumerate() {
        if let TokenTree::Group(g) = t {
            collect_decl_types(&g.stream, out);
        }
        let TokenTree::Ident(id) = t else { continue };
        // `name :` but not `name ::`.
        if !engine::is_punct(stream.get(i + 1), ':') || engine::is_punct(stream.get(i + 2), ':') {
            continue;
        }
        // Skip the second colon of a `::` before the name's own colon.
        if i >= 1 && engine::is_punct(stream.get(i - 1), ':') {
            continue;
        }
        if let Some(ty) = decl_type_name(&stream[i + 2..]) {
            out.entry(id.text.clone()).or_default().insert(ty);
        }
    }
}

/// The concrete type name starting a type expression, wrappers stripped.
fn decl_type_name(toks: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    loop {
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if matches!(p.ch, '&' | '\'') => i += 1,
                TokenTree::Ident(id) if matches!(id.text.as_str(), "mut" | "dyn") => i += 1,
                _ => break,
            }
        }
        let TokenTree::Ident(id) = toks.get(i)? else { return None };
        if !id.text.starts_with(char::is_uppercase) {
            return None;
        }
        if TYPE_WRAPPERS.contains(&id.text.as_str()) && engine::is_punct(toks.get(i + 1), '<') {
            i += 2; // descend into the wrapper's parameter
            continue;
        }
        return Some(id.text.clone());
    }
}

/// Extracts the call sites in one function body.
fn collect_call_sites(body: &[TokenTree], out: &mut Vec<CallSite>) {
    engine::visit_streams(body, &mut |stream| {
        for (i, t) in stream.iter().enumerate() {
            let TokenTree::Ident(id) = t else { continue };
            let name = id.text.as_str();
            if NON_CALL_IDENTS.contains(&name) {
                continue;
            }
            if engine::paren_at(stream, i + 1).is_none() {
                continue;
            }
            let prev = i.checked_sub(1).and_then(|p| stream.get(p));
            if engine::is_punct(prev, '.') {
                let recv = i
                    .checked_sub(2)
                    .and_then(|p| stream.get(p))
                    .and_then(TokenTree::ident)
                    .map(str::to_string);
                out.push(CallSite::Method { recv, name: name.to_string() });
            } else if i >= 2 && engine::is_path_sep(stream, i - 2) {
                if let Some(qual) =
                    i.checked_sub(3).and_then(|p| stream.get(p)).and_then(TokenTree::ident)
                {
                    out.push(CallSite::Assoc { qual: qual.to_string(), name: name.to_string() });
                }
            } else if name.starts_with(char::is_lowercase) {
                // Uppercase `Name(...)` is a tuple-struct/variant
                // constructor, not a call.
                out.push(CallSite::Free(name.to_string()));
            }
        }
    });
}

/// Builds the workspace call graph over the parsed units.
///
/// `files` pairs each unit's index with its parsed items; `decl_types`
/// is the workspace-wide `ident: Type` map from [`collect_decl_types`]
/// (exposed so `lint_units` can build it from the flattened streams it
/// already has).
pub fn build(units: &[(usize, String, &[Item])]) -> CallGraph {
    let mut nodes = Vec::new();
    let mut bodies: Vec<Option<&syn::Group>> = Vec::new();
    let mut decl_types: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

    for (unit, crate_key, items) in units {
        let mut fns = Vec::new();
        collect_fns(items, false, None, &mut fns);
        for (f, in_test, ty) in fns {
            let start_line = f.ident.span.line;
            let mut end_line = start_line;
            if let Some(b) = &f.body {
                end_line = end_line.max(b.span.line);
                max_line(&b.stream, &mut end_line);
            }
            nodes.push(FnNode {
                unit: *unit,
                crate_key: crate_key.clone(),
                ty,
                name: f.ident.text.clone(),
                start_line,
                end_line,
                in_test,
            });
            bodies.push(f.body.as_ref());
            // Param and local declarations participate in receiver
            // typing alongside struct fields.
            collect_decl_types(&f.signature, &mut decl_types);
            if let Some(b) = &f.body {
                collect_decl_types(&b.stream, &mut decl_types);
            }
        }
        // Struct/enum bodies and consts live outside fn items.
        let flat = engine::flatten(items);
        collect_decl_types(&flat, &mut decl_types);
    }

    // Resolution indexes over non-test nodes.
    let mut free_idx: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut method_idx: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut typed_idx: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (ix, n) in nodes.iter().enumerate() {
        if n.in_test {
            continue;
        }
        match &n.ty {
            None => free_idx.entry(n.name.as_str()).or_default().push(ix),
            Some(t) => {
                method_idx.entry(n.name.as_str()).or_default().push(ix);
                typed_idx.entry((t.as_str(), n.name.as_str())).or_default().push(ix);
            }
        }
    }
    let unique_in = |cands: Option<&Vec<usize>>, caller: &FnNode| -> Option<usize> {
        let cands = cands?;
        let same_crate: Vec<usize> =
            cands.iter().copied().filter(|&c| nodes[c].crate_key == caller.crate_key).collect();
        match same_crate.as_slice() {
            [one] => Some(*one),
            [] if cands.len() == 1 => Some(cands[0]),
            _ => None,
        }
    };

    let mut edges = vec![Vec::new(); nodes.len()];
    let mut resolved_calls = 0usize;
    let mut unknown_calls = 0usize;
    for (ix, body) in bodies.iter().enumerate() {
        let Some(body) = body else { continue };
        let caller = &nodes[ix];
        let mut sites = Vec::new();
        collect_call_sites(&body.stream, &mut sites);
        for site in sites {
            let target = match &site {
                CallSite::Free(name) => unique_in(free_idx.get(name.as_str()), caller),
                CallSite::Assoc { qual, name } => {
                    let ty = if qual == "Self" { caller.ty.clone() } else { Some(qual.clone()) };
                    ty.and_then(|t| unique_in(typed_idx.get(&(t.as_str(), name.as_str())), caller))
                        .or_else(|| {
                            // Module-path call: `widemath::mul_div_ceil`.
                            qual.starts_with(char::is_lowercase)
                                .then(|| unique_in(free_idx.get(name.as_str()), caller))
                                .flatten()
                        })
                }
                CallSite::Method { recv, name } => {
                    let via_self = (recv.as_deref() == Some("self"))
                        .then_some(caller.ty.as_ref())
                        .flatten()
                        .and_then(|t| unique_in(typed_idx.get(&(t.as_str(), name.as_str())), caller));
                    let via_decl = || {
                        let r = recv.as_deref()?;
                        let types = decl_types.get(r)?;
                        // A typed receiver resolves when exactly one of
                        // the types declared under that name defines the
                        // method (an ambiguous name like `telemetry:
                        // Telemetry` vs `telemetry: TelemetryConfig`
                        // disambiguates through the method itself).
                        let mut hits = types
                            .iter()
                            .filter_map(|t| {
                                unique_in(typed_idx.get(&(t.as_str(), name.as_str())), caller)
                            })
                            .collect::<Vec<_>>();
                        hits.dedup();
                        match hits.as_slice() {
                            [one] => Some(*one),
                            _ => None,
                        }
                    };
                    let via_unique = || {
                        if UBIQUITOUS_METHODS.contains(&name.as_str()) {
                            return None;
                        }
                        let cands = method_idx.get(name.as_str())?;
                        (cands.len() == 1).then(|| cands[0])
                    };
                    via_self.or_else(via_decl).or_else(via_unique)
                }
            };
            match target {
                Some(t) => {
                    resolved_calls += 1;
                    if !edges[ix].contains(&t) {
                        edges[ix].push(t);
                    }
                }
                None => unknown_calls += 1,
            }
        }
    }
    CallGraph { nodes, edges, resolved_calls, unknown_calls }
}

/// Multi-root bounded BFS over resolved edges. Returns, per reachable
/// non-test node, the root and shortest chain that made it hot. A node
/// reached by several roots keeps the reaching with the most remaining
/// depth (ties: first root in spec order), so the hot set is maximal
/// and deterministic.
pub fn hot_set(graph: &CallGraph, roots: &[HotRoot]) -> BTreeMap<usize, HotInfo> {
    let mut best_left: BTreeMap<usize, usize> = BTreeMap::new();
    let mut info: BTreeMap<usize, HotInfo> = BTreeMap::new();
    for root in roots {
        for (ix, node) in graph.nodes.iter().enumerate() {
            if !root_matches(root, node) {
                continue;
            }
            let mut queue = VecDeque::new();
            queue.push_back((ix, root.depth, vec![ix]));
            while let Some((at, left, chain)) = queue.pop_front() {
                let better = best_left.get(&at).is_none_or(|&have| left > have);
                if !better {
                    continue;
                }
                best_left.insert(at, left);
                info.insert(at, HotInfo { root: root.spec.clone(), chain: chain.clone() });
                if left == 0 {
                    continue;
                }
                for &next in &graph.edges[at] {
                    if graph.nodes[next].in_test || chain.contains(&next) {
                        continue;
                    }
                    let mut c = chain.clone();
                    c.push(next);
                    queue.push_back((next, left - 1, c));
                }
            }
        }
    }
    info
}

/// Renders a chain as `A::f → B::g → h`.
pub fn chain_display(graph: &CallGraph, chain: &[usize]) -> String {
    chain.iter().map(|&ix| graph.nodes[ix].display()).collect::<Vec<_>>().join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> CallGraph {
        let file = syn::parse_file(src).expect("fixture parses");
        build(&[(0, "crates/x".to_string(), &file.items)])
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.name == name).expect("node present")
    }

    #[test]
    fn free_calls_resolve_same_crate() {
        let g = graph_of("fn a() { b(); }\nfn b() {}\n");
        assert_eq!(g.edges[node(&g, "a")], vec![node(&g, "b")]);
        assert_eq!(g.resolved_calls, 1);
    }

    #[test]
    fn self_methods_resolve_within_impl() {
        let g = graph_of(
            "struct S;\nimpl S {\n    fn a(&self) { self.b(); }\n    fn b(&self) {}\n}\n",
        );
        assert_eq!(g.nodes[node(&g, "a")].ty.as_deref(), Some("S"));
        assert_eq!(g.edges[node(&g, "a")], vec![node(&g, "b")]);
    }

    #[test]
    fn trait_impl_type_is_the_for_side() {
        let g = graph_of(
            "struct Ev;\nimpl fmt::Debug for Ev {\n    fn dump(&self) { self.walk(); }\n    \
             fn walk(&self) {}\n}\n",
        );
        assert_eq!(g.nodes[node(&g, "dump")].ty.as_deref(), Some("Ev"));
        assert_eq!(g.edges[node(&g, "dump")], vec![node(&g, "walk")]);
    }

    #[test]
    fn typed_receiver_resolves_through_field_decl() {
        let g = graph_of(
            "struct Tel;\nimpl Tel {\n    fn count(&self) {}\n}\n\
             struct Net { telemetry: Tel }\nimpl Net {\n    \
             fn hot(&self) { self.telemetry.count(); }\n}\n",
        );
        assert_eq!(g.edges[node(&g, "hot")], vec![node(&g, "count")]);
    }

    #[test]
    fn wrapped_receiver_type_is_stripped() {
        let g = graph_of(
            "struct Inner;\nimpl Inner {\n    fn poke(&self) {}\n}\n\
             struct Outer { inner: Arc<Inner> }\nimpl Outer {\n    \
             fn hot(&self) { self.inner.poke(); }\n}\n",
        );
        assert_eq!(g.edges[node(&g, "hot")], vec![node(&g, "poke")]);
    }

    #[test]
    fn ubiquitous_method_names_stay_unknown() {
        let g = graph_of(
            "struct Q;\nimpl Q {\n    fn push(&self) {}\n}\nfn hot(v: &mut Vec<u32>) { v.push(1); }\n",
        );
        assert!(g.edges[node(&g, "hot")].is_empty());
        assert_eq!(g.unknown_calls, 1);
    }

    #[test]
    fn ambiguous_receiver_types_stay_unknown() {
        let g = graph_of(
            "struct A;\nimpl A {\n    fn go(&self) {}\n}\nstruct B;\nimpl B {\n    fn go(&self) {}\n}\n\
             struct H { x: A }\nstruct I { x: B }\nimpl H {\n    fn hot(&self) { self.x.go(); }\n}\n",
        );
        assert!(g.edges[node(&g, "hot")].is_empty(), "x declares two types; no edge");
    }

    #[test]
    fn module_path_assoc_falls_back_to_free_fn() {
        let g = graph_of("fn mul(a: u64) -> u64 { a }\nfn hot() { widemath::mul(3); }\n");
        assert_eq!(g.edges[node(&g, "hot")], vec![node(&g, "mul")]);
    }

    #[test]
    fn test_fns_are_neither_targets_nor_hot() {
        let src = "fn hot() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let g = graph_of(src);
        assert!(g.edges[node(&g, "hot")].is_empty(), "test helper is not a target");
        let roots = [parse_hot_root("hot").unwrap()];
        let hot = hot_set(&g, &roots);
        assert!(hot.contains_key(&node(&g, "hot")));
    }

    #[test]
    fn hot_root_grammar_parses_all_forms() {
        let r = parse_hot_root("simnet::Network::transfer").unwrap();
        assert_eq!(
            (r.krate.as_deref(), r.ty.as_deref(), r.name.as_str(), r.depth),
            (Some("simnet"), Some("Network"), "transfer", DEFAULT_DEPTH)
        );
        let r = parse_hot_root("iocontainers::policy_tick@2").unwrap();
        assert_eq!((r.krate.as_deref(), r.ty.as_deref(), r.depth), (Some("iocontainers"), None, 2));
        let r = parse_hot_root("Worker::dispatch").unwrap();
        assert_eq!((r.krate.as_deref(), r.ty.as_deref()), (None, Some("Worker")));
        let r = parse_hot_root("entry@1").unwrap();
        assert_eq!((r.name.as_str(), r.depth), ("entry", 1));
        assert!(parse_hot_root("").is_none());
        assert!(parse_hot_root("a::@2").is_none());
    }

    #[test]
    fn default_roots_all_parse() {
        for spec in DEFAULT_HOT_ROOTS {
            assert!(parse_hot_root(spec).is_some(), "default root {spec:?} must parse");
        }
    }

    #[test]
    fn reachability_respects_depth() {
        let g = graph_of("fn a() { b(); }\nfn b() { c(); }\nfn c() { d(); }\nfn d() {}\n");
        let roots = [parse_hot_root("a@2").unwrap()];
        let hot = hot_set(&g, &roots);
        assert!(hot.contains_key(&node(&g, "a")));
        assert!(hot.contains_key(&node(&g, "c")), "depth 2 reaches the grand-callee");
        assert!(!hot.contains_key(&node(&g, "d")), "depth 2 stops before the third hop");
        let chain = &hot[&node(&g, "c")].chain;
        assert_eq!(chain_display(&g, chain), "a → b → c");
    }

    #[test]
    fn deeper_root_wins_on_overlap() {
        let g = graph_of("fn a() { m(); }\nfn z() { m(); }\nfn m() { deep(); }\nfn deep() {}\n");
        let roots = [parse_hot_root("a@1").unwrap(), parse_hot_root("z@3").unwrap()];
        let hot = hot_set(&g, &roots);
        assert_eq!(hot[&node(&g, "m")].root, "z@3", "more remaining depth wins");
        assert!(hot.contains_key(&node(&g, "deep")));
    }

    #[test]
    fn directives_parse_from_comments() {
        let src = "// simlint: hot-root(Worker::dispatch@4)\nfn f() {}\n";
        let d = hot_root_directives(src);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].ty.as_deref(), d[0].depth), (Some("Worker"), 4));
    }
}
