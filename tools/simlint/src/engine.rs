//! The v2 analysis engine: file context shared by every rule.
//!
//! One [`FileCx`] per file carries what the rules need beyond raw
//! tokens: the `use`-alias table (so `use std::time::Instant as Clock;
//! Clock::now()` still reads as a wall-clock call), the escape comments
//! (v2 grammar: `// simlint: allow(<rule>, <reason>)` — the reason is
//! mandatory), and the function inventory with test-code attribution
//! (`#[cfg(test)]` modules and `#[test]` functions), which the
//! panic-path and width-math rules skip.

use std::collections::{BTreeMap, BTreeSet};

use syn::{Group, Item, ItemFn, TokenTree};

/// One parsed escape comment.
#[derive(Clone, Debug)]
pub struct Escape {
    /// The rule name inside `allow(...)` (or `all`).
    pub rule: String,
    /// The mandatory reason string; `None` marks a legacy reasonless
    /// escape, which no longer suppresses.
    pub reason: Option<String>,
}

/// A function discovered by the item walk.
pub struct FnInfo<'a> {
    /// The function item.
    pub item: &'a ItemFn,
    /// True when the function is test code (`#[test]`, or any enclosing
    /// `#[cfg(test)]` module).
    pub in_test: bool,
}

/// Per-file analysis context.
pub struct FileCx {
    /// Local name → full canonical path from `use` declarations.
    pub aliases: BTreeMap<String, Vec<String>>,
    /// Escape comments by 1-based line number.
    pub escapes: BTreeMap<usize, Vec<Escape>>,
}

impl FileCx {
    /// Builds the context from the parsed items and the raw source (the
    /// raw text is needed because token streams drop comments).
    pub fn build(items: &[Item], src: &str) -> FileCx {
        let mut aliases = BTreeMap::new();
        collect_aliases(items, &mut aliases);
        FileCx { aliases, escapes: parse_escapes(src) }
    }

    /// The canonical (post-alias) name of a source identifier: the final
    /// segment of the `use` path that bound it, or the identifier
    /// itself.
    pub fn canonical<'a>(&'a self, ident: &'a str) -> &'a str {
        match self.aliases.get(ident).and_then(|path| path.last()) {
            Some(seg) => seg.as_str(),
            None => ident,
        }
    }

    /// The canonical full path of a source identifier, if a `use`
    /// declaration bound it.
    pub fn canonical_path(&self, ident: &str) -> Option<&[String]> {
        self.aliases.get(ident).map(Vec::as_slice)
    }

    /// Whether `rule` is escaped at `line` (same line or the line
    /// directly above) **with a reason** — and by which escape: the
    /// comment's line and the rule text as written (`"all"` or the rule
    /// name). Reasonless escapes are the old grammar and deliberately do
    /// not suppress. The stale-escape pass uses the returned key to know
    /// which escapes still earn their keep.
    pub fn escaped_at(&self, line: usize, rule: &str) -> Option<(usize, String)> {
        let hit = |l: usize| {
            self.escapes.get(&l).and_then(|list| {
                list.iter()
                    .find(|e| e.reason.is_some() && (e.rule == rule || e.rule == "all"))
                    .map(|e| (l, e.rule.clone()))
            })
        };
        hit(line).or_else(|| if line > 1 { hit(line - 1) } else { None })
    }

    /// Whether a *reasonless* escape for `rule` sits at `line` — used to
    /// append a "reasons are mandatory" hint to the finding it failed to
    /// suppress.
    pub fn reasonless_escape(&self, line: usize, rule: &str) -> bool {
        let hit = |l: usize| {
            self.escapes.get(&l).is_some_and(|list| {
                list.iter()
                    .any(|e| e.reason.is_none() && (e.rule == rule || e.rule == "all"))
            })
        };
        hit(line) || (line > 1 && hit(line - 1))
    }
}

/// Flattens `use` items (recursively through modules) into the alias
/// table.
fn collect_aliases(items: &[Item], out: &mut BTreeMap<String, Vec<String>>) {
    for item in items {
        match item {
            Item::Use(u) => {
                for b in &u.bindings {
                    if b.name != "*" {
                        out.insert(b.name.clone(), b.path.clone());
                    }
                }
            }
            Item::Mod(m) => {
                if let Some(content) = &m.content {
                    collect_aliases(content, out);
                }
            }
            Item::Impl(im) => collect_aliases(&im.items, out),
            _ => {}
        }
    }
}

/// Parses every `// simlint: allow(...)` comment in the raw source.
///
/// v2 grammar: `allow(<rule>, <reason…>)` — everything after the first
/// comma is the reason string. `allow(<rule>)` parses with `reason:
/// None` and is reported as a stale legacy escape by [`FileCx::escaped`]
/// refusing to honour it.
fn parse_escapes(src: &str) -> BTreeMap<usize, Vec<Escape>> {
    let mut out: BTreeMap<usize, Vec<Escape>> = BTreeMap::new();
    for (ix, raw) in src.lines().enumerate() {
        let line = ix + 1;
        let Some(comment_at) = raw.find("//") else { continue };
        let comment = raw[comment_at + 2..].trim();
        let Some(rest) = comment.strip_prefix("simlint:") else { continue };
        let rest = rest.trim();
        let Some(open) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = open.rfind(')') else { continue };
        let inner = &open[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((rule, reason)) => {
                let reason = reason.trim();
                (rule.trim(), (!reason.is_empty()).then(|| reason.to_string()))
            }
            None => (inner.trim(), None),
        };
        if rule.is_empty() {
            continue;
        }
        out.entry(line)
            .or_default()
            .push(Escape { rule: rule.to_string(), reason });
    }
    out
}

/// Walks every function item (free, associated, trait-default, nested in
/// modules), tagging test code.
pub fn for_each_fn<'a>(items: &'a [Item], in_test: bool, out: &mut Vec<FnInfo<'a>>) {
    for item in items {
        match item {
            Item::Fn(f) => {
                let test = in_test || f.attrs.iter().any(|a| a.is_test());
                out.push(FnInfo { item: f, in_test: test });
            }
            Item::Mod(m) => {
                if let Some(content) = &m.content {
                    let test = in_test || m.attrs.iter().any(|a| a.is_cfg_test());
                    for_each_fn(content, test, out);
                }
            }
            Item::Impl(im) => {
                let test = in_test || im.attrs.iter().any(|a| a.is_cfg_test());
                for_each_fn(&im.items, test, out);
            }
            _ => {}
        }
    }
}

/// Flattens the items to one token stream (group nesting preserved) for
/// token-linear rules that must see the whole file — signatures, consts,
/// struct bodies and macro arguments included.
pub fn flatten(items: &[Item]) -> Vec<TokenTree> {
    let mut out = Vec::new();
    fn push_items(items: &[Item], out: &mut Vec<TokenTree>) {
        for item in items {
            match item {
                Item::Use(_) => {}
                Item::Fn(f) => {
                    out.extend(f.signature.iter().cloned());
                    if let Some(b) = &f.body {
                        out.push(TokenTree::Group(b.clone()));
                    }
                }
                Item::Mod(m) => {
                    if let Some(content) = &m.content {
                        push_items(content, out);
                    }
                }
                Item::Impl(im) => {
                    out.extend(im.header.iter().cloned());
                    push_items(&im.items, out);
                }
                Item::Other(attrs, toks) => {
                    for a in attrs {
                        out.extend(a.tokens.iter().cloned());
                    }
                    out.extend(toks.iter().cloned());
                }
            }
        }
    }
    push_items(items, &mut out);
    out
}

/// Recursively visits every (stream, index) position in a token stream,
/// descending into groups. The callback sees each stream exactly once.
pub fn visit_streams<'a>(stream: &'a [TokenTree], f: &mut impl FnMut(&'a [TokenTree])) {
    f(stream);
    for t in stream {
        if let TokenTree::Group(g) = t {
            visit_streams(&g.stream, f);
        }
    }
}

/// True if the token is the identifier `name`.
pub fn is_ident(t: Option<&TokenTree>, name: &str) -> bool {
    t.and_then(TokenTree::ident) == Some(name)
}

/// True if the token is the punctuation `ch`.
pub fn is_punct(t: Option<&TokenTree>, ch: char) -> bool {
    t.and_then(TokenTree::punct) == Some(ch)
}

/// True if `stream[i]`/`stream[i+1]` are the `::` separator.
pub fn is_path_sep(stream: &[TokenTree], i: usize) -> bool {
    is_punct(stream.get(i), ':') && is_punct(stream.get(i + 1), ':')
}

/// The paren group at `stream[i]`, if any.
pub fn paren_at(stream: &[TokenTree], i: usize) -> Option<&Group> {
    stream
        .get(i)
        .and_then(TokenTree::group)
        .filter(|g| g.delimiter == syn::Delimiter::Parenthesis)
}

/// Splits a brace/stream body into statements at top-level semicolons.
/// Control-flow blocks stay embedded in their statement; callers recurse
/// via the statements' own groups.
pub fn statements(stream: &[TokenTree]) -> Vec<&[TokenTree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in stream.iter().enumerate() {
        if t.punct() == Some(';') {
            out.push(&stream[start..i]);
            start = i + 1;
        }
    }
    if start < stream.len() {
        out.push(&stream[start..]);
    }
    out
}

/// Collects the identifier texts appearing anywhere in a stream
/// (recursing into groups).
pub fn idents_in(stream: &[TokenTree], out: &mut BTreeSet<String>) {
    for t in stream {
        match t {
            TokenTree::Ident(i) => {
                out.insert(i.text.clone());
            }
            TokenTree::Group(g) => idents_in(&g.stream, out),
            _ => {}
        }
    }
}
