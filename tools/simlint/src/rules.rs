//! Token-level rules: the four legacy determinism rules (alias-aware on
//! the AST engine) plus the v2 `panic-path` and `unchecked-width-math`
//! classes. The `order-taint`/`unordered-iter` dataflow lives in
//! [`crate::taint`].

use syn::{Delimiter, Span, TokenTree};

use crate::engine::{self, FileCx, FnInfo};
use crate::{Finding, Rule, RuleSet};

/// Raw finding before file/escape bookkeeping: (span, rule, message).
pub type RawFinding = (Span, Rule, String);

/// Runs the wall-clock / adhoc-rng / thread-spawn rules over the whole
/// flattened file (matching v1 scope: test code included — tests that
/// read wall clocks or spawn raw threads are still hazards for the
/// deterministic suite).
pub fn token_rules(cx: &FileCx, flat: &[TokenTree], rules: &RuleSet, out: &mut Vec<RawFinding>) {
    engine::visit_streams(flat, &mut |stream| {
        for (i, t) in stream.iter().enumerate() {
            let TokenTree::Ident(id) = t else { continue };
            let name = id.text.as_str();
            let canon = cx.canonical(name);

            if rules.wall_clock {
                // `Instant::now()` (aliased or not). A bare `Instant`
                // ident (enum variants, docs) is not flagged.
                if canon == "Instant"
                    && engine::is_path_sep(stream, i + 1)
                    && engine::is_ident(stream.get(i + 3), "now")
                {
                    out.push((
                        id.span,
                        Rule::WallClock,
                        "Instant::now() reads the wall clock; use the simulation clock".to_string(),
                    ));
                }
                // Any `SystemTime` mention (UNIX_EPOCH maths included).
                if canon == "SystemTime" {
                    out.push((
                        id.span,
                        Rule::WallClock,
                        "SystemTime reads the wall clock; use the simulation clock".to_string(),
                    ));
                }
            }

            if rules.adhoc_rng {
                if canon == "thread_rng" || canon == "from_entropy" {
                    out.push((
                        id.span,
                        Rule::AdhocRng,
                        format!("{name} draws OS entropy; derive RNGs from the run seed"),
                    ));
                }
                // `rand::random` / `random` aliased from rand.
                if name == "rand"
                    && engine::is_path_sep(stream, i + 1)
                    && engine::is_ident(stream.get(i + 3), "random")
                {
                    out.push((
                        id.span,
                        Rule::AdhocRng,
                        "rand::random draws OS entropy; derive RNGs from the run seed".to_string(),
                    ));
                }
                if cx.canonical_path(name).is_some_and(|p| p == ["rand", "random"]) {
                    out.push((
                        id.span,
                        Rule::AdhocRng,
                        "rand::random draws OS entropy; derive RNGs from the run seed".to_string(),
                    ));
                }
            }

            if rules.thread_spawn {
                // `thread::spawn` / `std::thread::spawn`.
                if name == "thread"
                    && engine::is_path_sep(stream, i + 1)
                    && engine::is_ident(stream.get(i + 3), "spawn")
                {
                    out.push((
                        id.span,
                        Rule::ThreadSpawn,
                        "raw thread::spawn bypasses the deterministic scheduler".to_string(),
                    ));
                }
                // `use std::thread::spawn;` then a bare `spawn(...)` call.
                if engine::paren_at(stream, i + 1).is_some()
                    && cx
                        .canonical_path(name)
                        .is_some_and(|p| p.ends_with(&["thread".to_string(), "spawn".to_string()]))
                {
                    out.push((
                        id.span,
                        Rule::ThreadSpawn,
                        "raw thread::spawn bypasses the deterministic scheduler".to_string(),
                    ));
                }
            }
        }
    });
}

/// Identifiers that are Rust keywords possibly preceding a bracket group
/// in non-index position (`&mut [T]`, `as` casts, control flow).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "in", "as", "return", "break", "else", "match", "if", "while", "loop",
    "move", "impl", "where", "for", "fn", "use", "pub", "let", "const", "static", "type", "enum",
    "struct", "union", "unsafe", "async", "await", "box",
];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that panic on the error/none path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// The `panic-path` rule: unwrap/expect, panicking macros, and hazardous
/// slice indexing (literal or arithmetic indices, range slicing) inside
/// non-test engine functions. Bare-variable indexing (`containers[id]`)
/// is the workspace's by-construction idiom and is not flagged.
pub fn panic_path(fns: &[FnInfo<'_>], out: &mut Vec<RawFinding>) {
    for f in fns {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.item.body else { continue };
        engine::visit_streams(&body.stream, &mut |stream| {
            scan_panic_stream(stream, out);
        });
    }
}

fn scan_panic_stream(stream: &[TokenTree], out: &mut Vec<RawFinding>) {
    for (i, t) in stream.iter().enumerate() {
        match t {
            TokenTree::Ident(id) => {
                // `.unwrap()` / `.expect("…")` method calls.
                if PANIC_METHODS.contains(&id.text.as_str())
                    && engine::is_punct(i.checked_sub(1).and_then(|p| stream.get(p)), '.')
                    && engine::paren_at(stream, i + 1).is_some()
                {
                    out.push((
                        id.span,
                        Rule::PanicPath,
                        format!(
                            ".{}() panics on the failure path; propagate a typed error",
                            id.text
                        ),
                    ));
                }
                // `panic!` family macros.
                if PANIC_MACROS.contains(&id.text.as_str())
                    && engine::is_punct(stream.get(i + 1), '!')
                {
                    out.push((
                        id.span,
                        Rule::PanicPath,
                        format!("{}! aborts the engine mid-run; propagate a typed error", id.text),
                    ));
                }
            }
            TokenTree::Group(g)
                if g.delimiter == Delimiter::Bracket && is_postfix_index(stream, i) =>
            {
                if let Some(kind) = hazardous_index(&g.stream) {
                    out.push((
                        g.span,
                        Rule::PanicPath,
                        format!("{kind} can panic out of bounds; use get()/get_mut() or slicing with checks"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Whether the bracket group at `stream[i]` sits in postfix (indexing)
/// position: directly after a non-keyword identifier, a call/paren
/// group, or another bracket group.
fn is_postfix_index(stream: &[TokenTree], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| stream.get(p)) else {
        return false;
    };
    match prev {
        TokenTree::Ident(id) => !NON_INDEX_KEYWORDS.contains(&id.text.as_str()),
        TokenTree::Group(g) => {
            g.delimiter == Delimiter::Parenthesis || g.delimiter == Delimiter::Bracket
        }
        _ => false,
    }
}

/// Classifies the index expression: literal index, arithmetic index, or
/// range slicing are hazardous; a bare variable (or field path) is not.
fn hazardous_index(index: &[TokenTree]) -> Option<&'static str> {
    if index.is_empty() {
        return None;
    }
    // A single literal: `v[0]`.
    if index.len() == 1 {
        if let TokenTree::Literal(_) = index[0] {
            return Some("literal indexing");
        }
    }
    let mut prev_was_value = false;
    for (i, t) in index.iter().enumerate() {
        match t {
            // Range slicing: `..` at any top-level position.
            TokenTree::Punct(p) if p.ch == '.' => {
                if matches!(index.get(i + 1), Some(TokenTree::Punct(q)) if q.ch == '.') {
                    return Some("range slicing");
                }
            }
            _ => {}
        }
        match t {
            // Binary arithmetic on the index: `v[i - 1]`, `v[2 * k]`.
            TokenTree::Punct(p) if matches!(p.ch, '+' | '-' | '*' | '/' | '%') => {
                if prev_was_value && !matches!(index.get(i + 1), Some(TokenTree::Punct(_))) {
                    return Some("arithmetic indexing");
                }
                prev_was_value = false;
            }
            TokenTree::Ident(_) | TokenTree::Literal(_) => prev_was_value = true,
            TokenTree::Group(g) if g.delimiter == Delimiter::Parenthesis => prev_was_value = true,
            _ => prev_was_value = false,
        }
    }
    None
}

/// Name fragments marking a byte-count operand.
const BYTES_HINTS: &[&str] = &["byte", "bytes", "size", "backlog", "queued", "payload", "chunk"];
/// Name fragments marking a rate operand.
const RATE_HINTS: &[&str] = &["bps", "bandwidth", "rate", "throughput"];
/// Name fragments marking a time-in-ns operand.
const TIME_HINTS: &[&str] = &["nanos", "_ns", "per_sec"];

/// The `unchecked-width-math` rule: u64-width multiply/divide chains on
/// bytes × bandwidth/time-scale operands outside `sim_core::widemath`.
/// Only non-test function bodies are scanned.
pub fn width_math(fns: &[FnInfo<'_>], out: &mut Vec<RawFinding>) {
    for f in fns {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.item.body else { continue };
        engine::visit_streams(&body.stream, &mut |stream| {
            for stmt in engine::statements(stream) {
                scan_width_stmt(stmt, out);
            }
        });
    }
}

fn scan_width_stmt(stmt: &[TokenTree], out: &mut Vec<RawFinding>) {
    // A statement routed through the sanctioned sink, an explicit u128
    // widening, or checked/saturating math is already safe.
    let mut names = std::collections::BTreeSet::new();
    engine::idents_in(stmt, &mut names);
    if names.contains("widemath")
        || names.contains("u128")
        || names.contains("i128")
        || names.iter().any(|n| n.starts_with("checked_") || n.starts_with("saturating_"))
    {
        return;
    }

    for (i, t) in stmt.iter().enumerate() {
        let TokenTree::Punct(p) = t else { continue };
        if p.ch != '*' {
            continue;
        }
        // Binary multiply, not deref/raw-pointer: previous token must be
        // a value (ident/literal/close-group).
        let prev = i.checked_sub(1).and_then(|x| stmt.get(x));
        let is_value = matches!(
            prev,
            Some(TokenTree::Literal(_)) | Some(TokenTree::Group(_))
        ) || matches!(prev, Some(TokenTree::Ident(id)) if !NON_INDEX_KEYWORDS.contains(&id.text.as_str()));
        if !is_value {
            continue;
        }

        // Classify operand hints in a window around the multiply.
        let lo = i.saturating_sub(8);
        let hi = (i + 9).min(stmt.len());
        let mut bytes_like = false;
        let mut rate_like = false;
        let mut big_scale = false;
        let mut time_like = false;
        let mut window = std::collections::BTreeSet::new();
        engine::idents_in(&stmt[lo..hi], &mut window);
        for name in &window {
            let lower = name.to_ascii_lowercase();
            bytes_like |= BYTES_HINTS.iter().any(|h| lower.contains(h));
            rate_like |= RATE_HINTS.iter().any(|h| lower.contains(h));
            time_like |= TIME_HINTS.iter().any(|h| lower.contains(h) || lower == "ns");
        }
        for t in &stmt[lo..hi] {
            if let TokenTree::Literal(l) = t {
                let digits: String = l.text.chars().filter(|c| c.is_ascii_digit()).collect();
                if digits.parse::<u128>().is_ok_and(|v| v >= 1_000_000) {
                    big_scale = true;
                }
            }
        }

        if bytes_like && (rate_like || big_scale || time_like) {
            out.push((
                p.span,
                Rule::UncheckedWidthMath,
                "u64 multiply on bytes/bandwidth/time operands can overflow; route through sim_core::widemath".to_string(),
            ));
        }
    }
}

/// Heap-allocating macros for the alloc-in-hot-path scan.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// Owning container types whose constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
    "BinaryHeap",
];
/// Constructor names on [`ALLOC_TYPES`] that allocate.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
/// Method calls that allocate a fresh owned value.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_string", "to_owned", "collect"];
/// Growth calls that extend a heap buffer in place. Only flagged on
/// locals *born* from an allocating initializer in the same function —
/// a buffer recycled via `mem::take` of a scratch field passes clean,
/// which is exactly the sanctioned fix idiom.
const GROWTH_METHODS: &[&str] =
    &["push", "push_back", "push_front", "push_str", "extend", "insert", "append"];

/// The `alloc-in-hot-path` scan over one (already hot) function body:
/// allocating macros, constructors, owning conversions, and growth of
/// function-born buffers. The caller appends the hot-chain context and
/// owns escape handling.
pub fn alloc_sites(body: &[TokenTree], out: &mut Vec<RawFinding>) {
    // Pass A: locals born from an allocating initializer.
    let mut born: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    engine::visit_streams(body, &mut |stream| {
        for stmt in engine::statements(stream) {
            let mut i = 0;
            if !engine::is_ident(stmt.first(), "let") {
                continue;
            }
            i += 1;
            if engine::is_ident(stmt.get(i), "mut") {
                i += 1;
            }
            let Some(TokenTree::Ident(name)) = stmt.get(i) else { continue };
            if !engine::is_punct(stmt.get(i + 1), '=') && !engine::is_punct(stmt.get(i + 2), '=') {
                // `let x =` or `let x: T =` (single-token type) only;
                // anything fancier falls out of the born set, which
                // under-approximates (growth stays unflagged) — safe.
                continue;
            }
            let mut probe = Vec::new();
            alloc_scan(&stmt[i + 1..], &mut probe);
            for t in &stmt[i + 1..] {
                if let TokenTree::Group(g) = t {
                    alloc_scan(&g.stream, &mut probe);
                }
            }
            if !probe.is_empty() {
                born.insert(name.text.clone());
            }
        }
    });

    // Pass B: allocation and growth sites anywhere in the body.
    engine::visit_streams(body, &mut |stream| {
        alloc_scan(stream, out);
        for (i, t) in stream.iter().enumerate() {
            let TokenTree::Ident(id) = t else { continue };
            if !GROWTH_METHODS.contains(&id.text.as_str()) {
                continue;
            }
            if !engine::is_punct(i.checked_sub(1).and_then(|p| stream.get(p)), '.') {
                continue;
            }
            if engine::paren_at(stream, i + 1).is_none() {
                continue;
            }
            let Some(recv) =
                i.checked_sub(2).and_then(|p| stream.get(p)).and_then(TokenTree::ident)
            else {
                continue;
            };
            if born.contains(recv) {
                out.push((
                    id.span,
                    Rule::AllocInHotPath,
                    format!(
                        "`{recv}.{}()` grows a buffer allocated in this function; \
                         recycle a scratch buffer (mem::take) instead",
                        id.text
                    ),
                ));
            }
        }
    });
}

/// Flat (non-recursive) scan of one stream for allocation expressions.
fn alloc_scan(stream: &[TokenTree], out: &mut Vec<RawFinding>) {
    for (i, t) in stream.iter().enumerate() {
        let TokenTree::Ident(id) = t else { continue };
        let name = id.text.as_str();
        // `vec![…]` / `format!(…)`.
        if ALLOC_MACROS.contains(&name) && engine::is_punct(stream.get(i + 1), '!') {
            out.push((
                id.span,
                Rule::AllocInHotPath,
                format!("{name}! allocates per call"),
            ));
            continue;
        }
        // `Vec::new()` / `String::from(…)` / `Box::new(…)` …
        if ALLOC_TYPES.contains(&name)
            && engine::is_path_sep(stream, i + 1)
            && stream.get(i + 3).and_then(TokenTree::ident).is_some_and(|m| {
                ALLOC_CTORS.contains(&m) && engine::paren_at(stream, i + 4).is_some()
            })
        {
            let ctor = stream[i + 3].ident().unwrap_or("new");
            out.push((
                id.span,
                Rule::AllocInHotPath,
                format!("{name}::{ctor} allocates per call"),
            ));
            continue;
        }
        // `.clone()` / `.to_vec()` / `.collect::<…>()` …
        if ALLOC_METHODS.contains(&name)
            && engine::is_punct(i.checked_sub(1).and_then(|p| stream.get(p)), '.')
        {
            let called = engine::paren_at(stream, i + 1).is_some() || {
                // turbofish: `collect::<Vec<_>>(…)`.
                engine::is_path_sep(stream, i + 1)
                    && engine::is_punct(stream.get(i + 3), '<')
                    && {
                        let mut depth = 0usize;
                        let mut close = None;
                        for (j, t) in stream.iter().enumerate().skip(i + 3) {
                            match t.punct() {
                                Some('<') => depth += 1,
                                Some('>') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        close = Some(j);
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        close.is_some_and(|j| engine::paren_at(stream, j + 1).is_some())
                    }
            };
            if called {
                out.push((
                    id.span,
                    Rule::AllocInHotPath,
                    format!(".{name}() allocates an owned value per call"),
                ));
            }
        }
    }
}

/// Converts raw findings into [`Finding`]s, applying escapes.
pub fn finalize(file: &str, cx: &FileCx, raw: Vec<RawFinding>, out: &mut Vec<Finding>) {
    let mut consumed = std::collections::BTreeMap::new();
    finalize_tracked(file, cx, raw, out, &mut consumed);
}

/// [`finalize`], recording which escape comments suppressed something:
/// `consumed` maps `(escape line, rule-as-written)` to the number of
/// findings it swallowed. The stale-escape pass reports reasoned
/// escapes that consume nothing.
pub fn finalize_tracked(
    file: &str,
    cx: &FileCx,
    raw: Vec<RawFinding>,
    out: &mut Vec<Finding>,
    consumed: &mut std::collections::BTreeMap<(usize, String), usize>,
) {
    for (span, rule, mut message) in raw {
        if let Some(key) = cx.escaped_at(span.line, rule.name()) {
            *consumed.entry(key).or_insert(0) += 1;
            continue;
        }
        if cx.reasonless_escape(span.line, rule.name()) {
            message.push_str(
                " (escape present but missing a reason; reasons are mandatory — see DESIGN.md §10)",
            );
        }
        out.push(Finding {
            file: file.to_string(),
            line: span.line,
            column: span.column,
            rule,
            message,
        });
    }
}
