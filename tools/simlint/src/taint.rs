//! Intra-crate order-taint dataflow.
//!
//! Hash-map/set iteration order is nondeterministic, but not every
//! iteration is a hazard: a loop that only feeds commutative reductions
//! (`+=`, `insert`, `max`) or a chain that lands in an ordered
//! collection is order-insensitive. This module tracks taint from
//! iteration **sources** through local bindings to **sinks** (event
//! scheduling, pushes to exported collections, trace-hash/print output)
//! and classifies each iteration site:
//!
//! * proven to reach a sink → [`Rule::OrderTaint`] naming the sink;
//! * unresolved flow (unknown callee, returned value, stored on
//!   `self`) → [`Rule::UnorderedIter`] (the conservative v1 verdict);
//! * fully consumed by commutative/sanitizing uses → clean.
//!
//! Lookup-only maps (get/insert/entry/contains_key) never iterate, so
//! they pass without any escape — that is what lets DESIGN.md §7's
//! manual allowlist shrink.

use std::collections::{BTreeMap, BTreeSet};

use syn::{Delimiter, Span, TokenTree};

use crate::engine::{self, FileCx, FnInfo};
use crate::rules::RawFinding;
use crate::{Rule, RuleSet};

/// Iteration methods that expose hash ordering.
pub const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain"];

/// Iteration methods that take a closure executed per element.
const CLOSURE_ITER_METHODS: &[&str] = &["retain", "for_each"];

/// Chain terminators whose result is order-insensitive.
const SANITIZERS: &[&str] = &[
    "sum", "product", "count", "min", "max", "min_by", "min_by_key", "max_by", "max_by_key",
    "all", "any", "len", "is_empty", "fold_commutative",
];

/// Collection types whose contents do not depend on insertion order.
const ORDERED_COLLECT: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap", "HashMap", "HashSet"];

/// Call names treated as order-observable sinks.
const SINKS: &[&str] = &[
    "schedule", "schedule_at", "schedule_event", "send", "try_send", "write", "write_all",
    "writeln", "push", "push_back", "push_front", "append", "extend", "record", "emit",
    "publish", "hash", "write_u64", "write_u32", "write_bytes", "update", "mark", "println",
    "print", "eprintln", "eprint", "observe",
];

/// Commutative per-element operations: safe to feed tainted values.
const COMMUTATIVE: &[&str] = &["insert", "entry", "or_insert", "or_insert_with", "or_default", "remove"];

/// Pure wrappers/constructors: propagate taint, never "unknown".
const WRAPPERS: &[&str] = &[
    "Some", "Ok", "Err", "Box", "Rc", "Arc", "Vec", "vec", "format", "clone", "cloned",
    "copied", "to_string", "to_owned", "to_vec", "as_ref", "as_str", "as_slice", "into",
    "from", "cmp", "get", "contains", "contains_key", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "unwrap", "expect", "min", "max", "abs", "saturating_sub",
    "saturating_add", "map", "filter", "filter_map", "and_then", "enumerate", "zip", "rev",
    "take", "skip", "chain", "flatten", "flat_map", "collect", "copied",
];

/// One iteration site under classification.
struct Event {
    span: Span,
    recv: String,
    status: Status,
}

#[derive(Clone, PartialEq)]
enum Status {
    /// No escape observed yet → clean if it stays this way.
    Pending,
    /// Flow left the function unresolved → `unordered-iter`.
    Unknown,
    /// Reached a named sink → `order-taint`.
    Sink(String),
}

struct Analysis<'cx> {
    cx: &'cx FileCx,
    hash_names: &'cx BTreeSet<String>,
    params: BTreeSet<String>,
    locals: BTreeSet<String>,
    /// Variable → the iteration events whose order it carries.
    tainted: BTreeMap<String, BTreeSet<usize>>,
    events: Vec<Event>,
}

/// Collects every identifier bound to a `HashMap`/`HashSet` in the file:
/// `name: HashMap<…>` annotations (fields, params, lets) and
/// `let name = HashMap::new()`-style constructions. Alias-aware.
pub fn collect_hash_names(cx: &FileCx, flat: &[TokenTree]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    engine::visit_streams(flat, &mut |stream| {
        for (i, t) in stream.iter().enumerate() {
            let TokenTree::Ident(id) = t else { continue };
            // `name : … Hash… <` — a typed binding or field. Require a
            // single colon (not `::`) on both sides.
            if engine::is_punct(stream.get(i + 1), ':')
                && !engine::is_punct(stream.get(i + 2), ':')
                && !engine::is_punct(i.checked_sub(1).and_then(|p| stream.get(p)), ':')
            {
                for j in (i + 2)..(i + 10).min(stream.len()) {
                    match &stream[j] {
                        TokenTree::Ident(ty) => {
                            let canon = cx.canonical(&ty.text);
                            if (canon == "HashMap" || canon == "HashSet")
                                && engine::is_punct(stream.get(j + 1), '<')
                            {
                                out.insert(id.text.clone());
                            }
                        }
                        TokenTree::Punct(p) if matches!(p.ch, ',' | ';' | '=' | '>') => break,
                        _ => {}
                    }
                }
            }
        }
        // `let [mut] name … = … Hash… :: new/with_capacity/default/from`.
        for run in engine::statements(stream) {
            if !engine::is_ident(run.first(), "let") {
                continue;
            }
            let Some(bound) = let_bound_ident(run) else { continue };
            for (j, t) in run.iter().enumerate() {
                let TokenTree::Ident(ty) = t else { continue };
                let canon = cx.canonical(&ty.text);
                if (canon == "HashMap" || canon == "HashSet")
                    && engine::is_path_sep(run, j + 1)
                    && matches!(
                        run.get(j + 3).and_then(TokenTree::ident),
                        Some("new") | Some("with_capacity") | Some("default") | Some("from")
                    )
                {
                    out.insert(bound.clone());
                }
            }
        }
    });
    out
}

/// Parameter names of a function: idents directly followed by a single
/// `:` at the top level of the signature's paren group.
fn param_names(f: &syn::ItemFn) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let Some(g) = f.params() {
        let s = &g.stream;
        for (i, t) in s.iter().enumerate() {
            if let TokenTree::Ident(id) = t {
                if engine::is_punct(s.get(i + 1), ':')
                    && !engine::is_punct(s.get(i + 2), ':')
                    && !engine::is_punct(i.checked_sub(1).and_then(|p| s.get(p)), ':')
                {
                    out.insert(id.text.clone());
                }
            }
        }
    }
    out
}

/// The identifier bound by a `let` statement run.
fn let_bound_ident(run: &[TokenTree]) -> Option<String> {
    let mut i = 1;
    while let Some(t) = run.get(i) {
        match t {
            TokenTree::Ident(id) if id.text == "mut" => i += 1,
            TokenTree::Ident(id) => return Some(id.text.clone()),
            _ => return None,
        }
    }
    None
}

/// Runs the order-taint analysis over every function, emitting
/// `order-taint` and `unordered-iter` raw findings.
pub fn analyze(
    cx: &FileCx,
    fns: &[FnInfo<'_>],
    hash_names: &BTreeSet<String>,
    rules: &RuleSet,
    out: &mut Vec<RawFinding>,
) {
    if !rules.unordered_iter && !rules.order_taint {
        return;
    }
    for f in fns {
        let Some(body) = &f.item.body else { continue };
        let mut a = Analysis {
            cx,
            hash_names,
            params: param_names(f.item),
            locals: BTreeSet::new(),
            tainted: BTreeMap::new(),
            events: Vec::new(),
        };
        a.block(&body.stream, true);
        for ev in a.events {
            match ev.status {
                Status::Pending => {}
                Status::Unknown => {
                    if rules.unordered_iter {
                        out.push((
                            ev.span,
                            Rule::UnorderedIter,
                            format!(
                                "iteration over hash collection `{}` has nondeterministic order and its flow is unresolved; sort, use a BTree collection, or reduce commutatively",
                                ev.recv
                            ),
                        ));
                    }
                }
                Status::Sink(name) => {
                    let rule = if rules.order_taint { Rule::OrderTaint } else { Rule::UnorderedIter };
                    out.push((
                        ev.span,
                        rule,
                        format!(
                            "iteration order of hash collection `{}` reaches sink `{}`; sort before the sink or use a BTree collection",
                            ev.recv, name
                        ),
                    ));
                }
            }
        }
    }
}

impl Analysis<'_> {
    fn is_hash(&self, name: &str) -> bool {
        self.hash_names.contains(name)
    }

    fn taint_of(&self, name: &str) -> Option<&BTreeSet<usize>> {
        self.tainted.get(name)
    }

    fn mark(&mut self, roots: &BTreeSet<usize>, status: Status) {
        for &r in roots {
            let ev = &mut self.events[r];
            match (&ev.status, &status) {
                (Status::Pending, _) => ev.status = status.clone(),
                (Status::Unknown, Status::Sink(_)) => ev.status = status.clone(),
                _ => {}
            }
        }
    }

    /// Union of taint roots of every tainted identifier in the stream
    /// (descending into all groups).
    fn tainted_roots_in(&self, stream: &[TokenTree]) -> BTreeSet<usize> {
        let mut names = BTreeSet::new();
        engine::idents_in(stream, &mut names);
        let mut roots = BTreeSet::new();
        for n in &names {
            if let Some(r) = self.taint_of(n) {
                roots.extend(r.iter().copied());
            }
        }
        roots
    }

    /// Analyzes a block stream statement by statement. `top` marks the
    /// function body itself (for tail-expression detection).
    fn block(&mut self, stream: &[TokenTree], top: bool) {
        let runs = split_runs(stream);
        let n = runs.len();
        for (ix, (run, semi)) in runs.into_iter().enumerate() {
            if run.is_empty() {
                continue;
            }
            if engine::is_ident(run.first(), "for") {
                self.for_loop(run);
                continue;
            }
            let tail = top && ix + 1 == n && !semi;
            let events_before = self.events.len();
            let tail_roots = if tail { self.tainted_roots_in(run) } else { BTreeSet::new() };
            self.generic_run(run);
            // Tail expression of the function body: an unresolved escape
            // for any taint it mentions and any chain it starts —
            // unless the chain was sanitized (never became an event).
            if tail {
                if !tail_roots.is_empty() {
                    self.mark(&tail_roots, Status::Unknown);
                }
                let fresh: BTreeSet<usize> = (events_before..self.events.len())
                    .filter(|&i| self.events[i].status == Status::Pending)
                    .collect();
                if !fresh.is_empty() {
                    self.mark(&fresh, Status::Unknown);
                }
            }
        }
    }

    /// `for <pat> in <iter-expr> { body }`.
    fn for_loop(&mut self, run: &[TokenTree]) {
        // Locate the top-level `in` and the trailing body group.
        let in_at = run.iter().position(|t| t.ident() == Some("in"));
        let body = match run.last() {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => Some(g),
            _ => None,
        };
        let (Some(in_at), Some(body)) = (in_at, body) else {
            // Malformed for our purposes; still visit nested blocks.
            self.recurse_braces(run);
            return;
        };
        let pat = &run[1..in_at];
        let iter_expr = &run[in_at + 1..run.len() - 1];

        let mut pat_idents = BTreeSet::new();
        engine::idents_in(pat, &mut pat_idents);
        pat_idents.retain(|n| n != "mut" && n != "ref" && n != "_");

        // Does the iterated expression expose hash order?
        let mut roots = BTreeSet::new();
        if let Some((span, recv, sanitized)) = self.hash_iteration(iter_expr) {
            if !sanitized {
                self.events.push(Event { span, recv, status: Status::Pending });
                roots.insert(self.events.len() - 1);
            }
        }
        // Iterating an already-tainted value forwards its roots.
        roots.extend(self.tainted_roots_in(iter_expr));

        let saved: Vec<(String, Option<BTreeSet<usize>>)> = pat_idents
            .iter()
            .map(|n| (n.clone(), self.tainted.get(n).cloned()))
            .collect();
        if !roots.is_empty() {
            for n in &pat_idents {
                self.tainted.insert(n.clone(), roots.clone());
            }
        }
        self.block(&body.stream, false);
        // Loop vars go out of scope.
        for (n, prev) in saved {
            match prev {
                Some(r) => {
                    self.tainted.insert(n, r);
                }
                None => {
                    self.tainted.remove(&n);
                }
            }
        }
    }

    /// Detects a hash iteration inside an expression: either a bare hash
    /// receiver (`&m`, `m`) or a `recv.iter()`-style chain. Returns the
    /// anchor span, a receiver description, and whether a sanitizing
    /// terminator already neutralises the order.
    fn hash_iteration(&self, expr: &[TokenTree]) -> Option<(Span, String, bool)> {
        // Chain form: `recv . M ( … )` with M an iteration method.
        for (i, t) in expr.iter().enumerate() {
            let TokenTree::Ident(id) = t else { continue };
            let is_iter = ITER_METHODS.contains(&id.text.as_str());
            let is_closure_iter = CLOSURE_ITER_METHODS.contains(&id.text.as_str());
            if (is_iter || is_closure_iter)
                && engine::is_punct(i.checked_sub(1).and_then(|p| expr.get(p)), '.')
                && engine::paren_at(expr, i + 1).is_some()
            {
                let recv = self.receiver_hash_name(expr, i - 1)?;
                let mut rest_idents = BTreeSet::new();
                engine::idents_in(&expr[i + 1..], &mut rest_idents);
                let sanitized = rest_idents.iter().any(|n| {
                    SANITIZERS.contains(&n.as_str())
                        || ORDERED_COLLECT.contains(&self.cx.canonical(n))
                });
                return Some((id.span, recv, sanitized));
            }
        }
        // Bare form: `[& [mut]] m` where every ident is skippable except
        // one hash name.
        let idents: Vec<&syn::Ident> = expr
            .iter()
            .filter_map(|t| match t {
                TokenTree::Ident(i) => Some(i),
                _ => None,
            })
            .collect();
        let names: Vec<&syn::Ident> =
            idents.into_iter().filter(|i| i.text != "mut" && i.text != "self").collect();
        if let [only] = names.as_slice() {
            if self.is_hash(&only.text) {
                return Some((only.span, only.text.clone(), false));
            }
        }
        None
    }

    /// Resolves the receiver run ending at the `.` at `dot_at` to a hash
    /// name: `m.`, `self.field.`, `x.field.` where the final segment (or
    /// the variable itself) is a known hash binding/field.
    fn receiver_hash_name(&self, expr: &[TokenTree], dot_at: usize) -> Option<String> {
        let mut j = dot_at;
        let mut segs: Vec<String> = Vec::new();
        while j > 0 {
            let prev = &expr[j - 1];
            match prev {
                TokenTree::Ident(id) => {
                    segs.push(id.text.clone());
                    j -= 1;
                    if j > 0 && engine::is_punct(expr.get(j - 1), '.') {
                        j -= 1;
                        continue;
                    }
                    break;
                }
                TokenTree::Group(g) if g.delimiter == Delimiter::Parenthesis => {
                    // A call in the receiver chain: give up on this hop
                    // but keep what we have.
                    break;
                }
                _ => break,
            }
        }
        segs.into_iter().find(|s| self.is_hash(s))
    }

    /// Generic (non-`for`) statement processing.
    fn generic_run(&mut self, run: &[TokenTree]) {
        if engine::is_ident(run.first(), "let") {
            if let Some(bound) = let_bound_ident(run) {
                self.locals.insert(bound);
            }
        }

        // 1. Iteration chains starting in this run.
        if let Some((span, recv, sanitized)) = self.hash_iteration_chain_only(run) {
            if !sanitized {
                self.events.push(Event { span, recv, status: Status::Pending });
                let id = self.events.len() - 1;
                self.resolve_chain_escape(run, id);
            }
        }

        // 2. Sort-family calls launder their receiver.
        for (i, t) in run.iter().enumerate() {
            let TokenTree::Ident(id) = t else { continue };
            if id.text.starts_with("sort")
                && engine::is_punct(i.checked_sub(1).and_then(|p| run.get(p)), '.')
                && engine::paren_at(run, i + 1).is_some()
            {
                if let Some(recv) =
                    i.checked_sub(2).and_then(|p| run.get(p)).and_then(TokenTree::ident)
                {
                    self.tainted.remove(recv);
                }
            }
        }

        // 3. Calls consuming tainted arguments (skipping nested blocks —
        // those are analyzed by recursion below).
        self.scan_calls(run);

        // 4. `let` propagation.
        if engine::is_ident(run.first(), "let") {
            if let Some(bound) = let_bound_ident(run) {
                if let Some(eq) = top_level_assign(run) {
                    let rhs = &run[eq + 1..];
                    let mut rhs_idents = BTreeSet::new();
                    engine::idents_in(rhs, &mut rhs_idents);
                    let sanitized = rhs_idents.iter().any(|n| {
                        SANITIZERS.contains(&n.as_str())
                            || ORDERED_COLLECT.contains(&self.cx.canonical(n))
                    });
                    let roots = self.tainted_roots_in(rhs);
                    if !roots.is_empty() && !sanitized {
                        self.tainted.entry(bound).or_default().extend(roots);
                    }
                }
            }
        }

        // 5. `return` and `self.x = …` escapes.
        if engine::is_ident(run.first(), "return") {
            let roots = self.tainted_roots_in(&run[1..]);
            if !roots.is_empty() {
                self.mark(&roots, Status::Unknown);
            }
        } else if let Some(eq) = top_level_assign(run) {
            let lhs = &run[..eq];
            let has_self = lhs.iter().any(|t| t.ident() == Some("self"));
            let lhs_local = lhs
                .iter()
                .filter_map(TokenTree::ident)
                .any(|n| self.locals.contains(n) || self.tainted.contains_key(n));
            if has_self || !lhs_local {
                let rhs = &run[eq + 1..];
                let mut rhs_idents = BTreeSet::new();
                engine::idents_in(rhs, &mut rhs_idents);
                let sanitized = rhs_idents.iter().any(|n| {
                    SANITIZERS.contains(&n.as_str())
                        || ORDERED_COLLECT.contains(&self.cx.canonical(n))
                });
                let roots = self.tainted_roots_in(rhs);
                if !roots.is_empty() && !sanitized && !engine::is_ident(run.first(), "let") {
                    self.mark(&roots, Status::Unknown);
                }
            }
        }

        // 6. Nested blocks.
        self.recurse_braces(run);
    }

    /// Like [`Self::hash_iteration`] but only the chain form, and only
    /// outside top-level brace groups (nested blocks are handled by
    /// recursion).
    fn hash_iteration_chain_only(&self, run: &[TokenTree]) -> Option<(Span, String, bool)> {
        for (i, t) in run.iter().enumerate() {
            if matches!(t, TokenTree::Group(g) if g.delimiter == Delimiter::Brace) {
                continue;
            }
            let TokenTree::Ident(id) = t else { continue };
            let is_iter = ITER_METHODS.contains(&id.text.as_str())
                || CLOSURE_ITER_METHODS.contains(&id.text.as_str());
            if is_iter
                && engine::is_punct(i.checked_sub(1).and_then(|p| run.get(p)), '.')
                && engine::paren_at(run, i + 1).is_some()
            {
                if let Some(recv) = self.receiver_hash_name(run, i - 1) {
                    let mut rest = BTreeSet::new();
                    engine::idents_in(&run[i + 1..], &mut rest);
                    // The let-annotation also names the collect target.
                    let mut head = BTreeSet::new();
                    engine::idents_in(&run[..i.saturating_sub(1)], &mut head);
                    let sanitized = rest
                        .iter()
                        .any(|n| {
                            SANITIZERS.contains(&n.as_str())
                                || ORDERED_COLLECT.contains(&self.cx.canonical(n))
                        })
                        || head.iter().any(|n| ORDERED_COLLECT.contains(&self.cx.canonical(n)));
                    return Some((id.span, recv, sanitized));
                }
            }
        }
        None
    }

    /// Decides where an unsanitized iteration chain's order goes: into a
    /// `let` binding (taint it), into a sink named in the run, or
    /// nowhere resolvable (unknown).
    fn resolve_chain_escape(&mut self, run: &[TokenTree], event: usize) {
        let roots: BTreeSet<usize> = [event].into_iter().collect();
        if engine::is_ident(run.first(), "let") {
            if let Some(bound) = let_bound_ident(run) {
                self.tainted.entry(bound).or_default().extend(roots.iter().copied());
                return;
            }
        }
        // `return <chain>` escapes the function unresolved.
        if engine::is_ident(run.first(), "return") {
            self.mark(&roots, Status::Unknown);
            return;
        }
        // `target = <chain>`: a local target carries the taint; a field
        // or unknown target escapes.
        if let Some(eq) = top_level_assign(run) {
            let lhs = &run[..eq];
            let lhs_idents: Vec<&str> = lhs.iter().filter_map(TokenTree::ident).collect();
            if let [single] = lhs_idents.as_slice() {
                if self.locals.contains(*single) {
                    self.tainted.entry(single.to_string()).or_default().extend(roots);
                    return;
                }
            }
            self.mark(&roots, Status::Unknown);
            return;
        }
        // Closure-driven iteration (`for_each`, `retain`) or a chain in
        // expression position: look for sink names anywhere in the run;
        // commutative-only consumption stays clean.
        let mut names = BTreeSet::new();
        engine::idents_in(run, &mut names);
        if let Some(sink) = names.iter().find(|n| SINKS.contains(&n.as_str())) {
            self.mark(&roots, Status::Sink(sink.clone()));
            return;
        }
        let consuming_calls: Vec<&String> = names
            .iter()
            .filter(|n| {
                !SANITIZERS.contains(&n.as_str())
                    && !COMMUTATIVE.contains(&n.as_str())
                    && !WRAPPERS.contains(&n.as_str())
                    && !ITER_METHODS.contains(&n.as_str())
                    && !CLOSURE_ITER_METHODS.contains(&n.as_str())
            })
            .collect();
        // Only hash receivers, loop plumbing, and pure names left → the
        // chain is consumed commutatively; anything else is unresolved.
        let all_known = consuming_calls
            .iter()
            .all(|n| self.is_hash(n) || n.as_str() == "self" || !is_call_name(run, n));
        if !all_known {
            self.mark(&roots, Status::Unknown);
        }
    }

    /// Scans a run for calls with tainted arguments, classifying each as
    /// sink / commutative / propagation / unknown. Does not enter
    /// top-level brace groups.
    fn scan_calls(&mut self, run: &[TokenTree]) {
        let mut pending: Vec<(String, Option<String>, BTreeSet<usize>)> = Vec::new();
        collect_calls(run, &mut |name, recv, args| {
            let roots = self.tainted_roots_in(args);
            if roots.is_empty() {
                return;
            }
            pending.push((name.to_string(), recv.map(str::to_string), roots));
        });
        for (name, recv, roots) in pending {
            if SINKS.contains(&name.as_str()) {
                // Pushing into a tracked local propagates; anything else
                // (self fields, params, channels) is a real sink.
                if matches!(name.as_str(), "push" | "push_back" | "push_front" | "extend" | "append")
                {
                    if let Some(r) = &recv {
                        if self.locals.contains(r) && !self.params.contains(r) {
                            self.tainted.entry(r.clone()).or_default().extend(roots);
                            continue;
                        }
                    }
                }
                self.mark(&roots, Status::Sink(name.clone()));
            } else if COMMUTATIVE.contains(&name.as_str())
                || WRAPPERS.contains(&name.as_str())
                || SANITIZERS.contains(&name.as_str())
            {
                // Commutative/pure: no escape.
            } else {
                self.mark(&roots, Status::Unknown);
            }
        }
    }

    /// Recurses into the run's top-level brace groups (if/else/match/
    /// while bodies).
    fn recurse_braces(&mut self, run: &[TokenTree]) {
        for t in run {
            if let TokenTree::Group(g) = t {
                if g.delimiter == Delimiter::Brace {
                    self.block(&g.stream, false);
                }
            }
        }
    }
}

/// True if `name` appears as a call (`name(…)` or `name!(…)`) in the run.
fn is_call_name(run: &[TokenTree], name: &str) -> bool {
    let mut found = false;
    engine::visit_streams(run, &mut |stream| {
        for (i, t) in stream.iter().enumerate() {
            if t.ident() == Some(name)
                && (engine::paren_at(stream, i + 1).is_some()
                    || engine::is_punct(stream.get(i + 1), '!'))
            {
                found = true;
            }
        }
    });
    found
}

/// Invokes `f(name, receiver, args)` for every call in the run:
/// `recv.name(args)`, `name(args)`, and `name!(args)`. Descends into
/// paren/bracket groups (argument lists) but not top-level brace groups.
fn collect_calls<'a>(
    run: &'a [TokenTree],
    f: &mut impl FnMut(&'a str, Option<&'a str>, &'a [TokenTree]),
) {
    for (i, t) in run.iter().enumerate() {
        match t {
            TokenTree::Ident(id) => {
                let args = match run.get(i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter != Delimiter::Brace => {
                        Some(&g.stream)
                    }
                    Some(TokenTree::Punct(p)) if p.ch == '!' => match run.get(i + 2) {
                        Some(TokenTree::Group(g)) => Some(&g.stream),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(args) = args {
                    let recv = i
                        .checked_sub(2)
                        .filter(|_| engine::is_punct(run.get(i - 1), '.'))
                        .and_then(|p| run.get(p))
                        .and_then(TokenTree::ident);
                    f(&id.text, recv, args);
                }
            }
            TokenTree::Group(g) if g.delimiter != Delimiter::Brace => {
                collect_calls(&g.stream, f);
            }
            // Top-level brace groups are nested statement blocks handled
            // by the block recursion, not by this scan.
            _ => {}
        }
    }
}

/// Splits a block stream into statement runs at top-level `;`, `,`, and
/// after top-level brace groups (block expressions carry no semicolon).
/// Returns each run with whether a `;` terminated it.
fn split_runs(stream: &[TokenTree]) -> Vec<(&[TokenTree], bool)> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < stream.len() {
        match &stream[i] {
            TokenTree::Punct(p) if p.ch == ';' || p.ch == ',' => {
                out.push((&stream[start..i], p.ch == ';'));
                start = i + 1;
            }
            // `else { … }` / `else if …` keeps the chain together.
            TokenTree::Group(g)
                if g.delimiter == Delimiter::Brace
                    && !engine::is_ident(stream.get(i + 1), "else") =>
            {
                out.push((&stream[start..=i], false));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < stream.len() {
        out.push((&stream[start..], false));
    }
    out
}

/// The index of a top-level plain `=` (not `==`, `=>`, `<=`, `+=` …).
fn top_level_assign(run: &[TokenTree]) -> Option<usize> {
    for (i, t) in run.iter().enumerate() {
        let TokenTree::Punct(p) = t else { continue };
        if p.ch != '=' {
            continue;
        }
        let next_eq = engine::is_punct(run.get(i + 1), '=') || engine::is_punct(run.get(i + 1), '>');
        let prev_op = i
            .checked_sub(1)
            .and_then(|x| run.get(x))
            .and_then(TokenTree::punct)
            .is_some_and(|c| matches!(c, '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'));
        if !next_eq && !prev_op {
            return Some(i);
        }
    }
    None
}
