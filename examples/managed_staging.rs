//! Managed staging at machine scale: the paper's weak-scaling scenarios.
//!
//! Replays the three Fig. 7/8/9 configurations on the discrete-event
//! substrate and narrates what the global manager did: stealing a node
//! from the over-provisioned Helper at 256 simulation nodes, consuming
//! the spare staging nodes at 512, and pruning the hopeless Bonds
//! container (with its dependents) at 1024 — before the pipeline blocks.
//!
//! ```text
//! cargo run --release --example managed_staging
//! ```

use iocontainers::{run_pipeline, Action, ExperimentConfig, PipelineRun, ResourceSource};

fn narrate(name: &str, run: &PipelineRun) {
    println!("== {name} ==");
    for (t, action) in run.log.actions() {
        let what = match action {
            Action::Increase { container, added, source } => {
                let src = match source {
                    ResourceSource::Spare => "spare staging nodes".to_string(),
                    ResourceSource::StolenFrom(d) => {
                        format!("nodes stolen from {}", run.log.name_of(*d))
                    }
                };
                format!("increase {} by {added} ({src})", run.log.name_of(*container))
            }
            Action::Decrease { container, removed } => {
                format!("decrease {} by {removed}", run.log.name_of(*container))
            }
            Action::Offline { containers } => format!(
                "take offline: {}",
                containers.iter().map(|c| run.log.name_of(*c)).collect::<Vec<_>>().join(", ")
            ),
            Action::Activate { container } => {
                format!("activate {}", run.log.name_of(*container))
            }
            Action::Blocked { container } => {
                format!("PIPELINE BLOCKED at {}", run.log.name_of(*container))
            }
            Action::TradeAborted { donor, recipient } => format!(
                "trade aborted: {} -> {} (rolled back, will retry)",
                run.log.name_of(*donor),
                run.log.name_of(*recipient)
            ),
        };
        println!("  t={:>7.1}s  {what}", t.as_secs_f64());
    }
    if run.log.actions().is_empty() {
        println!("  (no management action was needed)");
    }
    match run.blocked_at {
        Some(t) => println!("  !! application blocked at t={:.1}s", t.as_secs_f64()),
        None => println!("  application never blocked"),
    }
    if !run.disk_steps.is_empty() {
        let (step, prov) = &run.disk_steps[0];
        println!(
            "  {} steps stored with provenance (e.g. step {step}: ran {:?}, owed {:?})",
            run.disk_steps.len(),
            prov.processed_by,
            prov.pending_ops
        );
    }
    let e2e = run.log.e2e_series();
    if let (Some(max), Some(last)) = (e2e.max_value(), e2e.last_value()) {
        println!("  end-to-end latency: peak {max:.1}s, final {last:.1}s");
    }
    println!();
}

fn main() {
    println!("I/O container management across the paper's weak-scaling setups\n");
    narrate("Fig. 7 — 256 simulation / 13 staging nodes (no spares)",
        &run_pipeline(ExperimentConfig::fig7()));
    narrate("Fig. 8 — 512 simulation / 24 staging nodes (4 spares)",
        &run_pipeline(ExperimentConfig::fig8()));
    narrate("Fig. 9/10 — 1024 simulation / 24 staging nodes (insufficient)",
        &run_pipeline(ExperimentConfig::fig9()));
}
