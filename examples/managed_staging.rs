//! Managed staging at machine scale: the paper's weak-scaling scenarios.
//!
//! Replays the three Fig. 7/8/9 configurations on the discrete-event
//! substrate and narrates what the global manager did: stealing a node
//! from the over-provisioned Helper at 256 simulation nodes, consuming
//! the spare staging nodes at 512, and pruning the hopeless Bonds
//! container (with its dependents) at 1024 — before the pipeline blocks.
//!
//! ```text
//! cargo run --release --example managed_staging
//! ```

use iocontainers::{run_pipeline, ExperimentConfig, PipelineRun};
use simtel::export::{chrome_trace_json, series_csv};
use simtel::TelemetryConfig;

fn narrate(name: &str, run: &PipelineRun) {
    println!("== {name} ==");
    for (t, action) in run.log.actions() {
        println!("  t={:>7.1}s  {}", t.as_secs_f64(), run.log.action_label(action));
    }
    if run.log.actions().is_empty() {
        println!("  (no management action was needed)");
    }
    match run.blocked_at {
        Some(t) => println!("  !! application blocked at t={:.1}s", t.as_secs_f64()),
        None => println!("  application never blocked"),
    }
    if !run.disk_steps.is_empty() {
        let (step, prov) = &run.disk_steps[0];
        println!(
            "  {} steps stored with provenance (e.g. step {step}: ran {:?}, owed {:?})",
            run.disk_steps.len(),
            prov.processed_by,
            prov.pending_ops
        );
    }
    let e2e = run.log.e2e_series();
    if let (Some(max), Some(last)) = (e2e.max_value(), e2e.last_value()) {
        println!("  end-to-end latency: peak {max:.1}s, final {last:.1}s");
    }
    println!();
}

fn main() {
    println!("I/O container management across the paper's weak-scaling setups\n");
    // The Fig. 7 run records full telemetry; its trace is exported below.
    let fig7 = run_pipeline(
        ExperimentConfig::builder_from(ExperimentConfig::fig7())
            .telemetry(TelemetryConfig::all())
            .build()
            .expect("the Fig. 7 preset is valid"),
    );
    narrate("Fig. 7 — 256 simulation / 13 staging nodes (no spares)", &fig7);
    narrate("Fig. 8 — 512 simulation / 24 staging nodes (4 spares)",
        &run_pipeline(ExperimentConfig::fig8()));
    narrate("Fig. 9/10 — 1024 simulation / 24 staging nodes (insufficient)",
        &run_pipeline(ExperimentConfig::fig9()));

    // Export the Fig. 7 trace: per-container service spans, management
    // markers, SLA violations, and the monitoring gauges.
    let snap = fig7.telemetry.snapshot();
    let dir = std::path::Path::new("target/traces");
    std::fs::create_dir_all(dir).expect("create target/traces");
    let json_path = dir.join("managed_staging.trace.json");
    let csv_path = dir.join("managed_staging.series.csv");
    std::fs::write(&json_path, chrome_trace_json(&snap)).expect("write Perfetto trace");
    std::fs::write(&csv_path, series_csv(&snap)).expect("write series CSV");
    println!("Fig. 7 trace: {} (open at https://ui.perfetto.dev)", json_path.display());
    println!("Fig. 7 series: {}", csv_path.display());
}
