//! Fan-out streaming: one MD writer group feeding three pipelines at
//! once over the step-streaming engine.
//!
//! A two-rank writer group (a live [`mdsim::MdEngine`] split into rank
//! chunks) seals global steps into the stream log. Three named cursors
//! consume it concurrently:
//!
//! * **viz** renders every step as it seals (here: a density readout);
//! * **analytics** crashes mid-stream and rejoins with `Attach::Resume`,
//!   observing every step exactly once — the parked cursor held its
//!   place, backpressuring the writers instead of losing steps;
//! * **archival** writes every fragment to a BP container file, which a
//!   [`stream::FileSource`] then replays to prove file/stream parity.
//!
//! A fourth reader attaches with `Attach::Current` mid-run and sees only
//! the tail. Control announcements (seals, attaches, detaches) flow to an
//! EVPath overlay, as a container manager would observe them.
//!
//! ```text
//! cargo run --release --example stream_fanout
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adios::{AttrValue, BpFileWriter};
use evpath::{Action, Overlay};
use iocontainers::codec;
use mdsim::{MdConfig, MdEngine};
use smartpointer::split_snapshot;
use stream::{
    Attach, FileSource, StepSource, StreamConfig, StreamControl, StreamEngine,
};

const STEPS: u64 = 10;
const RANKS: u32 = 2;

fn main() {
    // Control plane: count seal/attach/detach announcements on an overlay.
    let overlay = Overlay::new("stream-manager");
    let sealed = Arc::new(AtomicU64::new(0));
    let attached = Arc::new(AtomicU64::new(0));
    let detached = Arc::new(AtomicU64::new(0));
    let (s, a, d) = (sealed.clone(), attached.clone(), detached.clone());
    let stone = overlay.add_stone(Action::Terminal(Box::new(move |ev| {
        match ev.expect::<StreamControl>() {
            StreamControl::Sealed { .. } => s.fetch_add(1, Ordering::Relaxed),
            StreamControl::Attached { .. } => a.fetch_add(1, Ordering::Relaxed),
            StreamControl::Detached { .. } => d.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    })));

    let eng = StreamEngine::builder(StreamConfig { writers: RANKS, retention: 4 })
        .control(overlay.sender(), stone)
        .build();

    let archive_dir =
        std::env::temp_dir().join(format!("ioc-stream-fanout-{}", std::process::id()));
    std::fs::create_dir_all(&archive_dir).expect("temp dir is writable");
    let archive_path = archive_dir.join("stream-archive.bp");

    println!(
        "streaming {STEPS} steps from a {RANKS}-rank writer group to 3 concurrent readers..."
    );

    let mut live_archive: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        // --- Writer group: the MD application, split into rank chunks. ---
        let writers: Vec<_> = (0..RANKS).map(|rank| eng.writer(rank)).collect();
        scope.spawn({
            let writers = writers;
            move || {
                let mut md = MdEngine::new(MdConfig::default());
                for _ in 0..STEPS {
                    let snap = md.run_epoch(2);
                    for (rank, chunk) in
                        split_snapshot(&snap, RANKS as usize).into_iter().enumerate()
                    {
                        let mut step = codec::snapshot_to_step(&chunk);
                        step.set_attr("rank", AttrValue::Int(rank as i64));
                        writers[rank].write(step).expect("stream accepts the fragment");
                    }
                }
                // Writers drop here: the engine closes and readers drain.
            }
        });

        // --- viz: consumes whole sealed steps as they arrive. ------------
        let viz = eng.reader("viz", Attach::Oldest, None).expect("fresh cursor");
        let viz_thread = scope.spawn(move || {
            let mut seen = Vec::new();
            while let Some(step) = viz.next_step() {
                assert_eq!(step.fragments.len(), RANKS as usize);
                seen.push(step.index);
            }
            seen
        });

        // --- analytics: crashes after 3 steps, rejoins, loses nothing. ---
        let analytics_thread = scope.spawn(|| {
            let mut seen = Vec::new();
            let r = eng.reader("analytics", Attach::Oldest, None).expect("fresh cursor");
            for _ in 0..3 {
                if let Some(step) = r.next_step() {
                    seen.push(step.index);
                }
            }
            drop(r); // the analytics pipeline dies mid-stream...
            // ...and restarts: Resume picks up the durable cursor.
            let r = eng.reader("analytics", Attach::Resume, None).expect("cursor is parked");
            while let Some(step) = r.next_step() {
                seen.push(step.index);
            }
            seen
        });

        // --- archival: streams every fragment into a BP container. -------
        let archival = eng.reader("archival", Attach::Oldest, None).expect("fresh cursor");
        let archive_path2 = archive_path.clone();
        let archival_thread = scope.spawn(move || {
            let mut bp = BpFileWriter::create(&archive_path2).expect("archive is writable");
            let mut steps = Vec::new();
            while let Some((_, frag)) = archival.pull() {
                steps.push(frag.step());
                bp.append("atoms", &frag).expect("append succeeds");
            }
            bp.finalize().expect("finalize succeeds");
            steps
        });

        // --- late joiner: attaches mid-run, sees only the tail. ----------
        let late_thread = scope.spawn(|| {
            // Give the writer group a head start so some steps are history.
            loop {
                if eng.sealed_steps() >= 3 {
                    break;
                }
                std::thread::yield_now();
            }
            let r = eng.reader("late-viz", Attach::Current, None).expect("fresh cursor");
            let first_visible = eng.sealed_steps();
            let mut seen = Vec::new();
            while let Some(step) = r.next_step() {
                seen.push(step.index);
            }
            (first_visible, seen)
        });

        let viz_seen = viz_thread.join().expect("viz thread");
        let analytics_seen = analytics_thread.join().expect("analytics thread");
        live_archive = archival_thread.join().expect("archival thread");
        let (late_start, late_seen) = late_thread.join().expect("late thread");

        assert_eq!(viz_seen.len() as u64, STEPS, "viz saw every step");
        assert_eq!(viz_seen, analytics_seen, "restart cost analytics nothing: no dup, no loss");
        assert!(
            late_seen.len() as u64 <= STEPS - late_start,
            "the late joiner skipped the history before its attach"
        );
        println!(
            "viz consumed {} steps; analytics restarted mid-stream and still saw all {}; \
             late joiner saw the {}-step tail",
            viz_seen.len(),
            analytics_seen.len(),
            late_seen.len()
        );
    });

    // --- File/stream parity: replay the archive through StepSource. ------
    let mut replay = FileSource::open(&archive_path).expect("archive is readable");
    let mut replayed = Vec::new();
    while let Some(frag) = replay.next_step().expect("archive replays cleanly") {
        assert!(frag.attr("rank").is_some(), "provenance attrs survived the file trip");
        replayed.push(frag.step());
    }
    assert_eq!(replayed, live_archive, "offline replay matches the live stream exactly");
    println!(
        "archive replay: {} fragments match the live sequence bit for bit",
        replayed.len()
    );

    overlay.flush();
    overlay.shutdown();
    assert_eq!(sealed.load(Ordering::Relaxed), STEPS, "every step announced its seal");
    assert!(attached.load(Ordering::Relaxed) >= 5, "attach announcements flowed");
    assert!(detached.load(Ordering::Relaxed) >= 1, "the crash announced its detach");
    println!(
        "control plane observed {} seals, {} attaches, {} detaches",
        sealed.load(Ordering::Relaxed),
        attached.load(Ordering::Relaxed),
        detached.load(Ordering::Relaxed)
    );

    std::fs::remove_dir_all(&archive_dir).ok();
    println!("\nstream fan-out complete: N={RANKS} writers, M=4 cursors, zero steps lost");
}
