//! Multi-tenant staging: 24 independent pipelines on one machine, behind
//! one global manager.
//!
//! Half the tenants are Fig. 7-shaped — their Bonds container just misses
//! the output cadence, so each one needs the manager to steal a node from
//! its over-provisioned Helper before the ingress queue fills. The other
//! half are small, healthy pipelines. A final over-subscribed tenant does
//! not fit the spare pool and is refused by admission control.
//!
//! The same composition runs twice — once with the global manager enabled
//! and once unmanaged — and the per-tenant SLA attainment of both runs is
//! printed side by side: managed tenants meet their end-to-end SLA, the
//! unmanaged tight tenants block.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use iocontainers::{
    AdmissionOutcome, ClusterConfig, Experiment, ExperimentConfig, ExperimentRun, WorkloadConfig,
};
use sim_core::SimDuration;

const TIGHT: usize = 12;
const LIGHT: usize = 11;

/// A Fig. 7-shaped tenant: 256 simulation nodes feeding 13 staging nodes
/// with no slack — Bonds needs a management action to keep up, and without
/// one the pipeline blocks around step 35. The 150 s end-to-end bound (ten
/// output cadences) is met only when the manager intervenes.
fn tight_tenant(ix: usize) -> WorkloadConfig {
    let (_, mut wl) = ExperimentConfig::fig7().split();
    wl.id = format!("tight-{ix:02}");
    wl.sla.max_end_to_end = Some(SimDuration::from_secs(150));
    wl.weight = 2;
    wl
}

/// A small, healthy tenant: comfortably provisioned, never needs help.
fn light_tenant(ix: usize) -> WorkloadConfig {
    let mut wl = WorkloadConfig::new(format!("light-{ix:02}"), 8);
    wl.steps = 20;
    wl.initial.helper = 2;
    wl.initial.bonds = 1;
    wl.initial.csym = 2;
    wl.initial.cna = 2;
    wl
}

fn build(managed: bool) -> Experiment {
    // Staging sized to the 23 real tenants exactly (tight hold 13 each,
    // light hold 5 each — CNA's reserve is taken at activation) plus 4
    // spares; the greedy straggler needs 7 and is refused.
    let mut cluster = ClusterConfig::new(4096, TIGHT as u32 * 13 + LIGHT as u32 * 5 + 4);
    cluster.policy.enabled = managed;

    let mut greedy = light_tenant(99);
    greedy.id = "greedy".into();
    greedy.initial.helper = 4; // held 7 > the 4 spare nodes left

    Experiment::builder()
        .cluster(cluster)
        .tenants((0..TIGHT).map(tight_tenant))
        .tenants((0..LIGHT).map(light_tenant))
        .tenant(greedy)
        .build()
        .expect("the composition is statically valid; greedy fails at admission")
}

fn main() {
    println!("24 tenants on one machine: managed vs unmanaged\n");
    let managed = build(true).run();
    let unmanaged = build(false).run();

    println!(
        "{:<10} {:>10}  {:>13} {:>8} {:>8}  {:>13} {:>8} {:>8}",
        "", "", "managed", "", "", "unmanaged", "", ""
    );
    println!(
        "{:<10} {:>10}  {:>13} {:>8} {:>8}  {:>13} {:>8} {:>8}",
        "tenant", "admission", "e2e within", "steps", "blocked", "e2e within", "steps", "blocked"
    );
    for (m, u) in managed.tenants.iter().zip(&unmanaged.tenants) {
        let adm = match m.admission {
            AdmissionOutcome::Admitted { .. } => "admitted",
            AdmissionOutcome::Queued => "queued",
            AdmissionOutcome::Rejected { .. } => "rejected",
        };
        if m.attainment.steps == 0 {
            println!("{:<10} {:>10}  (never ran)", m.id, adm);
            continue;
        }
        println!(
            "{:<10} {:>10}  {:>12.0}% {:>5}/{:<2} {:>8}  {:>12.0}% {:>5}/{:<2} {:>8}",
            m.id,
            adm,
            100.0 * m.attainment.e2e_fraction(),
            m.attainment.accounted,
            m.attainment.steps,
            if m.run.blocked_at.is_some() { "yes" } else { "-" },
            100.0 * u.attainment.e2e_fraction(),
            u.attainment.accounted,
            u.attainment.steps,
            if u.run.blocked_at.is_some() { "yes" } else { "-" },
        );
    }

    summarize("managed", &managed);
    summarize("unmanaged", &unmanaged);

    if let Some(err) = managed.first_error() {
        println!("\nfirst error surfaced by the run: {err}");
    }
    let actions: usize =
        managed.tenants.iter().map(|t| t.run.log.actions().len()).sum();
    println!("management actions across all tenants (managed run): {actions}");
}

fn summarize(name: &str, run: &ExperimentRun) {
    let admitted = run
        .tenants
        .iter()
        .filter(|t| matches!(t.admission, AdmissionOutcome::Admitted { .. }))
        .count();
    let blocked = run.tenants.iter().filter(|t| t.run.blocked_at.is_some()).count();
    let sla: f64 = run
        .tenants
        .iter()
        .filter(|t| matches!(t.admission, AdmissionOutcome::Admitted { .. }))
        .map(|t| t.attainment.e2e_fraction())
        .sum::<f64>()
        / admitted.max(1) as f64;
    println!(
        "\n{name}: {admitted}/{} admitted, {blocked} blocked, mean e2e SLA attainment {:.0}%",
        run.tenants.len(),
        100.0 * sla
    );
}
