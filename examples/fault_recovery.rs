//! Deterministic fault injection and manager-driven failure recovery.
//!
//! A Fig. 7-style managed run loses its Bonds container mid-flight. The
//! local managers emit heartbeats over the EVPath control overlay; the
//! global manager notices the missed beats, fences the failed container,
//! and restarts it on spare staging nodes — or, when no spares remain,
//! falls back to generalized offline staging so data keeps flowing to disk
//! with its processing provenance. Either way: zero lost steps.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```

use iocontainers::{run_pipeline, Action, ExperimentConfig};
use sim_core::SimDuration;
use simfault::FaultPlan;

fn narrate(run: &iocontainers::PipelineRun) {
    for (t, action) in run.log.actions() {
        println!("  [{:7.2} s] {}", t.as_secs_f64(), run.log.action_label(action));
    }
}

fn main() {
    println!("simfault: deterministic faults + manager-driven recovery\n");

    // --- Baseline: the clean Fig. 7 run. --------------------------------
    let clean = run_pipeline(ExperimentConfig::fig7());
    let clean_worst = clean.log.e2e_series().max_value().unwrap_or(f64::NAN);
    println!(
        "clean run:      {} steps, worst e2e {clean_worst:.2} s, finished at {:.1} s",
        clean.log.e2e_series().len(),
        clean.finished_at.as_secs_f64()
    );

    // --- Scenario 1: Bonds crashes; spares exist; restart. ---------------
    let cfg = ExperimentConfig::fig7()
        .to_builder()
        .staging_nodes(16) // 13 held by the pipeline + 3 spares
        .faults(FaultPlan::new().crash_container(SimDuration::from_secs(120), "Bonds"))
        .build()
        .expect("valid config");
    let steps = cfg.steps;
    println!("\nscenario 1: Bonds crashes at t=120 s with spare nodes available");
    let run = run_pipeline(cfg);
    narrate(&run);

    let detected = run.log.actions().iter().any(|(_, a)| {
        matches!(a, Action::ContainerFailed { container, .. }
            if run.log.name_of(*container) == "Bonds")
    });
    let restarted = run.log.actions().iter().any(|(_, a)| {
        matches!(a, Action::Restarted { container, .. }
            if run.log.name_of(*container) == "Bonds")
    });
    assert!(detected, "heartbeat loss must be detected");
    assert!(restarted, "recovery must restart Bonds on spares");
    assert!(run.failed.is_empty(), "no container may end the run failed");
    assert!(run.offline.is_empty(), "restart made offline fallback unnecessary");
    assert_eq!(run.log.e2e_series().len() as u64, steps, "zero lost steps");
    assert!(run.heartbeats_delivered > 0, "heartbeats flowed over the overlay");
    let worst = run.log.e2e_series().max_value().unwrap_or(f64::INFINITY);
    assert!(worst < 120.0, "e2e latency stayed bounded through the outage");
    println!(
        "  -> detected, restarted; {} heartbeats delivered; {} steps out, worst e2e {worst:.2} s",
        run.heartbeats_delivered,
        run.log.e2e_series().len()
    );

    // --- Scenario 2: same crash, but no spares: offline staging. ---------
    let cfg = ExperimentConfig::fig7()
        .to_builder()
        .faults(FaultPlan::new().crash_container(SimDuration::from_secs(150), "Bonds"))
        .build()
        .expect("valid config");
    let steps = cfg.steps;
    println!("\nscenario 2: the same crash with zero spare nodes");
    let run = run_pipeline(cfg);
    narrate(&run);
    assert!(run.offline.contains(&"Bonds"), "no spares: Bonds goes offline");
    assert!(run.failed.is_empty(), "offline fallback resolves the failure");
    assert!(!run.disk_steps.is_empty(), "bypassed data lands on disk");
    let (_, prov) = run.disk_steps.last().expect("disk steps exist");
    assert!(prov.pending_ops.contains(&"Bonds".to_string()), "provenance labels the gap");
    assert_eq!(run.log.e2e_series().len() as u64, steps, "still zero lost steps");
    println!(
        "  -> offline fallback: {} steps staged to disk, pending ops {:?}",
        run.disk_steps.len(),
        prov.pending_ops
    );

    // --- Scenario 3: determinism. ----------------------------------------
    let plan = FaultPlan::new()
        .lose_messages(SimDuration::from_secs(30), 0.5, SimDuration::from_secs(120))
        .degrade_node(SimDuration::from_secs(30), 256, 0.25, 4.0, SimDuration::from_secs(120));
    let cfg = ExperimentConfig::fig7().to_builder().faults(plan).build().expect("valid");
    let a = run_pipeline(cfg.clone());
    let b = run_pipeline(cfg);
    assert_eq!(a.finished_at, b.finished_at, "same seed + same plan => same run");
    assert_eq!(a.log.e2e_series().points(), b.log.e2e_series().points());
    println!(
        "\nscenario 3: loss + NIC degradation, run twice: identical traces \
         (finished at {:.1} s both times)",
        a.finished_at.as_secs_f64()
    );

    println!("\nall fault-recovery invariants hold");
}
