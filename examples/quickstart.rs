//! Quickstart: run a live analytics pipeline inside managed I/O containers.
//!
//! A real molecular-dynamics simulation produces atom snapshots; the
//! SmartPointer components (Helper → Bonds → CSym) run as containerized
//! worker pools connected by DataTap staged channels, with per-stage
//! latency reported to a global-manager EVPath overlay.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use iocontainers::{run_threaded, ThreadedConfig};

fn main() {
    let cfg = ThreadedConfig {
        steps: 6,
        ..ThreadedConfig::default()
    };
    println!(
        "running {} output steps of a {}-atom Lennard-Jones crystal through the pipeline...",
        cfg.steps,
        cfg.md.atom_count()
    );

    let report = run_threaded(cfg);

    println!("\nper-stage results:");
    for (i, name) in iocontainers::threaded::stage_names().iter().enumerate() {
        println!(
            "  {:>6}: {:>3} steps, mean latency {:.2} ms",
            name,
            report.stage_steps[i],
            report.mean_latency_s[i] * 1e3
        );
    }
    println!("monitoring events delivered to the global manager: {}", report.monitor_events);
    match report.crack_detected_at {
        Some(step) => println!("crack detected at output step {step}"),
        None => println!("no crack detected (pristine crystal)"),
    }
}
