//! Resilient control operations with doubly-distributed transactions.
//!
//! When two containers trade resources, a failure mid-trade must not leave
//! the system believing a node was removed from the donor but never added
//! to the recipient. This example runs the D2T protocol across a writer
//! group and a reader group, then injects vote loss and explicit aborts to
//! show the all-or-nothing guarantee holding under failure.
//!
//! ```text
//! cargo run --release --example resilient_trade
//! ```

use d2t::{run_transaction, Decision, FaultPlan, TxnConfig};
use sim_core::Sim;
use simnet::{Network, NetworkConfig};

fn run(label: &str, cfg: &TxnConfig, faults: &FaultPlan) {
    let mut sim = Sim::new(42);
    let net = Network::new(NetworkConfig::qdr_torus((16, 16, 16)));
    let report = run_transaction(&mut sim, &net, cfg, faults);
    println!(
        "{label:<42} -> {:?} in {:.3} ms ({} messages)",
        report.decision,
        report.duration.as_secs_f64() * 1e3,
        report.messages
    );
}

fn main() {
    println!("D2T: two-group transactions for container resource trades\n");

    let cfg = TxnConfig { writers: 512, readers: 4, ..TxnConfig::default() };
    run("clean trade (512 writers : 4 readers)", &cfg, &FaultPlan::default());

    let mut no_vote = FaultPlan::default();
    no_vote.writer_no_votes.insert(128);
    run("one writer votes no", &cfg, &no_vote);

    let mut lost = FaultPlan::default();
    lost.drop_reader_votes.insert(2);
    run("a reader's vote is lost (timeout)", &cfg, &lost);

    println!("\nscaling with the writer group (the paper's Fig. 6 sweep):");
    for writers in [64u32, 256, 1024, 4096] {
        let cfg = TxnConfig { writers, readers: 4, ..TxnConfig::default() };
        let mut sim = Sim::new(42);
        let net = Network::new(NetworkConfig::qdr_torus((18, 18, 18)));
        let report = run_transaction(&mut sim, &net, &cfg, &FaultPlan::default());
        assert_eq!(report.decision, Decision::Commit);
        println!(
            "  {writers:>5} writers : 4 readers -> {:.3} ms",
            report.duration.as_secs_f64() * 1e3
        );
    }
}
