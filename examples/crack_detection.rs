//! Crack detection with a dynamic pipeline branch.
//!
//! The paper's motivating scenario: a strained crystal fails mid-run; the
//! CSym container detects the break from the data itself, retires, and CNA
//! takes over structural labeling — the "dynamic branch" of Table I. The
//! analyzed steps are also written to BP-lite files through ADIOS with
//! processing provenance stamped on their attributes.
//!
//! ```text
//! cargo run --release --example crack_detection
//! ```

use adios::{FileMethod, Method, StepData};
use iocontainers::{run_threaded, Provenance, ThreadedAction, ThreadedConfig};
use mdsim::MdConfig;

fn main() -> std::io::Result<()> {
    // A crystal strained past its yield point partway through the run.
    let md = MdConfig {
        temperature: 0.02,
        strain_per_step: 0.002,
        yield_strain: 0.03,
        ..MdConfig::default()
    };
    let cfg = ThreadedConfig { md, steps: 10, manage: false, ..ThreadedConfig::default() };
    println!("straining a {}-atom crystal until it cracks...", cfg.md.atom_count());

    let report = run_threaded(cfg);

    let crack = report.crack_detected_at.expect("the strained crystal must crack");
    println!("\nCSym detected the break at output step {crack} and retired.");
    for action in &report.actions {
        if let ThreadedAction::Branch { at_step } = action {
            println!("dynamic branch fired at step {at_step}: CNA now reads from Bonds.");
        }
    }
    println!(
        "CNA labeled {} post-break steps; final FCC fraction {:.1}% (crack faces are 'other').",
        report.stage_steps[3],
        report.last_fcc_fraction.unwrap_or(0.0) * 100.0
    );

    // Store a provenance-labeled record of the run through ADIOS.
    let dir = std::env::temp_dir().join("io-containers-crack-example");
    let mut out = FileMethod::new(&dir)?;
    let group = iocontainers::codec::atoms_group();
    let mut step = StepData::new(crack);
    Provenance::from_split(&["Helper", "Bonds", "CSym"], &["CNA"]).stamp(&mut step);
    out.write_step(&group, &step)?;
    let path = out.written()[0].clone();
    let back = FileMethod::read_step(&path)?;
    let prov = Provenance::read(&back.data);
    println!(
        "\nwrote {} with provenance: processed_by={:?}, pending_ops={:?}",
        path.display(),
        prov.processed_by,
        prov.pending_ops
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
