//! Offline post-processing of provenance-labeled data.
//!
//! When management takes analytics offline, the staged data lands in BP
//! container files labeled with `pending_ops` — the analyses still owed.
//! This example plays the full round trip: a strained run writes its
//! steps with Bonds/CSym/CNA owed (as the 1024-node scenario does), then a
//! post-processing pass opens the container, replays the owed analytics
//! in pipeline order, finds the crack, and reports the resulting material
//! fragments.
//!
//! ```text
//! cargo run --release --example post_processing
//! ```

use adios::{BpFileReader, BpFileWriter};
use iocontainers::{codec, Provenance};
use mdsim::{MdConfig, MdEngine};
use smartpointer::{Bonds, CSym, FragmentFinder, FragmentTracker};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("io-containers-postprocess.bp");

    // --- online phase: analytics offline, data stored with provenance ---
    println!("online phase: staging 6 output steps with Bonds/CSym owed...");
    let mut md = MdEngine::new(MdConfig {
        temperature: 0.02,
        strain_per_step: 0.003,
        yield_strain: 0.04,
        ..MdConfig::default()
    });
    let mut writer = BpFileWriter::create(&path)?;
    for _ in 0..6 {
        let snap = md.run_epoch(5);
        let mut step = codec::snapshot_to_step(&snap);
        Provenance::from_split(&["Helper"], &["Bonds", "CSym"]).stamp(&mut step);
        writer.append("atoms", &step)?;
    }
    let path = writer.finalize()?;
    println!("wrote {} ({} bytes)\n", path.display(), std::fs::metadata(&path)?.len());

    // --- offline phase: replay the owed analytics ----------------------
    println!("post-processing pass:");
    let mut reader = BpFileReader::open(&path)?;
    let mut tracker = FragmentTracker::new();
    for ix in 0..reader.len() {
        let stored = reader.read_at(ix)?;
        let mut prov = Provenance::read(&stored.data);
        let snap = codec::step_to_snapshot(&stored.data).expect("atoms schema");

        let bonds = Bonds::default().compute(&snap);
        assert!(prov.complete("Bonds"), "pipeline order enforced");
        let csym = CSym::default().compute(&bonds);
        assert!(prov.complete("CSym"));
        assert!(prov.fully_processed());

        let frags = FragmentFinder.compute(&bonds);
        tracker.observe(&snap.ids, &frags);

        println!(
            "  step {}: strain {:.3}, {} bonds, csp max {:.2}, break={}, fragments={}",
            stored.data.step(),
            snap.strain,
            bonds.adjacency.edge_count() / 2,
            csym.max_csp,
            csym.break_detected,
            frags.count()
        );
    }

    println!("\nfragment history:");
    for event in tracker.events() {
        println!("  {event:?}");
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
