//! Multi-tenant staging: builder validation, admission control, and the
//! bit-identity guarantee — a single-tenant [`Experiment`] must schedule
//! exactly the events the legacy single-pipeline engine did. The pinned
//! hashes below were recorded on the pre-refactor engine; any drift means
//! the refactor changed single-tenant behavior.

use iocontainers::{
    AdmissionControl, AdmissionOutcome, ClusterConfig, Error, Experiment, ExperimentConfig,
    WorkloadConfig,
};
use sim_core::Sim;

fn schedule_hash(cfg: ExperimentConfig) -> u64 {
    let mut sim = Sim::new(cfg.seed);
    sim.record_trace();
    iocontainers::run_pipeline_in(&mut sim, cfg);
    sim.take_trace().expect("tracing was enabled").schedule_hash()
}

/// Golden schedule hashes recorded on the pre-refactor single-pipeline
/// engine (seed 2013). The multi-tenant engine must reproduce them bit for
/// bit when given the same single-tenant presets.
#[test]
fn single_tenant_traces_match_the_legacy_engine() {
    let cases: [(&str, ExperimentConfig, u64); 3] = [
        ("fig7", ExperimentConfig::fig7(), 0x7297887ee2c58dc9),
        ("fig8", ExperimentConfig::fig8(), 0x058fe0bd47928106),
        ("fig9", ExperimentConfig::fig9(), 0x322085bdc1a7dcb3),
    ];
    for (name, cfg, expect) in cases {
        assert_eq!(schedule_hash(cfg), expect, "{name} (40 steps) trace drifted");
    }
    let short: [(&str, ExperimentConfig, u64); 3] = [
        ("fig7", ExperimentConfig::fig7(), 0x54d9891d44abdee7),
        ("fig8", ExperimentConfig::fig8(), 0x13557210ae873c8e),
        ("fig9", ExperimentConfig::fig9(), 0xd1ff7716270424e1),
    ];
    for (name, mut cfg, expect) in short {
        cfg.steps = 12;
        assert_eq!(schedule_hash(cfg), expect, "{name} (12 steps) trace drifted");
    }
}

/// `Experiment::single(preset).run()` must agree with the legacy
/// `run_pipeline` surface on every observable.
#[test]
fn experiment_single_matches_run_pipeline() {
    let legacy = iocontainers::run_pipeline(ExperimentConfig::fig8());
    let run = Experiment::single(ExperimentConfig::fig8()).run();
    assert_eq!(run.tenants.len(), 1);
    let t = &run.tenants[0];
    assert_eq!(t.id, "t0");
    assert_eq!(t.admission, AdmissionOutcome::Admitted { at: sim_core::SimTime::ZERO });
    assert_eq!(t.run.finished_at, legacy.finished_at);
    assert_eq!(t.run.final_units, legacy.final_units);
    assert_eq!(t.run.completed, legacy.completed);
    assert_eq!(t.run.log.e2e_series().points(), legacy.log.e2e_series().points());
    assert!(run.first_error().is_none());
    // 40 steps emitted, all accounted for by pipeline completions.
    assert_eq!(t.attainment.steps, 40);
    assert_eq!(t.attainment.accounted, 40);
}

fn small_tenant(id: &str) -> WorkloadConfig {
    let mut wl = WorkloadConfig::new(id, 8);
    wl.steps = 10;
    wl.initial.helper = 2;
    wl.initial.bonds = 1;
    wl.initial.csym = 2;
    wl.initial.cna = 2;
    wl
}

/// Two healthy tenants sharing one machine both meet their SLAs, each with
/// its own report and monitor log.
#[test]
fn two_tenants_share_the_machine() {
    let exp = Experiment::builder()
        .cluster(ClusterConfig::new(64, 12))
        .tenant(small_tenant("md-a"))
        .tenant(small_tenant("md-b"))
        .build()
        .expect("both tenants fit");
    let run = exp.run();
    assert_eq!(run.tenants.len(), 2);
    assert!(run.first_error().is_none());
    for t in &run.tenants {
        assert!(matches!(t.admission, AdmissionOutcome::Admitted { .. }), "tenant {}", t.id);
        assert_eq!(t.attainment.steps, 10, "tenant {}", t.id);
        assert_eq!(t.attainment.accounted, 10, "tenant {}", t.id);
        assert!(t.run.blocked_at.is_none(), "tenant {}", t.id);
        // Each tenant's log covers exactly its own four containers.
        assert_eq!(t.run.final_units.len(), 4, "tenant {}", t.id);
    }
}

/// The builder rejects compositions the machine could never host.
#[test]
fn builder_validation() {
    // No cluster.
    let err = Experiment::builder().tenant(small_tenant("a")).build().unwrap_err();
    assert!(matches!(err, Error::NoCluster), "{err}");

    // No tenants.
    let err = Experiment::builder().cluster(ClusterConfig::new(64, 12)).build().unwrap_err();
    assert!(matches!(err, Error::NoTenants), "{err}");

    // Duplicate ids.
    let err = Experiment::builder()
        .cluster(ClusterConfig::new(64, 12))
        .tenants([small_tenant("a"), small_tenant("a")])
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::DuplicateTenant(ref id) if id == "a"), "{err}");

    // One tenant alone overflows the staging area (held 5 > staging 4).
    let err = Experiment::builder()
        .cluster(ClusterConfig::new(64, 4))
        .tenant(small_tenant("a"))
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::Workload { ref tenant, .. } if tenant == "a"), "{err}");

    // Application partitions overflow the compute side of the machine.
    let err = Experiment::builder()
        .cluster(ClusterConfig::new(8, 12))
        .tenants([small_tenant("a"), small_tenant("b")])
        .build()
        .unwrap_err();
    assert!(
        matches!(err, Error::ComputeOvercommitted { sim_nodes: 8, requested: 16 }),
        "{err}"
    );

    // Errors implement std::error::Error and render a message.
    let err: Box<dyn std::error::Error> = Box::new(err);
    assert!(!err.to_string().is_empty());
}

/// Under `AdmissionControl::Reject` a tenant that does not fit the spare
/// pool at submission never runs, and the rejection is the run's first
/// error.
#[test]
fn admission_reject_refuses_the_overflow_tenant() {
    // First tenant holds 5 of 8 staging nodes; the second needs 5 more.
    let exp = Experiment::builder()
        .cluster(ClusterConfig::new(64, 8))
        .tenant(small_tenant("first"))
        .tenant(small_tenant("late"))
        .build()
        .expect("each tenant fits alone; contention is a runtime matter");
    let run = exp.run();
    assert!(matches!(run.tenants[0].admission, AdmissionOutcome::Admitted { .. }));
    assert_eq!(run.tenants[1].admission, AdmissionOutcome::Rejected { held: 5, spare: 3 });
    // The rejected tenant did nothing.
    assert_eq!(run.tenants[1].attainment.steps, 0);
    assert!(run.tenants[1].run.log.e2e_series().is_empty());
    assert!(run.tenants[1].run.completed.iter().all(|&(_, n)| n == 0));
    // The admitted tenant was unaffected.
    assert_eq!(run.tenants[0].attainment.accounted, 10);
    match run.first_error() {
        Some(Error::AdmissionRejected { tenant, held: 5, spare: 3 }) => {
            assert_eq!(tenant, "late");
        }
        other => panic!("expected AdmissionRejected, got {other:?}"),
    }
}

/// Under `AdmissionControl::Queue` the tenant waits instead; with no nodes
/// ever freed it stays queued and is reported as such (not an error).
#[test]
fn admission_queue_keeps_the_tenant_waiting() {
    let mut cluster = ClusterConfig::new(64, 8);
    cluster.admission = AdmissionControl::Queue;
    let exp = Experiment::builder()
        .cluster(cluster)
        .tenant(small_tenant("first"))
        .tenant(small_tenant("late"))
        .build()
        .expect("valid");
    let run = exp.run();
    assert_eq!(run.tenants[1].admission, AdmissionOutcome::Queued);
    assert!(run.first_error().is_none(), "queued is a report state, not an error");
    assert_eq!(run.tenants[0].attainment.accounted, 10);
}

/// Under `AdmissionControl::Queue` a queued tenant is admitted as soon as
/// the manager frees enough nodes — here by taking the first tenant's
/// hopeless bottleneck offline (the Fig. 9 action), which returns its
/// nodes to the spare pool.
#[test]
fn queued_tenant_is_admitted_once_nodes_free_up() {
    let mut cluster = ClusterConfig::new(2048, 24);
    cluster.admission = AdmissionControl::Queue;
    // Fig. 9 shape: undersized staging forces Bonds+CSym offline, freeing
    // their nodes mid-run.
    let (_, mut big) = ExperimentConfig::fig9().split();
    big.id = "big".into();
    let exp = Experiment::builder()
        .cluster(cluster)
        .tenant(big)
        .tenant(small_tenant("late"))
        .build()
        .expect("valid");
    let run = exp.run();
    let late = &run.tenants[1];
    match late.admission {
        AdmissionOutcome::Admitted { at } => {
            assert!(at > sim_core::SimTime::ZERO, "queued tenants are admitted later");
        }
        other => panic!("expected late admission, got {other:?}"),
    }
    // Once admitted, the tenant runs its full workload.
    assert_eq!(late.attainment.steps, 10);
    assert_eq!(late.attainment.accounted, 10);
    // The first tenant still shows the Fig. 9 offline action.
    assert!(run.tenants[0].run.offline.contains(&"Bonds"));
}
