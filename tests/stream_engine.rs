//! Schedule-hash neutrality of the step-streaming engine: running a live
//! stream workload in-process must not perturb the discrete-event
//! engine's schedule. The DES pipeline and the streaming engine share a
//! process here, and the pinned 12-step golden hashes must still come out
//! bit for bit — the stream layer lives entirely outside simulated time.

use std::sync::Arc;

use adios::{AttrValue, StepData};
use datatap::ManualClock;
use iocontainers::ExperimentConfig;
use sim_core::Sim;
use stream::{Attach, StreamConfig, StreamEngine};

fn schedule_hash(cfg: ExperimentConfig) -> u64 {
    let mut sim = Sim::new(cfg.seed);
    sim.record_trace();
    iocontainers::run_pipeline_in(&mut sim, cfg);
    sim.take_trace().expect("tracing was enabled").schedule_hash()
}

/// Drives a 2→2 stream (two writer ranks, two cursors) to completion.
fn run_stream_workload() {
    let eng = StreamEngine::builder(StreamConfig { writers: 2, retention: 4 })
        .clock(Arc::new(ManualClock::new()))
        .build();
    let w0 = eng.writer(0);
    let w1 = eng.writer(1);
    let viz = eng.reader("viz", Attach::Oldest, None).unwrap();
    let analytics = eng.reader("analytics", Attach::Oldest, None).unwrap();
    for step in 0..8u64 {
        let mut a = StepData::new(step);
        a.set_attr("origin", AttrValue::Str("rank-0".into()));
        w0.try_write(a).unwrap();
        w1.try_write(StepData::new(step)).unwrap();
        assert_eq!(viz.try_next_step().unwrap().index, step);
        assert_eq!(analytics.try_next_step().unwrap().index, step);
    }
    drop(w0);
    drop(w1);
    assert!(viz.next_step().is_none());
    assert!(analytics.next_step().is_none());
}

/// The pinned 12-step golden hashes, with stream workloads interleaved
/// between (and around) the DES runs: identical constants to the
/// multi-tenant suite, so the streaming engine provably does not touch
/// the simulated schedule.
#[test]
fn stream_engine_is_schedule_hash_neutral() {
    run_stream_workload();
    let cases: [(&str, ExperimentConfig, u64); 3] = [
        ("fig7", ExperimentConfig::fig7(), 0x54d9891d44abdee7),
        ("fig8", ExperimentConfig::fig8(), 0x13557210ae873c8e),
        ("fig9", ExperimentConfig::fig9(), 0xd1ff7716270424e1),
    ];
    for (name, mut cfg, expect) in cases {
        cfg.steps = 12;
        run_stream_workload();
        assert_eq!(
            schedule_hash(cfg),
            expect,
            "{name} (12 steps) trace drifted with a live stream in-process"
        );
    }
}
