//! Determinism of the simpar-parallel analytics kernels: Bonds, CSym and
//! CNA must produce *bit-identical* outputs for any thread count, and a
//! DES run whose schedule derives from those outputs must therefore hash
//! identically no matter how many threads the kernels used.

use mdsim::{MdConfig, MdEngine, Snapshot};
use sim_core::{Sim, SimTime};
use smartpointer::{Bonds, CSym, Cna, CnaOutput};

/// A strained crystal just past its yield strain: crack faces make the
/// kernel outputs structurally rich (defective atoms, non-FCC labels).
fn crack_snapshot() -> Snapshot {
    let mut md = MdEngine::new(MdConfig {
        temperature: 0.02,
        strain_per_step: 0.005,
        yield_strain: 0.02,
        ..MdConfig::default()
    });
    md.run(10);
    assert!(md.cracked(), "workload must contain a crack");
    md.run_epoch(1)
}

#[test]
fn kernel_outputs_are_bit_identical_across_thread_counts() {
    let snap = crack_snapshot();

    let bonds_1 = Bonds { threads: 1, ..Bonds::default() }.compute(&snap);
    let csym_1 = CSym { threads: 1, ..CSym::default() }.compute(&bonds_1);
    let cna_1 = Cna { threads: 1 }.compute(&bonds_1);

    for threads in [2usize, 8] {
        let bonds_t = Bonds { threads, ..Bonds::default() }.compute(&snap);
        let n = snap.atom_count();
        for i in 0..n {
            assert_eq!(
                bonds_1.adjacency.neighbors(i),
                bonds_t.adjacency.neighbors(i),
                "adjacency of atom {i} differs at threads={threads}"
            );
        }

        let csym_t = CSym { threads, ..CSym::default() }.compute(&bonds_t);
        let bits_1: Vec<u32> = csym_1.csp.iter().map(|c| c.to_bits()).collect();
        let bits_t: Vec<u32> = csym_t.csp.iter().map(|c| c.to_bits()).collect();
        assert_eq!(bits_1, bits_t, "CSP bits differ at threads={threads}");
        assert_eq!(csym_1.break_detected, csym_t.break_detected);

        let cna_t = Cna { threads }.compute(&bonds_t);
        assert_eq!(cna_1.labels, cna_t.labels, "CNA labels differ at threads={threads}");
        assert_eq!(
            cna_1.signature_counts, cna_t.signature_counts,
            "signature histogram differs at threads={threads}"
        );
        assert_eq!(
            cna_1.fcc_fraction.to_bits(),
            cna_t.fcc_fraction.to_bits(),
            "fcc_fraction bits differ at threads={threads}"
        );
    }
}

/// Replays kernel results into a DES run: every scheduled time and every
/// event multiplicity is a pure function of the analysis outputs, so the
/// trace's schedule hash fingerprints them end to end.
fn schedule_hash_from_kernels(cna: &CnaOutput, csp_sum_bits: u64) -> u64 {
    let mut sim = Sim::new(13);
    sim.record_trace();
    // One event per signature kind, at a time derived from its count.
    for (ix, (sig, count)) in cna.signature_counts.iter().enumerate() {
        let at = SimTime::from_nanos(
            1 + ix as u64 * 1_000 + (sig.ncn as u64) * 17 + count % 997,
        );
        sim.schedule_at_named("signature", at, |_| {});
    }
    // One event keyed on the exact CSP bit pattern and the label histogram.
    let non_fcc = cna.labels.iter().filter(|&&l| l != smartpointer::Structure::Fcc).count();
    sim.schedule_at_named("csp", SimTime::from_nanos(1 + (csp_sum_bits % 100_000)), |_| {});
    sim.schedule_at_named("labels", SimTime::from_nanos(1 + non_fcc as u64), |_| {});
    sim.run();
    sim.take_trace().expect("tracing was on").schedule_hash()
}

#[test]
fn schedules_built_from_parallel_kernels_are_invariant_in_thread_count() {
    let snap = crack_snapshot();
    let mut hashes = Vec::new();
    for threads in [1usize, 2, 8] {
        let bonds = Bonds { threads, ..Bonds::default() }.compute(&snap);
        let csym = CSym { threads, ..CSym::default() }.compute(&bonds);
        let cna = Cna { threads }.compute(&bonds);
        // Fold the CSP bit patterns so any single-ULP difference anywhere
        // in the vector would change the scheduled times.
        let csp_sum_bits =
            csym.csp.iter().fold(0u64, |acc, c| acc.wrapping_mul(31).wrapping_add(c.to_bits() as u64));
        hashes.push(schedule_hash_from_kernels(&cna, csp_sum_bits));
    }
    assert_eq!(hashes[0], hashes[1], "threads=2 changed the derived schedule");
    assert_eq!(hashes[0], hashes[2], "threads=8 changed the derived schedule");
}
