//! Cross-crate determinism contract for simfault.
//!
//! Two guarantees, checked over the full managed pipeline:
//! 1. The same seed and the same `FaultPlan` produce a bit-identical kernel
//!    schedule (hash of every event's label, time, and order).
//! 2. An *empty* plan is schedule-neutral: the trace hash equals the run of
//!    a configuration that never mentions simfault at all, so wiring the
//!    fault layer in costs nothing when it is unused.

use iocontainers::{run_pipeline_in, ExperimentConfig};
use sim_core::{Sim, SimDuration};
use simfault::FaultPlan;

fn schedule_hash(cfg: ExperimentConfig) -> u64 {
    let mut sim = Sim::new(cfg.seed);
    sim.record_trace();
    run_pipeline_in(&mut sim, cfg);
    sim.take_trace().expect("trace recorded").schedule_hash()
}

fn small_fig7() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::fig7();
    cfg.steps = 10; // keep the integration test quick
    cfg
}

#[test]
fn same_seed_and_plan_give_identical_schedules() {
    let plan = FaultPlan::new()
        .crash_container(SimDuration::from_secs(60), "Bonds")
        .lose_messages(SimDuration::from_secs(20), 0.3, SimDuration::from_secs(40))
        .degrade_node(SimDuration::from_secs(10), 256, 0.5, 2.0, SimDuration::from_secs(30));
    let mut cfg = small_fig7();
    cfg.faults = plan;
    assert_eq!(
        schedule_hash(cfg.clone()),
        schedule_hash(cfg),
        "same seed + same fault plan must replay the exact same schedule"
    );
}

#[test]
fn empty_plan_is_bit_identical_to_a_fault_unaware_run() {
    // `small_fig7()` never touches `faults`: this is the "build without
    // simfault wired in" baseline.
    let baseline = schedule_hash(small_fig7());
    let mut explicit = small_fig7();
    explicit.faults = FaultPlan::new(); // empty, but explicitly set
    assert_eq!(
        schedule_hash(explicit),
        baseline,
        "an empty fault plan must not schedule a single event"
    );

    // Sanity: a real fault does perturb the schedule, so the equality above
    // is not vacuous.
    let mut faulted = small_fig7();
    faulted.faults =
        FaultPlan::new().stall_container(SimDuration::from_secs(30), "Bonds", SimDuration::from_secs(5));
    assert_ne!(schedule_hash(faulted), baseline);
}

#[test]
fn faulted_runs_repeat_point_for_point() {
    let mut cfg = small_fig7();
    cfg.faults = FaultPlan::new()
        .stall_container(SimDuration::from_secs(30), "CSym", SimDuration::from_secs(8))
        .lose_messages(SimDuration::from_secs(15), 0.5, SimDuration::from_secs(60));
    let a = iocontainers::run_pipeline(cfg.clone());
    let b = iocontainers::run_pipeline(cfg);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.log.e2e_series().points(), b.log.e2e_series().points());
    assert_eq!(a.heartbeats_delivered, b.heartbeats_delivered);
}
