//! Cross-crate integration: the full analytics path on real data, the
//! offline/provenance path through real BP-lite files, and the post-hoc
//! catch-up of analytics that were pruned online.

use adios::{FileMethod, Method};
use iocontainers::codec;
use iocontainers::{run_threaded, Provenance, ThreadedConfig};
use mdsim::{MdConfig, MdEngine};
use smartpointer::{Bonds, CSym, Cna, Structure};

#[test]
fn threaded_pipeline_processes_every_step() {
    let cfg = ThreadedConfig { steps: 5, manage: false, ..ThreadedConfig::default() };
    let report = run_threaded(cfg);
    assert_eq!(report.stage_steps[0], 5);
    assert_eq!(report.stage_steps[1], 5);
    assert_eq!(report.stage_steps[2] + report.stage_steps[3], 5);
    assert!(report.monitor_events >= 15);
}

/// The paper's offline story, executed for real: a step is written to disk
/// with provenance because Bonds/CSym were offline; a post-processing pass
/// later reads the BP file, runs the owed analytics in order, and detects
/// the crack that online analysis would have found.
#[test]
fn offline_provenance_catchup_detects_crack_post_hoc() {
    // A cracked crystal's output step, staged to disk with Bonds/CSym owed.
    let mut md = MdEngine::new(MdConfig {
        temperature: 0.02,
        strain_per_step: 0.005,
        yield_strain: 0.02,
        ..MdConfig::default()
    });
    md.run(10);
    assert!(md.cracked());
    let snap = md.run_epoch(1);

    let dir = std::env::temp_dir().join(format!("ioc-catchup-{}", std::process::id()));
    let mut out = FileMethod::new(&dir).unwrap();
    let mut step = codec::snapshot_to_step(&snap);
    Provenance::from_split(&["Helper"], &["Bonds", "CSym"]).stamp(&mut step);
    out.write_step(&codec::atoms_group(), &step).unwrap();

    // --- later, offline ---
    let stored = FileMethod::read_step(&out.written()[0]).unwrap();
    let mut prov = Provenance::read(&stored.data);
    assert_eq!(prov.pending_ops, vec!["Bonds", "CSym"]);

    let snap_back = codec::step_to_snapshot(&stored.data).expect("atoms schema");
    let bonds = Bonds::default().compute(&snap_back);
    assert!(prov.complete("Bonds"));
    let csym = CSym::default().compute(&bonds);
    assert!(prov.complete("CSym"));
    assert!(prov.fully_processed());
    assert!(csym.break_detected, "the stored step must reveal the crack post-hoc");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analytics_chain_agrees_between_direct_and_codec_paths() {
    // Running the kernels directly and through the ADIOS codec round trip
    // must give identical results — the componentized interfaces cannot
    // change the science.
    let snap = MdEngine::new(MdConfig::default()).run_epoch(2);
    let direct = Bonds::default().compute(&snap);
    let via_codec = {
        let step = codec::snapshot_to_step(&snap);
        let snap2 = codec::step_to_snapshot(&step).unwrap();
        Bonds::default().compute(&snap2)
    };
    assert_eq!(*direct.adjacency, *via_codec.adjacency);

    let cna_direct = Cna::default().compute(&direct);
    let cna_codec = {
        let step = codec::bonds_to_step(&via_codec);
        let back = codec::step_to_bonds(&step).unwrap();
        Cna::default().compute(&back)
    };
    assert_eq!(cna_direct.labels, cna_codec.labels);
    assert!(cna_direct.labels.contains(&Structure::Fcc));
}

#[test]
fn checkpoint_restart_preserves_analytics_results() {
    // Restarting LAMMPS from a checkpoint must not change what the
    // analytics see.
    let cfg = MdConfig::default();
    let mut md = MdEngine::new(cfg.clone());
    md.run(10);
    let ck = md.checkpoint();
    let snap_orig = md.run_epoch(5);

    let mut restored = MdEngine::restore(cfg, &ck).unwrap();
    let snap_restored = restored.run_epoch(5);

    let a = Bonds::default().compute(&snap_orig);
    let b = Bonds::default().compute(&snap_restored);
    assert_eq!(*a.adjacency, *b.adjacency);
}
