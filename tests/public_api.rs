//! Public-API snapshot: the `iocontainers` facade must match the committed
//! baseline (`tests/public_api_baseline.txt`) item for item. The surface is
//! the flattened set of `pub mod` / `pub use` lines in its `lib.rs`, so a
//! rename, removal, or accidental new export fails this test (and the
//! matching `cargo xtask api` CI gate) until the baseline is deliberately
//! regenerated with `cargo xtask api --write-baseline`.
//!
//! The parser is duplicated from `tools/xtask/src/main.rs` on purpose:
//! xtask deliberately does not link the sim stack, and this test must not
//! depend on xtask, so each side carries its own ~40-line copy.

use std::path::Path;

/// Flattens a `lib.rs` facade into one sorted line per exported item:
/// every `pub mod` and every name a `pub use` re-exports, brace groups
/// expanded. Mirrors `api_surface` in `tools/xtask/src/main.rs`.
fn api_surface(lib_rs: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut buf = String::new();
    let mut in_item = false;
    for raw in lib_rs.lines() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !in_item {
            if line.starts_with("pub mod ") || line.starts_with("pub use ") {
                buf.clear();
                in_item = true;
            } else {
                continue;
            }
        } else {
            buf.push(' ');
        }
        buf.push_str(line);
        if let Some(end) = buf.find(';') {
            let item: String = buf[..end].split_whitespace().collect::<Vec<_>>().join(" ");
            in_item = false;
            if let Some(rest) = item.strip_prefix("pub use ") {
                if let Some(brace) = rest.find('{') {
                    let prefix = rest[..brace].trim();
                    let inner = rest[brace + 1..].trim_end_matches('}');
                    items.extend(
                        inner
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(|name| format!("pub use {prefix}{name}")),
                    );
                } else {
                    items.push(format!("pub use {rest}"));
                }
            } else {
                items.push(item);
            }
        }
    }
    items.sort();
    items
}

#[test]
fn facade_matches_committed_baseline() {
    // This integration test lives in the workspace-root package, so the
    // manifest dir IS the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let lib = root.join("crates/iocontainers/src/lib.rs");
    let baseline_path = root.join("tests/public_api_baseline.txt");

    let current = api_surface(&std::fs::read_to_string(&lib).expect("read facade lib.rs"));
    let baseline: Vec<String> = std::fs::read_to_string(&baseline_path)
        .expect("read tests/public_api_baseline.txt (run `cargo xtask api --write-baseline`)")
        .lines()
        .map(str::to_string)
        .filter(|l| !l.is_empty())
        .collect();

    let removed: Vec<_> = baseline.iter().filter(|l| !current.contains(l)).collect();
    let added: Vec<_> = current.iter().filter(|l| !baseline.contains(l)).collect();
    assert!(
        removed.is_empty() && added.is_empty(),
        "public API drifted from tests/public_api_baseline.txt\n\
         removed: {removed:#?}\nadded: {added:#?}\n\
         if this change is intended, run `cargo xtask api --write-baseline`",
    );
}

#[test]
fn parser_expands_brace_groups_and_ignores_comments() {
    let src = "\
// a comment\n\
pub mod codec; // trailing\n\
mod private;\n\
pub use error::Error;\n\
pub use experiment::{\n    Alpha, Beta, // inline\n    Gamma,\n};\n";
    let got = api_surface(src);
    assert_eq!(
        got,
        vec![
            "pub mod codec",
            "pub use error::Error",
            "pub use experiment::Alpha",
            "pub use experiment::Beta",
            "pub use experiment::Gamma",
        ]
    );
}
