//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;

use adios::{AttrValue, DataType, Dims, StepData, Value};
use d2t::{Aggregate, RootState, Vote, VoteCollector};
use datatap::TransportCosts;
use iocontainers::policy::{
    decide, decide_recovery, ContainerView, Decision, FailureView, PolicyConfig, RecoveryConfig,
};
use iocontainers::{ContainerId, Provenance, Sla};
use sim_core::stats::{SlidingWindow, Welford};
use sim_core::SimDuration;
use simnet::{NetworkConfig, NodeId, StagingArea, Topology};

// ---------------------------------------------------------------- adios --

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..64)
            .prop_map(|v| Value::from_f64(&v, Dims::local1d(v.len() as u64)).unwrap()),
        proptest::collection::vec(any::<i64>(), 0..64)
            .prop_map(|v| Value::from_i64(&v, Dims::local1d(v.len() as u64)).unwrap()),
        proptest::collection::vec(any::<u8>(), 0..256)
            .prop_map(|v| Value::from_u8(&v, Dims::local1d(v.len() as u64)).unwrap()),
    ]
}

fn arb_step() -> impl Strategy<Value = StepData> {
    (
        any::<u64>(),
        proptest::collection::btree_map("[a-z]{1,12}", arb_value(), 0..8),
        proptest::collection::btree_map(
            "[a-z_.]{1,16}",
            prop_oneof![
                any::<i64>().prop_map(AttrValue::Int),
                "[ -~]{0,32}".prop_map(AttrValue::Str),
                any::<f64>().prop_filter("finite", |x| x.is_finite()).prop_map(AttrValue::Float),
            ],
            0..6,
        ),
    )
        .prop_map(|(ix, vals, attrs)| {
            let mut s = StepData::new(ix);
            for (k, v) in vals {
                s.write_unchecked(k, v);
            }
            for (k, v) in attrs {
                s.set_attr(k, v);
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bp_codec_round_trips_arbitrary_steps(step in arb_step()) {
        let blob = adios::bp::encode("group", &step);
        let back = adios::bp::decode(blob).expect("encode/decode must round-trip");
        prop_assert_eq!(back.group.as_str(), "group");
        prop_assert_eq!(back.data.step(), step.step());
        prop_assert_eq!(back.data.values().count(), step.values().count());
        for (name, value) in step.values() {
            let got = back.data.value(name).expect("variable survives");
            prop_assert_eq!(got.bytes().as_ref(), value.bytes().as_ref());
            prop_assert_eq!(got.dtype(), value.dtype());
        }
        for (key, attr) in step.attrs() {
            prop_assert_eq!(back.data.attr(key).expect("attribute survives"), attr);
        }
    }

    #[test]
    fn bp_codec_detects_single_byte_corruption(
        step in arb_step(),
        flip in any::<(usize, u8)>()
    ) {
        let blob = adios::bp::encode("g", &step).to_vec();
        let pos = 12 + flip.0 % blob.len().saturating_sub(12).max(1); // skip magic+checksum
        let mask = if flip.1 == 0 { 1 } else { flip.1 };
        let mut bad = blob.clone();
        bad[pos] ^= mask;
        prop_assert!(adios::bp::decode(bytes::Bytes::from(bad)).is_err());
    }

    #[test]
    fn value_length_validation_is_exact(len in 0u64..64, extra in 1usize..16) {
        let data = vec![0u8; (len as usize) * 8 + extra];
        let r = Value::from_bytes(DataType::F64, Dims::local1d(len), bytes::Bytes::from(data));
        prop_assert!(r.is_err());
    }
}

// ------------------------------------------------------------------ d2t --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vote_collector_verdict_is_unanimity(
        size in 1usize..32,
        votes in proptest::collection::vec((0u32..32, any::<bool>()), 0..64)
    ) {
        let mut c = VoteCollector::new(size);
        let mut first_vote: std::collections::HashMap<u32, bool> = Default::default();
        for (pid, yes) in votes {
            let pid = pid % size as u32;
            first_vote.entry(pid).or_insert(yes);
            c.record(pid, if yes { Vote::Yes } else { Vote::No });
        }
        let all_voted = first_vote.len() == size;
        let any_no = first_vote.values().any(|&v| !v);
        match c.verdict() {
            Vote::Yes => prop_assert!(all_voted && !any_no),
            Vote::No => prop_assert!(!all_voted || any_no),
        }
    }

    #[test]
    fn aggregate_merge_is_order_independent(
        votes in proptest::collection::vec(any::<bool>(), 1..40)
    ) {
        let mut fwd = Aggregate::default();
        for &v in &votes {
            fwd.merge(Aggregate::from_vote(if v { Vote::Yes } else { Vote::No }));
        }
        let mut rev = Aggregate::default();
        for &v in votes.iter().rev() {
            rev.merge(Aggregate::from_vote(if v { Vote::Yes } else { Vote::No }));
        }
        prop_assert_eq!(fwd, rev);
        prop_assert_eq!(fwd.count as usize, votes.len());
    }

    #[test]
    fn root_decision_is_and_of_verdicts(groups in proptest::collection::vec(any::<bool>(), 1..6)) {
        let mut r = RootState::new(groups.len());
        for &g in &groups {
            r.record(if g { Vote::Yes } else { Vote::No });
        }
        let d = r.decision().expect("all groups reported");
        prop_assert_eq!(d == d2t::Decision::Commit, groups.iter().all(|&g| g));
    }
}

// --------------------------------------------------------------- simnet --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn staging_area_never_double_leases(
        total in 1u32..64,
        ops in proptest::collection::vec((any::<bool>(), 0u32..16), 1..40)
    ) {
        let mut area = StagingArea::with_nodes(0, total);
        let mut held: Vec<Vec<NodeId>> = Vec::new();
        for (lease, n) in ops {
            if lease {
                if let Ok(nodes) = area.lease(n) {
                    // Leased nodes must be disjoint from everything held.
                    for batch in &held {
                        for node in &nodes {
                            prop_assert!(!batch.contains(node));
                        }
                    }
                    held.push(nodes);
                }
            } else if let Some(batch) = held.pop() {
                prop_assert!(area.release(&batch).is_ok());
            }
            let held_count: u32 = held.iter().map(|b| b.len() as u32).sum();
            prop_assert_eq!(area.spare() + held_count, total);
        }
    }

    #[test]
    fn torus_hops_are_a_metric(
        dims in (1u32..6, 1u32..6, 1u32..6),
        a in 0u32..200, b in 0u32..200, c in 0u32..200
    ) {
        let size = dims.0 * dims.1 * dims.2;
        let topo = Topology::Torus3D { dims };
        let (a, b, c) = (NodeId(a % size), NodeId(b % size), NodeId(c % size));
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(topo.hops(a, a), 0);
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        prop_assert!(topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c));
    }
}

// ---------------------------------------------------------------- stats --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn welford_merge_matches_sequential(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        split in any::<prop::sample::Index>()
    ) {
        let cut = split.index(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &x in &xs[..cut] {
            a.add(x);
        }
        for &x in &xs[cut..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
    }

    #[test]
    fn sliding_window_mean_bounded_by_extremes(
        cap in 1usize..16,
        xs in proptest::collection::vec(0u64..100_000, 1..64)
    ) {
        let mut w = SlidingWindow::new(cap);
        for &x in &xs {
            w.push(SimDuration::from_micros(x));
        }
        let tail: Vec<u64> = xs[xs.len().saturating_sub(cap)..].to_vec();
        let min = *tail.iter().min().unwrap();
        let max = *tail.iter().max().unwrap();
        let mean = w.mean().as_micros();
        prop_assert!(mean >= min && mean <= max, "{min} <= {mean} <= {max}");
        prop_assert_eq!(w.max().as_micros(), max);
    }
}

// --------------------------------------------------------------- policy --

fn arb_view(id: u32) -> impl Strategy<Value = ContainerView> {
    (any::<bool>(), 0u32..16, 0u32..24, 0usize..8, 0u64..400, 0usize..8).prop_map(
        move |(online, units, needed, queue_len, lat_s, samples)| ContainerView {
            id: ContainerId(id),
            online,
            essential: id == 0,
            units,
            needed,
            spareable: units.saturating_sub(needed.max(1)),
            queue_len,
            queue_capacity: 8,
            avg_latency: SimDuration::from_secs(lat_s),
            samples,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn policy_decisions_are_always_safe(
        v0 in arb_view(0), v1 in arb_view(1), v2 in arb_view(2),
        spare in 0u32..8
    ) {
        let views = [v0, v1, v2];
        let cfg = PolicyConfig::default();
        let sla = Sla::paper_default();
        match decide(&cfg, &sla, &views, spare) {
            Decision::None => {}
            Decision::Rebalance { target, lease_spare, steal } => {
                let t = views.iter().find(|v| v.id == target).unwrap();
                prop_assert!(t.online, "only online containers are grown");
                prop_assert!(lease_spare <= spare, "cannot lease more than spare");
                let deficit = t.needed.saturating_sub(t.units);
                prop_assert!(lease_spare + steal.map(|(_, k)| k).unwrap_or(0) <= deficit);
                if let Some((donor, k)) = steal {
                    prop_assert_ne!(donor, target, "no self-steal");
                    let d = views.iter().find(|v| v.id == donor).unwrap();
                    prop_assert!(d.online);
                    prop_assert!(k <= d.spareable, "donor keeps what it needs");
                }
            }
            Decision::Offline { target } => {
                let t = views.iter().find(|v| v.id == target).unwrap();
                prop_assert!(!t.essential, "essential containers never go offline");
                prop_assert!(t.online);
                prop_assert!(sla.container_violated(t.avg_latency));
            }
            Decision::Restart { .. } => {
                prop_assert!(false, "the SLA policy never restarts; that is recovery's job");
            }
        }
    }

    #[test]
    fn recovery_decisions_are_always_safe(
        needed in 0u32..16,
        restarts_so_far in 0u32..6,
        spare in 0u32..8,
        max_restarts in 0u32..4
    ) {
        let cfg = RecoveryConfig { max_restarts, ..RecoveryConfig::default() };
        let failed = FailureView { id: ContainerId(1), needed, restarts_so_far };
        match decide_recovery(&cfg, &failed, spare) {
            Decision::Restart { target, lease_spare } => {
                prop_assert_eq!(target, failed.id);
                prop_assert!(restarts_so_far < max_restarts, "retries stay bounded");
                prop_assert!(lease_spare >= 1 && lease_spare <= spare);
            }
            Decision::Offline { target } => {
                prop_assert_eq!(target, failed.id);
                prop_assert!(spare == 0 || restarts_so_far >= max_restarts);
            }
            other => prop_assert!(false, "recovery never rebalances: {:?}", other),
        }
    }
}

// ------------------------------------------------------- transport costs --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The overflow fix's contract: wire time is monotone non-decreasing in
    /// the payload size all the way up to `u64::MAX` bytes (the old
    /// `bytes * 1e9` arithmetic wrapped long before that and broke this).
    #[test]
    fn wire_time_is_monotone_in_bytes(
        a in any::<u64>(),
        b in any::<u64>(),
        src in 0u32..64,
        dst in 0u32..64
    ) {
        let cfg = NetworkConfig::qdr_torus((4, 4, 4));
        let (lo, hi) = (a.min(b), a.max(b));
        let (src, dst) = (NodeId(src), NodeId(dst));
        prop_assert!(cfg.wire_time(src, dst, lo) <= cfg.wire_time(src, dst, hi));
    }

    /// Same contract for the datatap drain estimate, including the
    /// degenerate 1 B/s bandwidth where every byte overflowed before.
    #[test]
    fn drain_time_is_monotone_in_queued_bytes(
        a in any::<u64>(),
        b in any::<u64>(),
        bw in 1u64..u64::MAX
    ) {
        let costs = TransportCosts::default();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(costs.drain_time(lo, bw) <= costs.drain_time(hi, bw));
        // And it never panics at the extremes.
        let _ = costs.drain_time(u64::MAX, 1);
        let _ = costs.drain_time(u64::MAX, u64::MAX);
    }
}

// ----------------------------------------------------------- provenance --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn provenance_round_trips_and_completes_in_order(
        ran in proptest::collection::vec("[A-Za-z]{1,8}", 0..4),
        pruned in proptest::collection::vec("[A-Za-z]{1,8}", 0..4)
    ) {
        let ran_refs: Vec<&str> = ran.iter().map(String::as_str).collect();
        let pruned_refs: Vec<&str> = pruned.iter().map(String::as_str).collect();
        let p = Provenance::from_split(&ran_refs, &pruned_refs);
        let mut step = StepData::new(0);
        p.stamp(&mut step);
        let mut back = Provenance::read(&step);
        // Commas in names would break the list encoding; the generator
        // avoids them, and the round trip must be exact.
        prop_assert_eq!(&back, &p);
        // Completing in order always succeeds; out of order never does.
        let pending = back.pending_ops.clone();
        for (i, op) in pending.iter().enumerate() {
            for later in &pending[i + 1..] {
                if later != op {
                    prop_assert!(!back.complete(later));
                }
            }
            prop_assert!(back.complete(op));
        }
        prop_assert!(back.fully_processed());
    }
}
