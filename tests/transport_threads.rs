//! Concurrency integration tests of the staged transport and the event
//! overlay under real thread interleavings.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use adios::{AttrValue, StepData};
use datatap::{channel, WriteError};
use evpath::{Action, Event, Overlay};

#[test]
fn staged_channel_loses_nothing_under_contention() {
    let (w, r) = channel(8);
    let writers = 4u32;
    let per_writer = 200u64;
    let mut handles = Vec::new();
    for wid in 0..writers {
        let w = w.with_id(wid);
        handles.push(thread::spawn(move || {
            for i in 0..per_writer {
                w.write(StepData::new(i)).unwrap();
            }
        }));
    }
    drop(w);

    let mut seen: HashMap<u32, Vec<u64>> = HashMap::new();
    for _ in 0..(writers as u64 * per_writer) {
        let (meta, payload) = r.pull().expect("all announced steps arrive");
        assert_eq!(meta.step, payload.step(), "metadata matches payload");
        seen.entry(meta.writer).or_default().push(meta.step);
    }
    for h in handles {
        h.join().unwrap();
    }
    // Per-writer FIFO: each writer's steps arrive in its submission order.
    for (wid, steps) in seen {
        let mut sorted = steps.clone();
        sorted.sort_unstable();
        assert_eq!(steps, sorted, "writer {wid} reordered");
        assert_eq!(steps.len() as u64, per_writer);
    }
}

#[test]
fn pause_blocks_concurrent_writers_until_resume() {
    let (w, r) = channel(4);
    w.try_write(StepData::new(0)).unwrap();

    // Pause drains in a helper thread while we pull.
    let w_pause = w.clone();
    let pauser = thread::spawn(move || w_pause.pause());
    thread::sleep(Duration::from_millis(10));
    r.pull().unwrap();
    assert_eq!(pauser.join().unwrap(), Ok(1));

    // All writers now see Paused.
    assert_eq!(w.try_write(StepData::new(1)).unwrap_err(), WriteError::Paused);
    let w2 = w.clone();
    let blocked = thread::spawn(move || w2.write(StepData::new(2)).map(|m| m.step));
    thread::sleep(Duration::from_millis(10));
    w.resume();
    assert_eq!(blocked.join().unwrap().unwrap(), 2);
}

#[test]
fn overlay_pipeline_handles_concurrent_producers() {
    let ov = Overlay::new("itest");
    let seen = Arc::new(Mutex::new(Vec::new()));
    let s = seen.clone();
    let sink = ov.add_stone(Action::Terminal(Box::new(move |ev: Event| {
        s.lock().unwrap().push(*ev.expect::<u64>());
    })));
    let double = ov.add_stone(Action::Transform {
        func: Box::new(|ev| Some(Event::new(ev.expect::<u64>() * 2))),
        target: sink,
    });

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let sender = ov.sender();
        handles.push(thread::spawn(move || {
            for i in 0..250u64 {
                assert!(sender.submit(double, Event::new(t * 1000 + i)));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    ov.flush();
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 1000);
    assert!(seen.iter().all(|v| v % 2 == 0));
}

#[test]
fn monitoring_bridge_spans_overlays_under_load() {
    // Local-manager overlays bridging samples into a global-manager
    // overlay, as the container monitoring layer is wired.
    let global = Overlay::new("global");
    let count = Arc::new(Mutex::new(0u64));
    let c = count.clone();
    let gm_sink = global.add_stone(Action::Terminal(Box::new(move |_| {
        *c.lock().unwrap() += 1;
    })));

    let locals: Vec<Overlay> =
        (0..3).map(|i| Overlay::new(format!("local{i}"))).collect();
    let bridges: Vec<_> = locals
        .iter()
        .map(|l| l.add_stone(Action::Bridge { remote: global.sender(), target: gm_sink }))
        .collect();

    for (l, &b) in locals.iter().zip(&bridges) {
        for i in 0..100u64 {
            l.submit(b, Event::new(i));
        }
    }
    for l in &locals {
        l.flush();
    }
    global.flush();
    assert_eq!(*count.lock().unwrap(), 300);
}

#[test]
fn step_attrs_survive_the_staged_channel() {
    let (w, r) = channel(2);
    let mut step = StepData::new(7);
    step.set_attr("processed_by", AttrValue::Str("helper".into()));
    w.try_write(step).unwrap();
    let (_, got) = r.pull().unwrap();
    assert_eq!(got.attr("processed_by"), Some(&AttrValue::Str("helper".into())));
}
