//! Telemetry must be schedule-neutral: recording spans, counters, and
//! gauges may observe the simulation but may never change what it does.
//! These tests run the full Fig. 7 managed pipeline with telemetry fully
//! on and fully off and require the kernel's schedule hash — the ordered
//! digest of every executed (time, label, seq) — to be bitwise identical.

use iocontainers::{run_pipeline, run_pipeline_in, ExperimentConfig};
use sim_core::Sim;
use simtel::TelemetryConfig;

fn schedule_hash_with(telemetry: TelemetryConfig) -> u64 {
    let cfg = ExperimentConfig::builder_from(ExperimentConfig::fig7())
        .telemetry(telemetry)
        .build()
        .expect("the Fig. 7 preset is valid");
    let mut sim = Sim::new(cfg.seed);
    sim.record_trace();
    run_pipeline_in(&mut sim, cfg);
    sim.take_trace().expect("tracing was enabled").schedule_hash()
}

#[test]
fn telemetry_on_and_off_produce_identical_schedules() {
    let off = schedule_hash_with(TelemetryConfig::off());
    let on = schedule_hash_with(TelemetryConfig::all());
    assert_eq!(on, off, "enabling telemetry must not change DES event order");
}

#[test]
fn telemetry_does_not_change_run_outcomes() {
    let run_off = run_pipeline(ExperimentConfig::fig7());
    let run_on = run_pipeline(
        ExperimentConfig::builder_from(ExperimentConfig::fig7())
            .telemetry(TelemetryConfig::all())
            .build()
            .expect("the Fig. 7 preset is valid"),
    );
    assert_eq!(run_on.finished_at, run_off.finished_at);
    assert_eq!(run_on.final_units, run_off.final_units);
    assert_eq!(run_on.log.e2e_series().points(), run_off.log.e2e_series().points());
    // And the instrumented run actually recorded something.
    assert!(!run_on.telemetry.snapshot().is_empty());
    assert!(run_off.telemetry.snapshot().is_empty());
}
