//! Scenario-level integration tests of the managed pipeline beyond the
//! paper's three stock configurations: sensitivity to cadence, queue
//! capacity, and mid-run cracks under resource pressure.

use iocontainers::{run_pipeline, Action, ExperimentConfig, PolicyConfig, ResourceSource, Sla};
use sim_core::SimDuration;

#[test]
fn relaxed_cadence_needs_no_management_at_256() {
    // At a 30 s cadence even one Bonds replica (≈19.4 s/step) keeps up.
    let cadence = SimDuration::from_secs(30);
    let cfg = ExperimentConfig::fig7()
        .to_builder()
        .cadence(cadence)
        .sla(Sla::from_cadence(cadence))
        .steps(20)
        .build()
        .expect("relaxed fig7 variant is valid");
    let run = run_pipeline(cfg);
    assert!(
        run.log.actions().iter().all(|(_, a)| matches!(a, Action::Activate { .. })),
        "no management should be needed: {:?}",
        run.log.actions()
    );
    assert!(run.blocked_at.is_none());
}

#[test]
fn tighter_cadence_forces_more_replicas_at_512() {
    // At a 10 s cadence Bonds needs ceil(77.5/10) = 8 replicas instead
    // of 6: the manager must find 6 more than its initial 2.
    let cadence = SimDuration::from_secs(10);
    let cfg = ExperimentConfig::fig8()
        .to_builder()
        .cadence(cadence)
        .sla(Sla::from_cadence(cadence))
        .build()
        .expect("tight fig8 variant is valid");
    let run = run_pipeline(cfg);
    let added: u32 = run
        .log
        .actions()
        .iter()
        .filter_map(|(_, a)| match a {
            Action::Increase { added, .. } => Some(*added),
            _ => None,
        })
        .sum();
    assert!(added >= 6, "needs at least 6 more replicas, got {added}");
    let bonds_units =
        run.final_units.iter().find(|(n, _)| *n == "Bonds").expect("bonds exists").1;
    assert_eq!(bonds_units, 8);
}

#[test]
fn tiny_queues_trigger_offline_sooner() {
    let base = ExperimentConfig::fig9();
    let offline_time = |cap: usize| {
        let cfg = base
            .clone()
            .to_builder()
            .queue_capacity(cap)
            .build()
            .expect("fig9 queue variant is valid");
        let run = run_pipeline(cfg);
        run.log
            .actions()
            .iter()
            .find_map(|(t, a)| matches!(a, Action::Offline { .. }).then_some(*t))
            .expect("offline must happen at 1024 nodes")
    };
    let small = offline_time(4);
    let large = offline_time(16);
    assert!(small <= large, "smaller queues must prune earlier: {small} vs {large}");
}

#[test]
fn crack_under_pressure_still_branches() {
    // Fig. 8 resources plus a mid-run crack: management and the dynamic
    // branch must compose.
    let cfg = ExperimentConfig::fig8()
        .to_builder()
        .crack_at_step(10)
        .build()
        .expect("cracked fig8 variant is valid");
    let run = run_pipeline(cfg);
    assert!(run.crack_detected);
    assert!(run.offline.contains(&"CSym"), "CSym retires after the branch");
    assert!(run
        .log
        .actions()
        .iter()
        .any(|(_, a)| matches!(a, Action::Activate { .. })));
    // The spare-consuming increase still happened.
    assert!(run.log.actions().iter().any(|(_, a)| matches!(
        a,
        Action::Increase { source: ResourceSource::Spare, .. }
    )));
    assert!(run.blocked_at.is_none());
}

#[test]
fn disabled_policy_at_512_eventually_blocks() {
    let cfg = ExperimentConfig::fig8()
        .to_builder()
        .policy(PolicyConfig { enabled: false, ..PolicyConfig::default() })
        .steps(60)
        .build()
        .expect("unmanaged fig8 variant is valid");
    let run = run_pipeline(cfg);
    assert!(
        run.blocked_at.is_some(),
        "2 replicas cannot sustain the 512-node rate over 60 steps"
    );
}

#[test]
fn weak_scaling_data_sizes_feed_the_pipeline() {
    for (cfg, mib) in [
        (ExperimentConfig::fig7(), 67.0),
        (ExperimentConfig::fig8(), 134.6),
        (ExperimentConfig::fig9(), 269.2),
    ] {
        let actual = cfg.step_bytes() as f64 / (1024.0 * 1024.0);
        assert!((actual - mib).abs() < 0.5, "Table II row mismatch: {actual} vs {mib}");
    }
}

#[test]
fn management_improves_end_to_end_latency_at_512() {
    // The headline claim: the same scenario with and without management.
    let managed = run_pipeline(ExperimentConfig::fig8());
    let cfg = ExperimentConfig::fig8()
        .to_builder()
        .policy(PolicyConfig { enabled: false, ..PolicyConfig::default() })
        .build()
        .expect("unmanaged fig8 variant is valid");
    let unmanaged = run_pipeline(cfg);

    let peak = |r: &iocontainers::PipelineRun| {
        r.log.e2e_series().max_value().expect("e2e points recorded")
    };
    assert!(
        peak(&managed) < peak(&unmanaged) / 2.0,
        "management must at least halve the e2e peak: {} vs {}",
        peak(&managed),
        peak(&unmanaged)
    );
}
