//! The event-kernel throughput baseline behind `BENCH_events.json`.
//!
//! `BENCH_kernels.json` tracks the analytics kernels; this module tracks
//! the other half of the perf story — the DES kernel itself. Three
//! synthetic workloads bound the schedules real experiments produce:
//!
//! * **schedule-heavy** — pre-schedule N events at pseudo-random
//!   timestamps, then drain. Stresses heap push/pop at large queue
//!   depths. `events` counts executed events (all N fire).
//! * **cancel-heavy** — schedule N events, cancel every other one, then
//!   drain. Stresses cancellation (the old kernel accumulated tombstones
//!   here; the indexed queue removes eagerly). `events` counts scheduled
//!   events (N); half execute.
//! * **pipeline-replay** — 64 event chains, each handler scheduling its
//!   successor at a short pseudo-random delay, until N events executed.
//!   Mimics the steady-state cadence of the pipeline experiments: a
//!   small hot queue with heavy churn. `events` counts executed events.
//!
//! Every workload is deterministic (timestamps come from a SplitMix64
//! stream with a fixed seed); only the wall-clock measurement varies.
//! Like the kernel baseline, the committed artifact is a small flat JSON
//! file (`bench-events/v1`) so the throughput trajectory is diffable
//! PR-over-PR, and `compare` implements the regression gate behind
//! `cargo xtask bench-diff`.

use std::time::Instant;

use sim_core::{shared, Sim, SimDuration, SimTime};

/// Identifier baked into the artifact so `--check` can reject files
/// produced by an incompatible emitter.
pub const EVENTS_SCHEMA: &str = "bench-events/v1";

/// The workload names, in artifact order.
pub const WORKLOADS: [&str; 3] = ["schedule-heavy", "cancel-heavy", "pipeline-replay"];

/// The event counts the committed artifact carries.
pub const DEFAULT_SIZES: [u64; 3] = [10_000, 100_000, 1_000_000];

/// One measured point of the event-kernel baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct EventsRow {
    /// Workload name (one of [`WORKLOADS`]).
    pub workload: String,
    /// Nominal event count of the workload (see the module docs for what
    /// each workload counts).
    pub events: u64,
    /// Best-of-N wall time divided by the event count, in nanoseconds.
    pub ns_per_event: f64,
    /// Events per second of wall time (`1e9 / ns_per_event`).
    pub events_per_sec: f64,
}

/// Deterministic SplitMix64 stream driving workload timestamps. The
/// kernel's own RNG is deliberately not used: the workload must cost the
/// same no matter how the kernel evolves.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the schedule-heavy workload once; returns executed-event count.
pub fn run_schedule_heavy(n: u64) -> u64 {
    let mut sim = Sim::new(42);
    let hits = shared(0u64);
    let mut rng = 0x5EED_0001u64;
    let horizon = n.saturating_mul(1_000).max(1);
    for _ in 0..n {
        let hits = hits.clone();
        let at = SimTime::from_nanos(splitmix(&mut rng) % horizon);
        sim.schedule_at_named("bench.sched", at, move |_| *hits.borrow_mut() += 1);
    }
    sim.run();
    let executed = *hits.borrow();
    executed
}

/// Runs the cancel-heavy workload once; returns executed-event count
/// (half of `n` — the other half is cancelled before draining).
pub fn run_cancel_heavy(n: u64) -> u64 {
    let mut sim = Sim::new(42);
    let hits = shared(0u64);
    let mut rng = 0x5EED_0002u64;
    let horizon = n.saturating_mul(1_000).max(1);
    let mut ids = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let hits = hits.clone();
        let at = SimTime::from_nanos(splitmix(&mut rng) % horizon);
        ids.push(sim.schedule_at_named("bench.cancel", at, move |_| *hits.borrow_mut() += 1));
    }
    for id in ids.into_iter().step_by(2) {
        sim.cancel(id);
    }
    sim.run();
    let executed = *hits.borrow();
    executed
}

/// Runs the pipeline-replay workload once; returns executed-event count.
pub fn run_pipeline_replay(n: u64) -> u64 {
    const CHAINS: u64 = 64;
    let mut sim = Sim::new(42);
    let hits = shared(0u64);
    fn link(sim: &mut Sim, hits: sim_core::Shared<u64>, mut rng: u64, budget: u64) {
        *hits.borrow_mut() += 1;
        if budget > 1 {
            let delay = SimDuration::from_nanos(splitmix(&mut rng) % 10_000);
            sim.schedule_in_named("bench.replay", delay, move |sim| {
                link(sim, hits, rng, budget - 1);
            });
        }
    }
    for chain in 0..CHAINS.min(n.max(1)) {
        let hits = hits.clone();
        let budget = n / CHAINS + u64::from(chain < n % CHAINS);
        if budget == 0 {
            continue;
        }
        let rng = 0x5EED_0003u64 ^ chain.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        sim.schedule_at_named("bench.replay", SimTime::from_nanos(chain), move |sim| {
            link(sim, hits, rng, budget);
        });
    }
    sim.run();
    let executed = *hits.borrow();
    executed
}

fn best_of<F: FnMut() -> u64>(reps: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut executed = 0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        executed = std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, executed)
}

/// Measures every workload at each requested size and returns rows in
/// deterministic order (workload, then size as given). `reps` is
/// best-of-N per cell.
pub fn events_baseline(sizes: &[u64], reps: usize) -> Vec<EventsRow> {
    let mut rows = Vec::new();
    for workload in WORKLOADS {
        for &n in sizes {
            let (secs, executed) = match workload {
                "schedule-heavy" => best_of(reps, || run_schedule_heavy(n)),
                "cancel-heavy" => best_of(reps, || run_cancel_heavy(n)),
                _ => best_of(reps, || run_pipeline_replay(n)),
            };
            // The workloads are deterministic, so a wrong executed count is
            // an emitter bug, not noise.
            let expect = if workload == "cancel-heavy" { n / 2 } else { n };
            assert_eq!(executed, expect, "{workload} at {n}: wrong executed count");
            let ns_per_event = secs * 1e9 / n.max(1) as f64;
            rows.push(EventsRow {
                workload: workload.to_string(),
                events: n,
                ns_per_event,
                events_per_sec: 1e9 / ns_per_event,
            });
        }
    }
    rows
}

/// Renders rows as the committed `BENCH_events.json` artifact.
pub fn events_json(rows: &[EventsRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{EVENTS_SCHEMA}\",\n"));
    out.push_str("  \"rows\": [\n");
    for (ix, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"events\": {}, \"ns_per_event\": {:.2}, \
             \"events_per_sec\": {:.0}}}{}\n",
            r.workload,
            r.events,
            r.ns_per_event,
            r.events_per_sec,
            if ix + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start =
        obj.find(&pat).ok_or_else(|| format!("missing field {key:?} in {obj:?}"))? + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim().trim_matches('"'))
}

/// Parses an artifact produced by [`events_json`]. Like the kernel
/// baseline parser, this handles exactly the flat schema this module
/// emits — all the CI gate needs, with no serde dependency.
pub fn parse_events_json(s: &str) -> Result<Vec<EventsRow>, String> {
    let schema = field(s, "schema")?;
    if schema != EVENTS_SCHEMA {
        return Err(format!("schema {schema:?}, expected {EVENTS_SCHEMA:?}"));
    }
    let rows_start = s.find("\"rows\"").ok_or("missing rows array")?;
    let body = &s[rows_start..];
    let open = body.find('[').ok_or("missing rows [")?;
    let close = body.rfind(']').ok_or("missing rows ]")?;
    let mut rows = Vec::new();
    for obj in body[open + 1..close].split('}') {
        let obj = obj.trim().trim_start_matches(',').trim();
        if obj.is_empty() {
            continue;
        }
        let obj = obj.trim_start_matches('{');
        let num = |key: &str| -> Result<f64, String> {
            field(obj, key)?.parse::<f64>().map_err(|e| format!("bad {key}: {e}"))
        };
        rows.push(EventsRow {
            workload: field(obj, "workload")?.to_string(),
            events: num("events")? as u64,
            ns_per_event: num("ns_per_event")?,
            events_per_sec: num("events_per_sec")?,
        });
    }
    Ok(rows)
}

/// The CI schema gate: rows must be non-empty, cover all three workloads,
/// and carry positive finite, mutually consistent timings.
pub fn validate_events(rows: &[EventsRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("events baseline has no rows".into());
    }
    for workload in WORKLOADS {
        if !rows.iter().any(|r| r.workload == workload) {
            return Err(format!("workload {workload:?} has no rows"));
        }
    }
    for r in rows {
        if r.events == 0 {
            return Err(format!("row {r:?}: zero events"));
        }
        if !(r.ns_per_event.is_finite() && r.ns_per_event > 0.0) {
            return Err(format!("row {r:?}: non-positive ns_per_event"));
        }
        if !(r.events_per_sec.is_finite() && r.events_per_sec > 0.0) {
            return Err(format!("row {r:?}: non-positive events_per_sec"));
        }
        // The two columns are redundant by construction; drift beyond
        // rounding means a hand-edited artifact.
        let implied = 1e9 / r.ns_per_event;
        if (implied - r.events_per_sec).abs() > implied * 0.02 {
            return Err(format!("row {r:?}: ns_per_event and events_per_sec disagree"));
        }
    }
    Ok(())
}

/// Estimate of the machine's current speed relative to the baseline
/// capture, from the best fresh/committed events-per-sec ratio across
/// the shared cells.
///
/// The committed artifact is a best-of-many capture, and this box's
/// effective clock drifts by tens of percent between windows. Drift
/// scales *every* workload down together, so the least-affected cell is
/// a yardstick for the machine state itself; a code regression instead
/// concentrates in the workloads exercising the changed operation and
/// falls away from that yardstick. Clamped to `[0.5, 1.0]`: the gate
/// never *raises* expectations above the committed numbers, and a
/// machine-wide slowdown beyond 2x is treated as a real regression
/// rather than excusable drift.
pub fn machine_state_yardstick(committed: &[EventsRow], fresh: &[EventsRow]) -> f64 {
    let mut best = 0.0f64;
    for base in committed {
        let Some(now) = fresh
            .iter()
            .find(|r| r.workload == base.workload && r.events == base.events)
        else {
            continue;
        };
        if base.events_per_sec > 0.0 {
            best = best.max(now.events_per_sec / base.events_per_sec);
        }
    }
    if best == 0.0 {
        return 1.0; // no shared cells: nothing to normalize
    }
    best.clamp(0.5, 1.0)
}

/// Diffs a fresh measurement against the committed baseline: every
/// `(workload, events)` cell present in both must not have lost more
/// than `tolerance` (fractional) of its events/sec, after the committed
/// figures are scaled by `state` (see [`machine_state_yardstick`];
/// pass `1.0` for a raw absolute comparison). Returns the list of
/// regressions, empty when the gate passes. Cells present in only one
/// file are ignored (sizes may differ between CI and the full artifact).
pub fn compare_events_scaled(
    committed: &[EventsRow],
    fresh: &[EventsRow],
    tolerance: f64,
    state: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    for base in committed {
        let Some(now) = fresh
            .iter()
            .find(|r| r.workload == base.workload && r.events == base.events)
        else {
            continue;
        };
        let floor = base.events_per_sec * state * (1.0 - tolerance);
        if now.events_per_sec < floor {
            regressions.push(format!(
                "{} at {} events: {:.0} ev/s, below {:.0} (committed {:.0} x {:.2} machine state - {:.0}% tolerance)",
                base.workload,
                base.events,
                now.events_per_sec,
                floor,
                base.events_per_sec,
                state,
                tolerance * 100.0
            ));
        }
    }
    regressions
}

/// [`compare_events_scaled`] without machine-state normalization.
pub fn compare_events(
    committed: &[EventsRow],
    fresh: &[EventsRow],
    tolerance: f64,
) -> Vec<String> {
    compare_events_scaled(committed, fresh, tolerance, 1.0)
}

/// The events/sec table the `events` bin prints (and EXPERIMENTS.md
/// quotes).
pub fn events_table(rows: &[EventsRow]) -> crate::Table {
    crate::Table {
        title: "Event-kernel throughput baseline".into(),
        header: vec![
            "workload".into(),
            "events".into(),
            "ns/event".into(),
            "events/sec".into(),
        ],
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.events.to_string(),
                    format!("{:.1}", r.ns_per_event),
                    format!("{:.2}M", r.events_per_sec / 1e6),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<EventsRow> {
        WORKLOADS
            .iter()
            .flat_map(|w| {
                [1_000u64, 10_000].into_iter().map(|n| EventsRow {
                    workload: w.to_string(),
                    events: n,
                    ns_per_event: 100.0,
                    events_per_sec: 1e7,
                })
            })
            .collect()
    }

    #[test]
    fn json_round_trips_and_validates() {
        let rows = sample_rows();
        let json = events_json(&rows);
        let back = parse_events_json(&json).expect("parses");
        assert_eq!(back.len(), rows.len());
        assert_eq!(back[0].workload, "schedule-heavy");
        assert_eq!(back[0].events, 1_000);
        assert!((back[0].ns_per_event - 100.0).abs() < 1e-9);
        validate_events(&back).expect("valid");
    }

    #[test]
    fn validation_rejects_bad_artifacts() {
        assert!(validate_events(&[]).is_err());
        let mut rows = sample_rows();
        rows.retain(|r| r.workload != "cancel-heavy");
        assert!(validate_events(&rows).unwrap_err().contains("cancel-heavy"));
        let mut rows = sample_rows();
        rows[0].events_per_sec = 5e7; // disagrees with ns_per_event
        assert!(validate_events(&rows).is_err());
        assert!(parse_events_json("{\"schema\": \"other/v9\", \"rows\": []}").is_err());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let committed = sample_rows();
        let mut fresh = sample_rows();
        assert!(compare_events(&committed, &fresh, 0.2).is_empty());
        fresh[0].events_per_sec = 7.9e6; // 21% down
        let regressions = compare_events(&committed, &fresh, 0.2);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("schedule-heavy"));
        // Within tolerance: no finding.
        fresh[0].events_per_sec = 8.5e6;
        assert!(compare_events(&committed, &fresh, 0.2).is_empty());
        // Cells only on one side are ignored.
        fresh.remove(0);
        assert!(compare_events(&committed, &fresh, 0.2).is_empty());
    }

    #[test]
    fn yardstick_tracks_the_best_cell_and_clamps() {
        let committed = sample_rows();
        let mut fresh = sample_rows();
        assert_eq!(machine_state_yardstick(&committed, &fresh), 1.0);
        // Uniform 30% slowdown: the best cell reveals the machine state.
        for r in &mut fresh {
            r.events_per_sec = 7e6;
        }
        let y = machine_state_yardstick(&committed, &fresh);
        assert!((y - 0.7).abs() < 1e-9, "yardstick {y}");
        // Faster-than-committed never raises expectations…
        fresh[0].events_per_sec = 2e7;
        assert_eq!(machine_state_yardstick(&committed, &fresh), 1.0);
        // …and a machine-wide collapse is not excusable past 2x.
        for r in &mut fresh {
            r.events_per_sec = 2e6;
        }
        assert_eq!(machine_state_yardstick(&committed, &fresh), 0.5);
        assert_eq!(machine_state_yardstick(&committed, &[]), 1.0);
    }

    #[test]
    fn state_scaled_compare_excuses_drift_but_not_selective_regressions() {
        let committed = sample_rows();
        // A slow machine window: everything down ~40%, one workload only 35%.
        let mut fresh = sample_rows();
        for r in &mut fresh {
            r.events_per_sec = 6e6;
        }
        fresh[0].events_per_sec = 6.5e6;
        let state = machine_state_yardstick(&committed, &fresh);
        assert!(compare_events(&committed, &fresh, 0.35).len() > 1, "raw compare trips on drift");
        assert!(
            compare_events_scaled(&committed, &fresh, 0.35, state).is_empty(),
            "uniform drift is normalized out"
        );
        // Same window, but one workload genuinely lost 3x: it falls away
        // from the yardstick and still fails.
        fresh[2].events_per_sec = 2e6;
        let state = machine_state_yardstick(&committed, &fresh);
        let regressions = compare_events_scaled(&committed, &fresh, 0.35, state);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("cancel-heavy"));
    }

    #[test]
    fn workloads_execute_the_documented_counts() {
        assert_eq!(run_schedule_heavy(500), 500);
        assert_eq!(run_cancel_heavy(501), 250);
        assert_eq!(run_pipeline_replay(500), 500);
        assert_eq!(run_pipeline_replay(5), 5); // fewer events than chains
    }

    #[test]
    fn measured_baseline_on_tiny_sizes_is_valid() {
        let rows = events_baseline(&[1_000], 1);
        validate_events(&rows).expect("measured rows validate");
        assert_eq!(rows.len(), 3);
    }
}
