//! Emits, validates, or diffs the committed event-kernel throughput
//! baseline.
//!
//! ```text
//! cargo run -p bench --release --bin events                    # BENCH_events.json
//! cargo run -p bench --release --bin events -- --sizes 10000,100000
//! cargo run -p bench --bin events -- --check BENCH_events.json
//! cargo run -p bench --release --bin events -- --diff BENCH_events.json
//! ```
//!
//! `--diff` re-measures the workloads at the committed sizes and fails
//! (exit 1) if any cell lost more than the tolerance of its events/sec,
//! after the committed floors are scaled by the machine-state yardstick
//! (the best fresh/committed cell, clamped to [0.5, 1.0]) so a slow
//! machine window is not mistaken for a code regression. The tolerance
//! comes from `--tolerance`, else the `BENCH_EVENTS_TOLERANCE`
//! environment variable, else 0.45. Because CI containers are sometimes
//! throttled so hard that any wall-clock comparison is noise, the diff
//! first takes two calibration runs of the same workload: if they
//! disagree by more than 2x, the gate degrades to a loud skip (exit 0)
//! rather than failing on scheduler weather.

use bench::events::{
    compare_events_scaled, events_baseline, events_json, events_table, machine_state_yardstick,
    parse_events_json, run_schedule_heavy, validate_events, DEFAULT_SIZES,
};

fn parse_sizes(spec: &str) -> Result<Vec<u64>, String> {
    let sizes: Result<Vec<u64>, _> = spec.split(',').map(|t| t.trim().parse::<u64>()).collect();
    match sizes {
        Ok(s) if !s.is_empty() && s.iter().all(|&n| n > 0) => Ok(s),
        _ => Err(format!("bad size list {spec:?}; expected e.g. 10000,100000,1000000")),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("events: {msg}");
    std::process::exit(2);
}

/// Two timed runs of the same deterministic workload. On a healthy
/// machine they agree closely; a ratio beyond 2x means the container is
/// being throttled or preempted hard enough that diffing against a
/// baseline measured elsewhere is meaningless.
fn environment_is_steady() -> bool {
    let timed = || {
        let t0 = std::time::Instant::now();
        std::hint::black_box(run_schedule_heavy(50_000));
        t0.elapsed().as_secs_f64()
    };
    let (a, b) = (timed(), timed());
    let ratio = a.max(b) / a.min(b).max(1e-12);
    if ratio > 2.0 {
        eprintln!("events: calibration runs disagree by {ratio:.1}x; container looks throttled");
    }
    ratio <= 2.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_events.json".to_string();
    let mut sizes = DEFAULT_SIZES.to_vec();
    let mut reps = 3usize;
    let mut check: Option<String> = None;
    let mut diff: Option<String> = None;
    let mut tolerance: Option<f64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--sizes" => sizes = parse_sizes(&value("--sizes")).unwrap_or_else(|e| fail(&e)),
            "--reps" => {
                reps = value("--reps").parse().unwrap_or_else(|e| fail(&format!("bad --reps: {e}")))
            }
            "--check" => check = Some(value("--check")),
            "--diff" => diff = Some(value("--diff")),
            "--tolerance" => {
                tolerance = Some(
                    value("--tolerance")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("bad --tolerance: {e}"))),
                )
            }
            other => fail(&format!(
                "unknown argument {other:?}; usage: events [--out PATH] [--sizes N,N] \
                 [--reps N] [--check PATH] [--diff PATH [--tolerance F]]"
            )),
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let rows = parse_events_json(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        validate_events(&rows).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        println!("events: {path} OK ({} rows)", rows.len());
        return;
    }

    if let Some(path) = diff {
        let tolerance = tolerance
            .or_else(|| {
                std::env::var("BENCH_EVENTS_TOLERANCE").ok().map(|s| {
                    s.parse().unwrap_or_else(|e| fail(&format!("bad BENCH_EVENTS_TOLERANCE: {e}")))
                })
            })
            .unwrap_or(0.45);
        if !(0.0..1.0).contains(&tolerance) {
            fail(&format!("tolerance {tolerance} outside [0, 1)"));
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let committed = parse_events_json(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        validate_events(&committed).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        if !environment_is_steady() {
            println!("events: diff skipped (unsteady environment)");
            return;
        }
        let committed_sizes: Vec<u64> = {
            let mut s: Vec<u64> = committed.iter().map(|r| r.events).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let fresh = events_baseline(&committed_sizes, reps);
        let state = machine_state_yardstick(&committed, &fresh);
        if state < 1.0 {
            println!(
                "events: machine running at {:.0}% of the baseline capture; floors scaled to match",
                state * 100.0
            );
        }
        let regressions = compare_events_scaled(&committed, &fresh, tolerance, state);
        if regressions.is_empty() {
            println!(
                "events: no regression beyond {:.0}% across {} cells",
                tolerance * 100.0,
                committed.len()
            );
            return;
        }
        for r in &regressions {
            eprintln!("events: REGRESSION {r}");
        }
        std::process::exit(1);
    }

    let rows = events_baseline(&sizes, reps);
    validate_events(&rows).unwrap_or_else(|e| fail(&format!("freshly measured rows invalid: {e}")));
    std::fs::write(&out, events_json(&rows))
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!("{}", events_table(&rows).render());
    println!("wrote {out}");
}
