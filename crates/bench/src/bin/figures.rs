//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- all
//! cargo run -p bench --release --bin figures -- fig7
//! ```

use bench::{
    fig10, fig4, fig5, fig6, fig7, fig8, fig9, sweep_cadence, sweep_staging, table1, table2,
    Table,
};

type Job = (&'static str, fn() -> Table);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");

    let jobs: Vec<Job> = vec![
        ("table1", table1 as fn() -> Table),
        ("table2", table2),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("sweep_staging", sweep_staging as fn() -> Table),
        ("sweep_cadence", sweep_cadence),
    ];

    let selected: Vec<&Job> = if what == "all" {
        jobs.iter().collect()
    } else {
        jobs.iter().filter(|(name, _)| *name == what).collect()
    };

    if selected.is_empty() {
        eprintln!(
            "unknown figure '{what}'; expected one of: all {}",
            jobs.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
        );
        std::process::exit(2);
    }

    for (_, job) in selected {
        println!("{}", job().render());
    }
}
