//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- all
//! cargo run -p bench --release --bin figures -- fig7
//! cargo run -p bench --release --bin figures -- trace   # Perfetto + CSV
//! cargo run -p bench --release --bin figures -- kernels --threads 4
//! ```
//!
//! The `kernels` job times the simpar-parallel analytics kernels; its
//! thread sweep comes from `--threads N` (or a comma list), falling back
//! to the `SIMPAR_THREADS` environment variable, then to `1,2,4`.

use bench::{
    fig10, fig4, fig5, fig6, fig7, fig8, fig9, sweep_cadence, sweep_staging, table1, table2,
    Table,
};

type Job = (&'static str, fn() -> Table);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");

    // The trace job produces files rather than a printable table.
    if what == "trace" {
        let (json, csv) = bench::trace_artifacts();
        let dir = std::path::Path::new("target/traces");
        std::fs::create_dir_all(dir).expect("create target/traces");
        let json_path = dir.join("fig7.trace.json");
        let csv_path = dir.join("fig7.series.csv");
        std::fs::write(&json_path, json).expect("write Perfetto trace");
        std::fs::write(&csv_path, csv).expect("write series CSV");
        println!("wrote {} (open at https://ui.perfetto.dev)", json_path.display());
        println!("wrote {}", csv_path.display());
        return;
    }

    // The kernels job takes a thread sweep, so it dispatches by hand too.
    if what == "kernels" {
        let spec = args
            .iter()
            .position(|a| a == "--threads")
            .and_then(|ix| args.get(ix + 1).cloned())
            .or_else(|| std::env::var("SIMPAR_THREADS").ok())
            .unwrap_or_else(|| "1,2,4".into());
        let threads: Vec<usize> = spec
            .split(',')
            .map(|t| t.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| {
                eprintln!("bad --threads {spec:?}: {e}");
                std::process::exit(2);
            });
        let rows = bench::baseline::kernel_baseline(6, &threads, 5);
        println!("{}", bench::baseline::kernel_table(&rows).render());
        return;
    }

    let jobs: Vec<Job> = vec![
        ("table1", table1 as fn() -> Table),
        ("table2", table2),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("sweep_staging", sweep_staging as fn() -> Table),
        ("sweep_cadence", sweep_cadence),
    ];

    let selected: Vec<&Job> = if what == "all" {
        jobs.iter().collect()
    } else {
        jobs.iter().filter(|(name, _)| *name == what).collect()
    };

    if selected.is_empty() {
        eprintln!(
            "unknown figure '{what}'; expected one of: all trace kernels {}",
            jobs.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" ")
        );
        std::process::exit(2);
    }

    for (_, job) in selected {
        println!("{}", job().render());
    }
}
