//! Emits (or validates) the committed kernel perf baseline.
//!
//! ```text
//! cargo run -p bench --release --bin baseline                  # BENCH_kernels.json
//! cargo run -p bench --release --bin baseline -- --threads 1,2,4 --cells 6,10,20
//! cargo run -p bench --bin baseline -- --check BENCH_kernels.json
//! ```
//!
//! The thread sweep defaults to `1,2,4` and can also come from the
//! `SIMPAR_THREADS` environment variable (the flag wins). `--cells`
//! takes a comma list of snapshot sizes (atoms = 4·cells³, so the
//! default `6,10,20` measures 864, 4 000 and 32 000 atoms).

use bench::baseline::{
    baseline_json, kernel_baseline_multi, kernel_table, parse_baseline_json, validate_baseline,
};

fn parse_threads(spec: &str) -> Result<Vec<usize>, String> {
    let counts: Result<Vec<usize>, _> =
        spec.split(',').map(|t| t.trim().parse::<usize>()).collect();
    match counts {
        Ok(c) if !c.is_empty() && c.iter().all(|&t| t > 0) => Ok(c),
        _ => Err(format!("bad thread list {spec:?}; expected e.g. 1,2,4")),
    }
}

fn parse_cells(spec: &str) -> Result<Vec<u32>, String> {
    let sizes: Result<Vec<u32>, _> = spec.split(',').map(|t| t.trim().parse::<u32>()).collect();
    match sizes {
        Ok(c) if !c.is_empty() && c.iter().all(|&n| n > 0) => Ok(c),
        _ => Err(format!("bad cell list {spec:?}; expected e.g. 6,10,20")),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("baseline: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_kernels.json".to_string();
    let mut cells = vec![6u32, 10, 20];
    let mut reps = 5usize;
    let mut threads = std::env::var("SIMPAR_THREADS")
        .ok()
        .map(|s| parse_threads(&s).unwrap_or_else(|e| fail(&e)))
        .unwrap_or_else(|| vec![1, 2, 4]);
    let mut check: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--cells" => cells = parse_cells(&value("--cells")).unwrap_or_else(|e| fail(&e)),
            "--reps" => {
                reps = value("--reps").parse().unwrap_or_else(|e| fail(&format!("bad --reps: {e}")))
            }
            "--threads" => threads = parse_threads(&value("--threads")).unwrap_or_else(|e| fail(&e)),
            "--check" => check = Some(value("--check")),
            other => fail(&format!(
                "unknown argument {other:?}; usage: baseline [--out PATH] [--cells 6,10,20] \
                 [--reps N] [--threads 1,2,4] [--check PATH]"
            )),
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let rows = parse_baseline_json(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        validate_baseline(&rows).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        println!("baseline: {path} OK ({} rows)", rows.len());
        return;
    }

    if !threads.contains(&1) {
        threads.insert(0, 1); // the artifact always carries the serial reference
    }
    let rows = kernel_baseline_multi(&cells, &threads, reps);
    validate_baseline(&rows).unwrap_or_else(|e| fail(&format!("freshly measured rows invalid: {e}")));
    std::fs::write(&out, baseline_json(&rows))
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!("{}", kernel_table(&rows).render());
    println!("wrote {out}");
}
