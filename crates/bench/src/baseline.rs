//! The kernel perf-baseline emitter behind `BENCH_kernels.json`.
//!
//! Criterion benches are great interactively but their output is neither
//! stable nor diffable, so the repo's perf trajectory is tracked by a
//! small committed artifact instead: one JSON file of
//! `(kernel, atoms, threads, ns_per_atom, speedup_vs_serial)` rows,
//! measured on the crack-detection snapshot (the workload of the paper's
//! Figs. 7–10 narrative). `cargo run -p bench --release --bin baseline`
//! regenerates it; `baseline --check` validates the schema in CI.
//!
//! Measurement is deliberately simple: best-of-N wall-clock per kernel
//! (min discards scheduler noise), normalized per atom. The emitter is
//! measurement code — it reads real clocks and lives outside simlint
//! scope like the rest of this crate.

use std::time::Instant;

use mdsim::{MdConfig, MdEngine, Snapshot};
use smartpointer::{Bonds, CSym, Cna};

use crate::Table;

/// Identifier baked into the artifact so `--check` can reject files
/// produced by an incompatible emitter.
pub const BASELINE_SCHEMA: &str = "bench-kernels/v1";

/// One measured point of the kernel baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineRow {
    /// Kernel name (`bonds`, `csym`, `cna`).
    pub kernel: String,
    /// Atoms in the measured snapshot.
    pub atoms: usize,
    /// simpar worker threads the kernel ran with.
    pub threads: usize,
    /// Best-of-N wall time divided by the atom count, in nanoseconds.
    pub ns_per_atom: f64,
    /// This kernel's serial (threads = 1) time over this row's time.
    pub speedup_vs_serial: f64,
}

/// The crack-detection snapshot all baseline rows are measured on: a
/// strained crystal run just past its yield strain, so crack faces are
/// present and CNA/CSym see the defect-heavy workload of the paper's
/// branch scenario.
pub fn crack_snapshot(cells: u32) -> Snapshot {
    let cfg = MdConfig {
        cells: (cells, cells, cells),
        temperature: 0.02,
        strain_per_step: 0.005,
        yield_strain: 0.02,
        ..MdConfig::default()
    };
    let mut md = MdEngine::new(cfg);
    md.run(10); // crosses the yield strain
    md.run_epoch(1)
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Measures the kernels on crack snapshots of several sizes (`cells` is
/// edge cells per snapshot; atoms = 4·cells³, so 6/10/20 → 864/4k/32k)
/// and concatenates the per-size sweeps in the order given.
pub fn kernel_baseline_multi(
    cells_list: &[u32],
    thread_counts: &[usize],
    reps: usize,
) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    for &cells in cells_list {
        rows.extend(kernel_baseline(cells, thread_counts, reps));
    }
    rows
}

/// Measures the three simpar-parallel kernels on the crack snapshot at
/// each requested thread count and returns rows in deterministic order
/// (kernel, then thread count as given). `reps` is best-of-N per cell.
pub fn kernel_baseline(cells: u32, thread_counts: &[usize], reps: usize) -> Vec<BaselineRow> {
    let snap = crack_snapshot(cells);
    let atoms = snap.atom_count();
    let bonds_out = Bonds::default().compute(&snap);

    let mut rows = Vec::new();
    let mut push_sweep = |kernel: &str, mut run: Box<dyn FnMut(usize) -> f64>| {
        let mut serial_ns = None;
        for &threads in thread_counts {
            let secs = run(threads);
            let ns_per_atom = secs * 1e9 / atoms as f64;
            let base = *serial_ns.get_or_insert(if threads == 1 { ns_per_atom } else { run(1) * 1e9 / atoms as f64 });
            rows.push(BaselineRow {
                kernel: kernel.to_string(),
                atoms,
                threads,
                ns_per_atom,
                speedup_vs_serial: base / ns_per_atom,
            });
        }
    };

    {
        let snap = &snap;
        push_sweep(
            "bonds",
            Box::new(move |threads| {
                let k = Bonds { threads, ..Bonds::default() };
                best_of(reps, || {
                    std::hint::black_box(k.compute(snap));
                })
            }),
        );
    }
    {
        let bonds_out = &bonds_out;
        push_sweep(
            "csym",
            Box::new(move |threads| {
                let k = CSym { threads, ..CSym::default() };
                best_of(reps, || {
                    std::hint::black_box(k.compute(bonds_out));
                })
            }),
        );
        push_sweep(
            "cna",
            Box::new(move |threads| {
                let k = Cna { threads };
                best_of(reps, || {
                    std::hint::black_box(k.compute(bonds_out));
                })
            }),
        );
    }
    rows
}

/// Renders rows as the committed `BENCH_kernels.json` artifact.
pub fn baseline_json(rows: &[BaselineRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BASELINE_SCHEMA}\",\n"));
    out.push_str("  \"rows\": [\n");
    for (ix, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"atoms\": {}, \"threads\": {}, \
             \"ns_per_atom\": {:.2}, \"speedup_vs_serial\": {:.3}}}{}\n",
            r.kernel,
            r.atoms,
            r.threads,
            r.ns_per_atom,
            r.speedup_vs_serial,
            if ix + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat).ok_or_else(|| format!("missing field {key:?} in {obj:?}"))? + pat.len();
    let rest = obj[start..].trim_start();
    // The last field of a row has no trailing delimiter (rows are split
    // on '}'), so fall back to the end of the fragment.
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim().trim_matches('"'))
}

/// Parses an artifact produced by [`baseline_json`]. Not a general JSON
/// parser — exactly the flat schema this module emits, which is all the
/// CI gate needs (and keeps the workspace free of a serde dependency).
pub fn parse_baseline_json(s: &str) -> Result<Vec<BaselineRow>, String> {
    let schema = field(s, "schema")?;
    if schema != BASELINE_SCHEMA {
        return Err(format!("schema {schema:?}, expected {BASELINE_SCHEMA:?}"));
    }
    let rows_start = s.find("\"rows\"").ok_or("missing rows array")?;
    let body = &s[rows_start..];
    let open = body.find('[').ok_or("missing rows [")?;
    let close = body.rfind(']').ok_or("missing rows ]")?;
    let mut rows = Vec::new();
    for obj in body[open + 1..close].split('}') {
        let obj = obj.trim().trim_start_matches(',').trim();
        if obj.is_empty() {
            continue;
        }
        let obj = obj.trim_start_matches('{');
        let num = |key: &str| -> Result<f64, String> {
            field(obj, key)?.parse::<f64>().map_err(|e| format!("bad {key}: {e}"))
        };
        rows.push(BaselineRow {
            kernel: field(obj, "kernel")?.to_string(),
            atoms: num("atoms")? as usize,
            threads: num("threads")? as usize,
            ns_per_atom: num("ns_per_atom")?,
            speedup_vs_serial: num("speedup_vs_serial")?,
        });
    }
    Ok(rows)
}

/// The CI schema gate: rows must be non-empty, cover the three kernels,
/// carry positive finite timings, and every `(kernel, atoms)` sweep in
/// the artifact must include a `threads = 1` row reporting a speedup of
/// ~1 against itself (≥ 0.9 catches an emitter whose serial baseline and
/// serial measurement drifted apart).
pub fn validate_baseline(rows: &[BaselineRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("baseline has no rows".into());
    }
    for kernel in ["bonds", "csym", "cna"] {
        if !rows.iter().any(|r| r.kernel == kernel) {
            return Err(format!("kernel {kernel:?} has no rows"));
        }
    }
    for r in rows {
        let serial = rows
            .iter()
            .find(|s| s.kernel == r.kernel && s.atoms == r.atoms && s.threads == 1)
            .ok_or_else(|| {
                format!("kernel {:?} at {} atoms has no threads=1 row", r.kernel, r.atoms)
            })?;
        if !(serial.speedup_vs_serial >= 0.9 && serial.speedup_vs_serial <= 1.1) {
            return Err(format!(
                "kernel {:?} at {} atoms: serial speedup vs itself is {} (expected ~1.0)",
                r.kernel, r.atoms, serial.speedup_vs_serial
            ));
        }
    }
    for r in rows {
        if !(r.ns_per_atom.is_finite() && r.ns_per_atom > 0.0) {
            return Err(format!("row {r:?}: non-positive ns_per_atom"));
        }
        if !(r.speedup_vs_serial.is_finite() && r.speedup_vs_serial > 0.0) {
            return Err(format!("row {r:?}: non-positive speedup"));
        }
        if r.atoms == 0 || r.threads == 0 {
            return Err(format!("row {r:?}: zero atoms or threads"));
        }
    }
    Ok(())
}

/// The serial-vs-parallel kernel table the `figures kernels` job prints
/// (and EXPERIMENTS.md quotes).
pub fn kernel_table(rows: &[BaselineRow]) -> Table {
    Table {
        title: "Kernel baseline on crack-detection snapshots".into(),
        header: vec![
            "kernel".into(),
            "atoms".into(),
            "threads".into(),
            "ns/atom".into(),
            "speedup_vs_serial".into(),
        ],
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    r.kernel.clone(),
                    r.atoms.to_string(),
                    r.threads.to_string(),
                    format!("{:.1}", r.ns_per_atom),
                    format!("{:.2}x", r.speedup_vs_serial),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<BaselineRow> {
        ["bonds", "csym", "cna"]
            .iter()
            .flat_map(|k| {
                [1usize, 2].into_iter().map(|t| BaselineRow {
                    kernel: k.to_string(),
                    atoms: 500,
                    threads: t,
                    ns_per_atom: 100.0 / t as f64,
                    speedup_vs_serial: t as f64,
                })
            })
            .collect()
    }

    #[test]
    fn json_round_trips_and_validates() {
        let rows = sample_rows();
        let json = baseline_json(&rows);
        let back = parse_baseline_json(&json).expect("parses");
        assert_eq!(back.len(), rows.len());
        assert_eq!(back[0].kernel, "bonds");
        assert_eq!(back[0].threads, 1);
        assert!((back[0].ns_per_atom - 100.0).abs() < 1e-9);
        validate_baseline(&back).expect("valid");
    }

    #[test]
    fn validation_rejects_bad_artifacts() {
        assert!(validate_baseline(&[]).is_err());
        let mut rows = sample_rows();
        rows.retain(|r| r.kernel != "cna");
        assert!(validate_baseline(&rows).unwrap_err().contains("cna"));
        let mut rows = sample_rows();
        rows[0].speedup_vs_serial = 0.5; // serial row drifted from itself
        assert!(validate_baseline(&rows).is_err());
        assert!(parse_baseline_json("{\"schema\": \"other/v9\", \"rows\": []}").is_err());
    }

    #[test]
    fn measured_baseline_on_tiny_snapshot_is_valid() {
        let rows = kernel_baseline(3, &[1, 2], 1);
        validate_baseline(&rows).expect("measured rows validate");
        assert_eq!(rows.len(), 6);
        let table = kernel_table(&rows);
        assert_eq!(table.rows.len(), 6);
        assert!(table.header.contains(&"atoms".to_string()));
        assert_eq!(table.rows[0][1], "108");
    }

    #[test]
    fn multi_size_baseline_concatenates_per_size_sweeps() {
        let rows = kernel_baseline_multi(&[2, 3], &[1], 1);
        validate_baseline(&rows).expect("multi-size rows validate");
        assert_eq!(rows.len(), 6);
        let sizes: Vec<usize> = rows.iter().map(|r| r.atoms).collect();
        assert_eq!(sizes, vec![32, 32, 32, 108, 108, 108]);
    }
}
