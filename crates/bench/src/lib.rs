//! Shared harness code for the figure generators and Criterion benches.
//!
//! Each public `*_rows` function computes the data behind one table or
//! figure of the paper and returns it as printable rows, so the `figures`
//! binary, the Criterion benches, and the integration tests all consume
//! the same implementation.

pub mod baseline;
pub mod events;

use d2t::{run_transaction, BroadcastShape, FaultPlan, TxnConfig};
use datatap::TransportCosts;
use iocontainers::protocol::{run_decrease, run_increase, ProtocolLayout};
use iocontainers::{run_pipeline, Action, ExperimentConfig, PipelineRun};
use sim_core::{Sim, SimDuration};
use simnet::{LaunchModel, Network, NetworkConfig, NodeId};

/// A labeled table: header plus rows of cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (printed above the data).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("# {}\n", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

fn ms(d: SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn us(d: SimDuration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Table I: SmartPointer analysis-action characteristics, generated from
/// the live component metadata.
pub fn table1() -> Table {
    let rows = smartpointer::table1()
        .into_iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.complexity.to_string(),
                c.models.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(", "),
                if c.dynamic_branching { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    Table {
        title: "Table I: Characteristics for SmartPointer Analysis Actions".into(),
        header: vec!["Component".into(), "Complexity".into(), "Compute Model".into(), "Dynamic Branching".into()],
        rows,
    }
}

/// Table II: weak-scaling experiment data sizes.
pub fn table2() -> Table {
    let rows = mdsim::TABLE2
        .iter()
        .map(|&(nodes, atoms)| {
            let mib = mdsim::output_bytes(atoms) as f64 / (1024.0 * 1024.0);
            vec![nodes.to_string(), atoms.to_string(), format!("{mib:.1} MiB")]
        })
        .collect();
    Table {
        title: "Table II: Experiment Data Sizes (per output step)".into(),
        header: vec!["Node Count".into(), "Atoms".into(), "Data size".into()],
        rows,
    }
}

/// The replica-count sweep used by Figs. 4 and 5.
pub const RESIZE_SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Fig. 4: time to increase container size, split into the dominant
/// intra-container metadata exchange and the negligible manager messages.
/// The `aprun` launch cost is reported in its own column, factored out of
/// the totals exactly as the paper does.
pub fn fig4() -> Table {
    let costs = TransportCosts::default();
    let mut rows = Vec::new();
    for &k in &RESIZE_SWEEP {
        let mut sim = Sim::new(4);
        let net = Network::new(NetworkConfig::portals_xt4());
        let layout = ProtocolLayout::microbench(8, 4);
        let new: Vec<NodeId> = (1000..1000 + k).map(NodeId).collect();
        let r = run_increase(&mut sim, &net, &layout, &new, &costs, LaunchModel::Aprun);
        rows.push(vec![
            k.to_string(),
            ms(r.total),
            ms(r.intra_container),
            us(r.manager_msgs),
            format!("{:.1}", r.launch.as_secs_f64()),
        ]);
    }
    Table {
        title: "Fig. 4: Time to Increase Container Size (8 upstream writers)".into(),
        header: vec![
            "replicas_added".into(),
            "total_ms".into(),
            "intra_container_ms".into(),
            "manager_msgs_us".into(),
            "aprun_s (factored out)".into(),
        ],
        rows,
    }
}

/// Fig. 5: time to decrease container size; dominated by waiting for the
/// upstream DataTap writers to pause and drain.
pub fn fig5() -> Table {
    let costs = TransportCosts::default();
    // One 67 MB output step buffered across 8 writers at decrease time.
    let queued_per_writer = mdsim::output_bytes(mdsim::atoms_for_nodes(256)) / 8;
    let mut rows = Vec::new();
    for &k in &RESIZE_SWEEP {
        let mut sim = Sim::new(5);
        let net = Network::new(NetworkConfig::portals_xt4());
        let layout = ProtocolLayout::microbench(8, 32);
        let victims: Vec<NodeId> = layout.replicas[..k as usize].to_vec();
        let r = run_decrease(
            &mut sim,
            &net,
            &layout,
            &victims,
            &costs,
            queued_per_writer,
            1_600_000_000,
        );
        rows.push(vec![
            k.to_string(),
            ms(r.total),
            ms(r.pause_wait),
            us(r.intra_container),
            us(r.manager_msgs),
        ]);
    }
    Table {
        title: "Fig. 5: Time to Decrease Container Size (8 writers, one buffered step)".into(),
        header: vec![
            "replicas_removed".into(),
            "total_ms".into(),
            "writer_pause_ms".into(),
            "teardown_us".into(),
            "manager_msgs_us".into(),
        ],
        rows,
    }
}

/// The writer:reader core ratios of Fig. 6.
pub const TXN_SWEEP: [(u32, u32); 7] =
    [(64, 4), (128, 4), (256, 4), (512, 4), (1024, 8), (2048, 8), (4096, 16)];

/// Fig. 6: D2T transaction completion time vs. writer:reader core ratio.
pub fn fig6() -> Table {
    let mut rows = Vec::new();
    for &(writers, readers) in &TXN_SWEEP {
        let run = |broadcast| {
            let mut sim = Sim::new(6);
            let net = Network::new(NetworkConfig::qdr_torus((18, 18, 18)));
            let cfg = TxnConfig { writers, readers, broadcast, ..TxnConfig::default() };
            run_transaction(&mut sim, &net, &cfg, &FaultPlan::default())
        };
        let tree = run(BroadcastShape::Tree { fanout: 8 });
        let flat = run(BroadcastShape::Flat);
        rows.push(vec![
            format!("{writers}:{readers}"),
            ms(tree.duration),
            ms(flat.duration),
            tree.messages.to_string(),
        ]);
    }
    Table {
        title: "Fig. 6: Resilience (D2T) Protocol Overhead vs writer:reader ratio".into(),
        header: vec![
            "writers:readers".into(),
            "txn_time_ms (tree)".into(),
            "txn_time_ms (flat)".into(),
            "messages".into(),
        ],
        rows,
    }
}

/// Renders a pipeline run's per-container latency samples and management
/// actions (the content of Figs. 7–9).
pub fn pipeline_figure(title: &str, run: &PipelineRun) -> Table {
    let mut rows = Vec::new();
    for id in run.log.containers() {
        let name = run.log.name_of(id);
        if let Some(series) = run.log.latency_series(id) {
            for &(t, v) in series.points() {
                rows.push(vec![
                    format!("{:.1}", t.as_secs_f64()),
                    name.to_string(),
                    format!("{v:.2}"),
                ]);
            }
        }
    }
    rows.sort_by(|a, b| {
        a[0].parse::<f64>().unwrap().partial_cmp(&b[0].parse::<f64>().unwrap()).unwrap()
    });
    for (t, action) in run.log.actions() {
        rows.push(vec![
            format!("{:.1}", t.as_secs_f64()),
            "ACTION".into(),
            describe_action(run, action),
        ]);
    }
    Table {
        title: title.into(),
        header: vec!["t_s".into(), "container".into(), "latency_s / action".into()],
        rows,
    }
}

fn describe_action(run: &PipelineRun, action: &Action) -> String {
    match action {
        Action::Increase { container, added, source } => {
            let src = match source {
                iocontainers::ResourceSource::Spare => "spare".to_string(),
                iocontainers::ResourceSource::StolenFrom(d) => {
                    format!("stolen from {}", run.log.name_of(*d))
                }
                iocontainers::ResourceSource::StolenFromTenant { tenant, container } => {
                    format!("stolen from tenant {tenant}#{}", container.0)
                }
            };
            format!("increase {} by {added} ({src})", run.log.name_of(*container))
        }
        Action::Decrease { container, removed } => {
            format!("decrease {} by {removed}", run.log.name_of(*container))
        }
        Action::Offline { containers } => format!(
            "offline: {}",
            containers.iter().map(|c| run.log.name_of(*c)).collect::<Vec<_>>().join(", ")
        ),
        Action::Activate { container } => format!("activate {}", run.log.name_of(*container)),
        Action::Blocked { container } => {
            format!("PIPELINE BLOCKED at {}", run.log.name_of(*container))
        }
        Action::TradeAborted { donor, recipient } => format!(
            "trade aborted: {} -> {} (rolled back)",
            run.log.name_of(*donor),
            run.log.name_of(*recipient)
        ),
        Action::ContainerFailed { container, missed } => format!(
            "FAILED {} ({missed} heartbeats missed)",
            run.log.name_of(*container)
        ),
        Action::Restarted { container, attempt, added } => format!(
            "restarted {} (attempt {attempt}, +{added} nodes)",
            run.log.name_of(*container)
        ),
    }
}

/// Fig. 7 data: events for 256 simulation + 13 staging nodes.
pub fn fig7() -> Table {
    pipeline_figure(
        "Fig. 7: Events emitted for 256 simulation and 13 staging nodes",
        &run_pipeline(ExperimentConfig::fig7()),
    )
}

/// Fig. 8 data: events for 512 simulation + 24 staging nodes.
pub fn fig8() -> Table {
    pipeline_figure(
        "Fig. 8: Events emitted for 512 simulation and 24 staging nodes",
        &run_pipeline(ExperimentConfig::fig8()),
    )
}

/// Fig. 9 data: events for 1024 simulation + 24 staging nodes.
pub fn fig9() -> Table {
    pipeline_figure(
        "Fig. 9: Events emitted for 1024 simulation and 24 staging nodes",
        &run_pipeline(ExperimentConfig::fig9()),
    )
}

/// Fig. 10 data: end-to-end latency for the Fig. 9 configuration.
pub fn fig10() -> Table {
    let run = run_pipeline(ExperimentConfig::fig10());
    let mut rows: Vec<Vec<String>> = run
        .log
        .e2e_series()
        .points()
        .iter()
        .map(|&(t, v)| vec![format!("{:.1}", t.as_secs_f64()), format!("{v:.2}")])
        .collect();
    for (t, action) in run.log.actions() {
        rows.push(vec![
            format!("{:.1}", t.as_secs_f64()),
            format!("ACTION: {}", describe_action(&run, action)),
        ]);
    }
    rows.sort_by(|a, b| {
        a[0].parse::<f64>().unwrap().partial_cmp(&b[0].parse::<f64>().unwrap()).unwrap()
    });
    Table {
        title: "Fig. 10: End-to-End Latency (1024 simulation, 24 staging nodes)".into(),
        header: vec!["t_s".into(), "end_to_end_s".into()],
        rows,
    }
}

/// Sensitivity sweep: how the 512-node scenario's outcome changes with
/// the staging-area size — the "sizing" decision containers free users
/// from making by hand.
pub fn sweep_staging() -> Table {
    let mut rows = Vec::new();
    // (staging size, initial helper/bonds/csym allocation): allocations
    // shrink with the area; whatever is left over starts spare.
    let points: [(u32, (u32, u32, u32)); 6] = [
        (8, (2, 2, 4)),
        (10, (2, 2, 6)),
        (14, (6, 2, 6)),
        (20, (12, 2, 6)),
        (24, (12, 2, 6)),
        (32, (12, 2, 6)),
    ];
    for (staging, (helper, bonds, csym)) in points {
        let base = ExperimentConfig::fig8();
        let cna = base.initial.cna;
        let cfg = base
            .to_builder()
            .staging_nodes(staging)
            .initial(smartpointer::Table1Names { helper, bonds, csym, cna })
            .build()
            .expect("sweep allocations fit their staging area");
        let run = run_pipeline(cfg);
        let increases: u32 = run
            .log
            .actions()
            .iter()
            .filter_map(|(_, a)| match a {
                Action::Increase { added, .. } => Some(*added),
                _ => None,
            })
            .sum();
        let offline = if run.offline.is_empty() { "-".to_string() } else { run.offline.join("+") };
        let blocked = run.blocked_at.map(|t| format!("{:.0}s", t.as_secs_f64()));
        rows.push(vec![
            staging.to_string(),
            increases.to_string(),
            offline,
            blocked.unwrap_or_else(|| "-".into()),
            format!("{:.1}", run.log.e2e_series().max_value().unwrap_or(0.0)),
        ]);
    }
    Table {
        title: "Sweep: staging-area size vs outcome (512 simulation nodes)".into(),
        header: vec![
            "staging_nodes".into(),
            "nodes_added".into(),
            "offline".into(),
            "blocked_at".into(),
            "e2e_peak_s".into(),
        ],
        rows,
    }
}

/// Sensitivity sweep: output cadence vs. outcome at the Fig. 8 scale.
pub fn sweep_cadence() -> Table {
    let mut rows = Vec::new();
    for cadence_s in [8u64, 10, 15, 20, 30, 45] {
        let cadence = SimDuration::from_secs(cadence_s);
        let cfg = ExperimentConfig::fig8()
            .to_builder()
            .cadence(cadence)
            .sla(iocontainers::Sla::from_cadence(cadence))
            .build()
            .expect("cadence sweep configs are valid");
        let run = run_pipeline(cfg);
        let increases: u32 = run
            .log
            .actions()
            .iter()
            .filter_map(|(_, a)| match a {
                Action::Increase { added, .. } => Some(*added),
                _ => None,
            })
            .sum();
        let offline = if run.offline.is_empty() { "-".to_string() } else { run.offline.join("+") };
        rows.push(vec![
            cadence_s.to_string(),
            increases.to_string(),
            offline,
            if run.blocked_at.is_some() { "yes" } else { "no" }.to_string(),
        ]);
    }
    Table {
        title: "Sweep: output cadence vs outcome (512 simulation nodes, 24 staging)".into(),
        header: vec![
            "cadence_s".into(),
            "nodes_added".into(),
            "offline".into(),
            "blocked".into(),
        ],
        rows,
    }
}

/// Runs the Fig. 7 scenario with telemetry fully on and renders the trace
/// artifacts: a Perfetto/Chrome-trace JSON and the gauge time series as
/// CSV. The `figures trace` job writes these to `target/traces/`.
pub fn trace_artifacts() -> (String, String) {
    let cfg = ExperimentConfig::builder_from(ExperimentConfig::fig7())
        .telemetry(simtel::TelemetryConfig::all())
        .build()
        .expect("the Fig. 7 preset is valid");
    let run = run_pipeline(cfg);
    let snap = run.telemetry.snapshot();
    (simtel::export::chrome_trace_json(&snap), simtel::export::series_csv(&snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_nonempty() {
        for t in [table1(), table2(), fig4(), fig5(), fig6()] {
            assert!(!t.rows.is_empty(), "{} has no rows", t.title);
            let text = t.render();
            assert!(text.lines().count() >= t.rows.len() + 2);
        }
    }

    #[test]
    fn fig4_total_grows_monotonically() {
        let t = fig4();
        let totals: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in totals.windows(2) {
            assert!(w[1] > w[0], "fig4 totals must grow: {totals:?}");
        }
    }

    #[test]
    fn fig5_pause_dominates_everywhere() {
        let t = fig5();
        for row in &t.rows {
            let total: f64 = row[1].parse().unwrap();
            let pause: f64 = row[2].parse().unwrap();
            assert!(pause / total > 0.8, "pause must dominate: {row:?}");
        }
    }

    #[test]
    fn fig6_scales_sublinearly() {
        let t = fig6();
        let first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        // 64 -> 4096 writers is 64x; time must grow far less than 64x.
        assert!(last / first < 16.0, "fig6 ratio {}", last / first);
    }

    #[test]
    fn sweeps_show_the_expected_regimes() {
        let staging = sweep_staging();
        // The smallest staging area cannot save Bonds (offline or blocked);
        // the largest absorbs the load.
        let first = &staging.rows[0];
        assert!(first[2] != "-" || first[3] != "-", "18 nodes must degrade: {first:?}");
        let last = staging.rows.last().unwrap();
        assert_eq!(last[2], "-", "32 nodes must suffice: {last:?}");

        let cadence = sweep_cadence();
        // Faster cadences demand more nodes; the slowest needs none.
        let fast: u32 = cadence.rows[0][1].parse().unwrap();
        let slow: u32 = cadence.rows.last().unwrap()[1].parse().unwrap();
        assert!(fast > slow, "fast cadence must demand more nodes ({fast} vs {slow})");
        assert_eq!(slow, 0);
    }

    #[test]
    fn fig10_contains_offline_action() {
        let t = fig10();
        assert!(t.rows.iter().any(|r| r[1].contains("offline")), "no offline action in fig10");
    }

    #[test]
    fn trace_artifacts_are_nonempty() {
        let (json, csv) = trace_artifacts();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("Bonds"), "container track missing from trace");
        assert!(csv.lines().count() > 1, "series CSV must have data rows");
    }
}
