//! Benchmarks of the real analytics kernels (Table I's components) and
//! the MD workload generator, at laptop-scale atom counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mdsim::{MdConfig, MdEngine};
use smartpointer::{split_snapshot, AggregationTree, Bonds, CSym, Cna};

fn md_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdsim_step");
    for cells in [4u32, 6, 8] {
        let cfg = MdConfig { cells: (cells, cells, cells), ..MdConfig::default() };
        let atoms = cfg.atom_count();
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &cfg, |b, cfg| {
            let mut md = MdEngine::new(cfg.clone());
            b.iter(|| {
                md.step();
                black_box(md.md_step())
            });
        });
    }
    group.finish();
}

fn md_step_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdsim_step_threads");
    for threads in [1usize, 2, 4] {
        let cfg = MdConfig { cells: (8, 8, 8), threads, ..MdConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            let mut md = MdEngine::new(cfg.clone());
            b.iter(|| {
                md.step();
                black_box(md.md_step())
            });
        });
    }
    group.finish();
}

fn analytics(c: &mut Criterion) {
    let snap = MdEngine::new(MdConfig::default()).run_epoch(2);
    let bonds_out = Bonds::default().compute(&snap);

    let mut group = c.benchmark_group("smartpointer");
    group.bench_function("helper_aggregate_8", |b| {
        let tree = AggregationTree::new(2);
        b.iter(|| black_box(tree.aggregate(split_snapshot(&snap, 8))));
    });
    group.bench_function("bonds_cell_list", |b| {
        let k = Bonds::default();
        b.iter(|| black_box(k.compute(&snap)));
    });
    group.bench_function("bonds_n2_paper_kernel", |b| {
        let k = Bonds::default();
        b.iter(|| black_box(k.compute_n2(&snap)));
    });
    group.bench_function("csym", |b| {
        let k = CSym::default();
        b.iter(|| black_box(k.compute(&bonds_out)));
    });
    group.bench_function("cna", |b| {
        b.iter(|| black_box(Cna::default().compute(&bonds_out)));
    });
    group.finish();
}

/// The simpar thread sweep over the three parallel kernels, on the
/// crack-detection snapshot (defect-heavy, like the branch scenario).
fn analytics_threads(c: &mut Criterion) {
    let snap = bench::baseline::crack_snapshot(6);
    let bonds_out = Bonds::default().compute(&snap);

    let mut group = c.benchmark_group("smartpointer_threads");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("bonds", threads), &threads, |b, &threads| {
            let k = Bonds { threads, ..Bonds::default() };
            b.iter(|| black_box(k.compute(&snap)));
        });
        group.bench_with_input(BenchmarkId::new("csym", threads), &threads, |b, &threads| {
            let k = CSym { threads, ..CSym::default() };
            b.iter(|| black_box(k.compute(&bonds_out)));
        });
        group.bench_with_input(BenchmarkId::new("cna", threads), &threads, |b, &threads| {
            let k = Cna { threads };
            b.iter(|| black_box(k.compute(&bonds_out)));
        });
    }
    group.finish();
}

/// Table II's workload generator: producing one output step (epoch + dump)
/// at increasing crystal sizes, verifying the size accounting on the way.
fn table2_datasizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_output_step");
    for cells in [4u32, 6, 8] {
        let cfg = MdConfig { cells: (cells, cells, cells), ..MdConfig::default() };
        let atoms = cfg.atom_count() as u64;
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &cfg, |b, cfg| {
            let mut md = MdEngine::new(cfg.clone());
            b.iter(|| {
                let snap = md.run_epoch(1);
                assert_eq!(snap.staged_bytes(), atoms * mdsim::OUTPUT_BYTES_PER_ATOM);
                black_box(snap)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = md_step, md_step_parallel, analytics, analytics_threads, table2_datasizes
}
criterion_main!(benches);
