//! Benchmarks regenerating the managed-pipeline experiments (Figs. 7–10):
//! each iteration simulates the full weak-scaling scenario, including
//! monitoring and management. The simulated series are printed once per
//! run via the shared `bench` library.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iocontainers::{run_pipeline, ExperimentConfig, PolicyConfig};

fn fig7(c: &mut Criterion) {
    println!("{}", bench::fig7().render());
    c.bench_function("fig7_managed_256x13", |b| {
        b.iter(|| black_box(run_pipeline(ExperimentConfig::fig7())))
    });
}

fn fig8(c: &mut Criterion) {
    println!("{}", bench::fig8().render());
    c.bench_function("fig8_managed_512x24", |b| {
        b.iter(|| black_box(run_pipeline(ExperimentConfig::fig8())))
    });
}

fn fig9(c: &mut Criterion) {
    println!("{}", bench::fig9().render());
    c.bench_function("fig9_managed_1024x24", |b| {
        b.iter(|| black_box(run_pipeline(ExperimentConfig::fig9())))
    });
}

fn fig10(c: &mut Criterion) {
    println!("{}", bench::fig10().render());
    c.bench_function("fig10_e2e_1024x24", |b| {
        b.iter(|| black_box(run_pipeline(ExperimentConfig::fig10())))
    });
}

fn unmanaged_baseline(c: &mut Criterion) {
    c.bench_function("fig9_unmanaged_baseline", |b| {
        b.iter(|| {
            let mut cfg = ExperimentConfig::fig9();
            cfg.policy = PolicyConfig { enabled: false, ..PolicyConfig::default() };
            let run = run_pipeline(cfg);
            assert!(run.blocked_at.is_some(), "unmanaged run must block");
            black_box(run)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig7, fig8, fig9, fig10, unmanaged_baseline
}
criterion_main!(benches);
