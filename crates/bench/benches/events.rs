//! Criterion group over the event-kernel workloads (interactive
//! counterpart of the committed `BENCH_events.json` artifact — same
//! workloads, same sizes at the small end).

use bench::events::{run_cancel_heavy, run_pipeline_replay, run_schedule_heavy};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("events");
    for n in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("schedule_heavy", n), &n, |b, &n| {
            b.iter(|| black_box(run_schedule_heavy(n)))
        });
        group.bench_with_input(BenchmarkId::new("cancel_heavy", n), &n, |b, &n| {
            b.iter(|| black_box(run_cancel_heavy(n)))
        });
        group.bench_with_input(BenchmarkId::new("pipeline_replay", n), &n, |b, &n| {
            b.iter(|| black_box(run_pipeline_replay(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
