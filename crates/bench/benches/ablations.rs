//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **async vs. sync data movement** — the paper cites up-to-2× I/O
//!    gains from asynchronous staging;
//! 2. **scheduled vs. greedy pulls** — DataStager's server-directed I/O
//!    bounds the interconnect perturbation seen by control/monitoring
//!    traffic;
//! 3. **writer pause (strong consistency) vs. lazy decrease** — the
//!    Fig. 7 transient motivates weaker consistency, but lazy decrease
//!    puts buffered steps at risk;
//! 4. **round-robin replica growth vs. MPI-style relaunch** — why the
//!    compute model determines resize cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use datatap::TransportCosts;
use iocontainers::protocol::{estimate, run_decrease, run_increase, ProtocolLayout};
use iocontainers::{run_pipeline, ExperimentConfig, MonitorConfig};
use sim_core::{shared, Sim, SimDuration, SimTime};
use simnet::{LaunchModel, Network, NetworkConfig, NodeId};

const STEP_BYTES: u64 = 67_000_000; // one 256-node output step
const BW: u64 = 1_600_000_000;

/// Simulated application run: `steps` outputs with `compute` of work each.
/// Sync mode blocks the app for the transfer; async buffers and overlaps.
fn app_run(sync: bool, steps: u32, compute: SimDuration) -> SimDuration {
    let mut sim = Sim::new(1);
    let net = Network::new(NetworkConfig::portals_xt4());
    let app = NodeId(0);
    let stage = NodeId(1);
    let finished = shared(SimTime::ZERO);

    #[allow(clippy::too_many_arguments)] // recursive event closure: the args are the loop state
    fn do_step(
        sim: &mut Sim,
        net: &simnet::Net,
        app: NodeId,
        stage: NodeId,
        remaining: u32,
        sync: bool,
        compute: SimDuration,
        finished: sim_core::Shared<SimTime>,
    ) {
        if remaining == 0 {
            *finished.borrow_mut() = sim.now();
            return;
        }
        let net2 = net.clone();
        sim.schedule_in(compute, move |sim| {
            if sync {
                let net3 = net2.clone();
                Network::transfer(&net2, sim, app, stage, STEP_BYTES, move |sim| {
                    do_step(sim, &net3, app, stage, remaining - 1, sync, compute, finished);
                });
            } else {
                // Asynchronous staging: the transfer proceeds in the
                // background; the app continues immediately.
                Network::transfer(&net2, sim, app, stage, STEP_BYTES, |_| {});
                do_step(sim, &net2, app, stage, remaining - 1, sync, compute, finished);
            }
        });
    }

    do_step(&mut sim, &net, app, stage, steps, sync, compute, finished.clone());
    sim.run();
    let t = *finished.borrow();
    t.since(SimTime::ZERO)
}

fn ablation_async(c: &mut Criterion) {
    // Transfer time ≈ 42 ms at 1.6 GB/s; pick compute of the same order so
    // overlap matters — the regime where the paper's 2x applies.
    let compute = SimDuration::from_millis(45);
    let sync_t = app_run(true, 50, compute);
    let async_t = app_run(false, 50, compute);
    println!("# Ablation: async vs sync staging (50 steps, 67 MB each)");
    println!("sync_total_s   {:.3}", sync_t.as_secs_f64());
    println!("async_total_s  {:.3}", async_t.as_secs_f64());
    println!("speedup        {:.2}x\n", sync_t / async_t);
    assert!(sync_t / async_t > 1.5, "async staging must approach the paper's 2x");

    c.bench_function("ablation_async_sim", |b| {
        b.iter(|| black_box(app_run(false, 50, compute)))
    });
}

/// Measures the latency of a monitoring control message that lands at a
/// staging node while `bulk` transfers are being pulled into it.
fn control_latency_during_pulls(in_flight_cap: Option<usize>) -> SimDuration {
    let mut sim = Sim::new(2);
    let net = Network::new(NetworkConfig::portals_xt4());
    let reader = NodeId(0);
    let bulk = 8u32;

    match in_flight_cap {
        None => {
            // Greedy: every announced step is pulled immediately.
            for w in 1..=bulk {
                Network::rdma_get(&net, &mut sim, reader, NodeId(w), STEP_BYTES, |_| {});
            }
        }
        Some(cap) => {
            // Server-directed: at most `cap` pulls outstanding.
            fn pull_next(
                sim: &mut Sim,
                net: &simnet::Net,
                reader: NodeId,
                next: u32,
                last: u32,
            ) {
                if next > last {
                    return;
                }
                let net2 = net.clone();
                Network::rdma_get(net, sim, reader, NodeId(next), STEP_BYTES, move |sim| {
                    pull_next(sim, &net2, reader, next + 1, last);
                });
            }
            for i in 0..cap.min(bulk as usize) as u32 {
                // Issue the first `cap` chains; each chain continues on
                // completion.
                let stride = bulk.div_ceil(cap as u32);
                let first = 1 + i * stride;
                let last = (first + stride - 1).min(bulk);
                if first <= bulk {
                    pull_next(&mut sim, &net, reader, first, last);
                }
            }
        }
    }

    // A monitoring message arrives at the reader shortly after the burst
    // begins.
    let delivered = shared(SimTime::ZERO);
    let d2 = delivered.clone();
    let net2 = net.clone();
    sim.schedule_in(SimDuration::from_millis(1), move |sim| {
        let sent = sim.now();
        let d3 = d2.clone();
        Network::send_control(&net2, sim, NodeId(99), NodeId(0), move |sim| {
            *d3.borrow_mut() = sim.now();
            let _ = sent;
        });
    });
    sim.run();
    let at = *delivered.borrow();
    at.since(SimTime::ZERO + SimDuration::from_millis(1))
}

fn ablation_scheduling(c: &mut Criterion) {
    let greedy = control_latency_during_pulls(None);
    let scheduled = control_latency_during_pulls(Some(1));
    println!("# Ablation: scheduled vs greedy pulls (control-message latency during 8-step burst)");
    println!("greedy_control_latency_ms     {:.3}", greedy.as_secs_f64() * 1e3);
    println!("scheduled_control_latency_ms  {:.3}", scheduled.as_secs_f64() * 1e3);
    println!("improvement                   {:.1}x\n", greedy / scheduled);
    assert!(
        greedy > scheduled,
        "scheduling must bound control-plane perturbation: {greedy} vs {scheduled}"
    );

    c.bench_function("ablation_scheduling_sim", |b| {
        b.iter(|| black_box(control_latency_during_pulls(Some(1))))
    });
}

fn ablation_pause(c: &mut Criterion) {
    let costs = TransportCosts::default();
    let run = |queued: u64| {
        let mut sim = Sim::new(3);
        let net = Network::new(NetworkConfig::portals_xt4());
        let layout = ProtocolLayout::microbench(8, 16);
        let victims: Vec<NodeId> = layout.replicas[..4].to_vec();
        run_decrease(&mut sim, &net, &layout, &victims, &costs, queued, BW)
    };
    let strong = run(STEP_BYTES / 8);
    let lazy = run(0);
    println!("# Ablation: writer pause (strong consistency) vs lazy decrease");
    println!("strong_total_ms  {:.3}  (drains one buffered step per writer)", strong.total.as_secs_f64() * 1e3);
    println!("lazy_total_ms    {:.3}  (buffered steps at risk of loss)", lazy.total.as_secs_f64() * 1e3);
    println!("pause_cost_ratio {:.1}x\n", strong.total / lazy.total);
    assert!(strong.total > lazy.total * 2, "the pause must be the dominant cost");

    c.bench_function("ablation_pause_sim", |b| b.iter(|| black_box(run(STEP_BYTES / 8))));
}

fn ablation_scaling(c: &mut Criterion) {
    let costs = TransportCosts::default();
    println!("# Ablation: round-robin replica growth vs MPI-style relaunch (grow by k)");
    println!("{:>3}  {:>16}  {:>18}", "k", "rr_growth_ms", "mpi_relaunch_s");
    for k in [1u32, 4, 16] {
        // RR: the increase protocol only (EVPath-style runtimes launch
        // replicas without aprun).
        let mut sim = Sim::new(7);
        let net = Network::new(NetworkConfig::portals_xt4());
        let layout = ProtocolLayout::microbench(8, 4);
        let new: Vec<NodeId> = (1000..1000 + k).map(NodeId).collect();
        let rr = run_increase(&mut sim, &net, &layout, &new, &costs, LaunchModel::Instant);

        // MPI: complete teardown (pause + drain + teardown of all 4+k
        // ranks) plus a full aprun relaunch.
        let mut sim2 = Sim::new(7);
        let teardown = estimate::decrease(8, 4 + k, &costs, SimDuration::from_micros(10), 0, BW);
        let relaunch = LaunchModel::Aprun.sample(&mut sim2);
        let mpi_total = rr.total + teardown + relaunch;
        println!(
            "{:>3}  {:>16.3}  {:>18.1}",
            k,
            rr.total.as_secs_f64() * 1e3,
            mpi_total.as_secs_f64()
        );
        assert!(
            mpi_total > rr.total * 100,
            "relaunch-based growth must dwarf replica growth"
        );
    }
    println!();

    c.bench_function("ablation_scaling_sim", |b| {
        b.iter(|| {
            let mut sim = Sim::new(7);
            let net = Network::new(NetworkConfig::portals_xt4());
            let layout = ProtocolLayout::microbench(8, 4);
            let new: Vec<NodeId> = (1000..1016).map(NodeId).collect();
            black_box(run_increase(&mut sim, &net, &layout, &new, &costs, LaunchModel::Instant))
        })
    });
}

/// Monitoring frequency vs. perturbation: the paper's flexible monitoring
/// exists to let the sampling rate be tuned down when probes are costly.
fn ablation_monitoring(c: &mut Criterion) {
    let bonds_mean = |report_every: u64| {
        let mut cfg = ExperimentConfig::fig7();
        cfg.monitoring = MonitorConfig {
            report_every,
            per_sample_cost: SimDuration::from_secs(1),
            delivery_delay: SimDuration::from_micros(20),
        };
        cfg.steps = 20;
        let run = run_pipeline(cfg);
        let id = run
            .log
            .containers()
            .find(|&id| run.log.name_of(id) == "Bonds")
            .expect("bonds registered");
        let pts = run.log.latency_series(id).expect("series").points().to_vec();
        pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64
    };
    let every_step = bonds_mean(1);
    let every_8th = bonds_mean(8);
    println!("# Ablation: monitoring frequency (1 s probe cost)");
    println!("bonds_mean_latency_s (sample every step)  {every_step:.2}");
    println!("bonds_mean_latency_s (sample every 8th)   {every_8th:.2}
");
    assert!(every_step > every_8th, "heavy monitoring must perturb the bottleneck");

    c.bench_function("ablation_monitoring_sim", |b| b.iter(|| black_box(bonds_mean(8))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_async, ablation_scheduling, ablation_pause, ablation_scaling,
        ablation_monitoring
}
criterion_main!(benches);
