//! Benchmarks of the I/O substrates: the BP-lite codec, the DataTap staged
//! channel, and EVPath overlay dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use adios::{DataType, Dims, Group, StepData, Value};
use datatap::channel;
use evpath::{Action, Event, Overlay};

fn sample_step(elems: usize) -> (Group, StepData) {
    let mut g = Group::new("atoms");
    g.define_var("x", DataType::F64);
    let data: Vec<f64> = (0..elems).map(|i| i as f64).collect();
    let mut s = StepData::new(1);
    s.write(&g, "x", Value::from_f64(&data, Dims::local1d(elems as u64)).unwrap()).unwrap();
    (g, s)
}

fn bp_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_codec");
    for elems in [1_000usize, 100_000, 1_000_000] {
        let (_, step) = sample_step(elems);
        let bytes = (elems * 8) as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::new("encode", elems), &step, |b, step| {
            b.iter(|| black_box(adios::bp::encode("atoms", step)));
        });
        let blob = adios::bp::encode("atoms", &step);
        group.bench_with_input(BenchmarkId::new("decode", elems), &blob, |b, blob| {
            b.iter(|| black_box(adios::bp::decode(blob.clone()).unwrap()));
        });
    }
    group.finish();
}

fn datatap_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("datatap_channel");
    group.bench_function("write_pull_round_trip", |b| {
        let (w, r) = channel(64);
        b.iter(|| {
            w.try_write(StepData::new(0)).unwrap();
            black_box(r.try_pull().unwrap());
        });
    });
    group.bench_function("cross_thread_throughput_1k_steps", |b| {
        b.iter(|| {
            let (w, r) = channel(64);
            let producer = std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    w.write(StepData::new(i)).unwrap();
                }
            });
            let mut n = 0;
            while n < 1_000 {
                r.pull().unwrap();
                n += 1;
            }
            producer.join().unwrap();
            black_box(n)
        });
    });
    group.finish();
}

fn evpath_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("evpath");
    group.bench_function("submit_flush_1k_events", |b| {
        let ov = Overlay::new("bench");
        let sink = ov.add_stone(Action::Terminal(Box::new(|ev| {
            black_box(ev.id());
        })));
        let filter = ov.add_stone(Action::Filter {
            predicate: Box::new(|ev| *ev.expect::<u64>() % 2 == 0),
            target: sink,
        });
        b.iter(|| {
            for i in 0..1_000u64 {
                ov.submit(filter, Event::new(i));
            }
            ov.flush();
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bp_codec, datatap_channel, evpath_dispatch
}
criterion_main!(benches);
