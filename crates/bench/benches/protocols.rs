//! Benchmarks regenerating the protocol microbenchmarks: Fig. 4
//! (increase), Fig. 5 (decrease), and Fig. 6 (D2T transactions). The
//! benchmark time is the harness cost of simulating one operation; the
//! *simulated* operation times are printed once per run via the shared
//! `bench` library (the same rows `figures` prints).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use d2t::{run_transaction, FaultPlan, TxnConfig};
use datatap::TransportCosts;
use iocontainers::protocol::{run_decrease, run_increase, ProtocolLayout};
use sim_core::Sim;
use simnet::{LaunchModel, Network, NetworkConfig, NodeId};

fn fig4_increase(c: &mut Criterion) {
    println!("{}", bench::fig4().render());
    let mut group = c.benchmark_group("fig4_increase_protocol");
    for &k in &bench::RESIZE_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut sim = Sim::new(4);
                let net = Network::new(NetworkConfig::portals_xt4());
                let layout = ProtocolLayout::microbench(8, 4);
                let new: Vec<NodeId> = (1000..1000 + k).map(NodeId).collect();
                black_box(run_increase(
                    &mut sim,
                    &net,
                    &layout,
                    &new,
                    &TransportCosts::default(),
                    LaunchModel::Instant,
                ))
            });
        });
    }
    group.finish();
}

fn fig5_decrease(c: &mut Criterion) {
    println!("{}", bench::fig5().render());
    let mut group = c.benchmark_group("fig5_decrease_protocol");
    for &k in &bench::RESIZE_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut sim = Sim::new(5);
                let net = Network::new(NetworkConfig::portals_xt4());
                let layout = ProtocolLayout::microbench(8, 32);
                let victims: Vec<NodeId> = layout.replicas[..k as usize].to_vec();
                black_box(run_decrease(
                    &mut sim,
                    &net,
                    &layout,
                    &victims,
                    &TransportCosts::default(),
                    8_000_000,
                    1_600_000_000,
                ))
            });
        });
    }
    group.finish();
}

fn fig6_transactions(c: &mut Criterion) {
    println!("{}", bench::fig6().render());
    let mut group = c.benchmark_group("fig6_d2t_transaction");
    for &(writers, readers) in &bench::TXN_SWEEP {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{writers}x{readers}")),
            &(writers, readers),
            |b, &(writers, readers)| {
                b.iter(|| {
                    let mut sim = Sim::new(6);
                    let net = Network::new(NetworkConfig::qdr_torus((18, 18, 18)));
                    let cfg = TxnConfig { writers, readers, ..TxnConfig::default() };
                    black_box(run_transaction(&mut sim, &net, &cfg, &FaultPlan::default()))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig4_increase, fig5_decrease, fig6_transactions
}
criterion_main!(benches);
