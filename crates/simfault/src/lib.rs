//! Deterministic fault injection for the DES substrate.
//!
//! The paper's managers exist to keep the analytics pipeline live under
//! stress, but the original substrate could only *degrade by decision* —
//! nothing could crash a node, stall a container, or lose a message. This
//! crate supplies the missing failure model as data: a declarative
//! [`FaultPlan`] lists virtual-time-scheduled [`Fault`]s, and the
//! simulation layers interpret them through native hooks:
//!
//! - `simnet::Network` — node crashes enter the node-down set (consulted
//!   at send *and* delivery, so a message in flight to a node that dies is
//!   lost), NIC/link degradation folds bandwidth/latency factors into the
//!   effective wire time, and probabilistic message loss samples a seeded
//!   RNG installed as the network's loss sampler.
//! - `datatap` — a failed endpoint surfaces pulls as a typed error
//!   instead of a silent hang.
//! - `iocontainers` — a crashed or stalled container stops consuming its
//!   ingress queue; the recovery layer (heartbeats, restart-on-spare,
//!   offline fallback) reacts.
//!
//! # Determinism
//!
//! The whole layer is schedule-deterministic: the only randomness is a
//! [`LossSampler`] seeded from [`FaultPlan::seed`] and drawn exactly once
//! per send while a loss window is open, so the same seed and the same
//! plan yield an identical event trace. With an *empty* plan nothing is
//! scheduled, no RNG is constructed, and the trace is bit-identical to a
//! build without fault injection wired in. The seeded `StdRng` here is a
//! sanctioned determinism escape, recorded in the ROADMAP hazards list.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_core::{Sim, SimDuration};
use simnet::{Degradation, Net, NodeId};

/// One injectable failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The node halts: messages from it stop, messages to it (including
    /// those already in flight) are lost, and any container replica or
    /// spare hosted on it is gone for good.
    NodeCrash {
        /// Id of the node that crashes.
        node: u32,
    },
    /// The node's NIC/link degrades for an interval: its bandwidth is
    /// multiplied by `bandwidth_factor` (0.5 = half) and its latency by
    /// `latency_factor` (2.0 = double) for every transfer touching it.
    NodeDegrade {
        /// Id of the affected node.
        node: u32,
        /// Multiplier on effective bandwidth, in (0, 1].
        bandwidth_factor: f64,
        /// Multiplier on wire latency, >= 1.
        latency_factor: f64,
        /// How long the degradation lasts.
        lasts: SimDuration,
    },
    /// Messages are lost with the given probability (sampled per send from
    /// the plan's seeded RNG) for an interval.
    MessageLoss {
        /// Per-message drop probability in [0, 1].
        probability: f64,
        /// How long the loss window stays open.
        lasts: SimDuration,
    },
    /// The named container's local manager and replicas crash. Its queue
    /// stops draining, its heartbeats stop, and in-flight work is lost
    /// back to the queue; recovery restarts it on spares or falls back to
    /// offline staging.
    ContainerCrash {
        /// Container name as registered in the pipeline (e.g. "Bonds").
        container: &'static str,
    },
    /// The named container stops processing (but its local manager stays
    /// alive and keeps heartbeating) for an interval — a GC pause, an OS
    /// jitter storm, a wedged replica that recovers.
    ContainerStall {
        /// Container name as registered in the pipeline.
        container: &'static str,
        /// How long processing is stalled.
        lasts: SimDuration,
    },
}

/// A fault scheduled at a virtual-time offset from run start.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Virtual time offset from the start of the run.
    pub at: SimDuration,
    /// The fault injected at that time.
    pub fault: Fault,
}

/// A declarative, deterministic fault schedule.
///
/// Built with the chainable `crash_node` / `degrade_node` /
/// `lose_messages` / `crash_container` / `stall_container` methods; the
/// run interprets it once at startup. An empty plan injects nothing and
/// leaves the run bit-identical to one with no fault layer at all.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's loss-sampling RNG (the layer's only
    /// randomness; sanctioned escape, see crate docs).
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan: injects nothing.
    pub fn new() -> Self {
        FaultPlan { seed: 0x5EED_FA17, events: Vec::new() }
    }

    /// Replaces the loss-sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedules a node crash at `at`.
    pub fn crash_node(mut self, at: SimDuration, node: u32) -> Self {
        self.events.push(FaultEvent { at, fault: Fault::NodeCrash { node } });
        self
    }

    /// Schedules a NIC/link degradation on `node` at `at` for `lasts`.
    pub fn degrade_node(
        mut self,
        at: SimDuration,
        node: u32,
        bandwidth_factor: f64,
        latency_factor: f64,
        lasts: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            fault: Fault::NodeDegrade { node, bandwidth_factor, latency_factor, lasts },
        });
        self
    }

    /// Opens a message-loss window at `at` for `lasts` with the given
    /// per-message drop probability.
    pub fn lose_messages(mut self, at: SimDuration, probability: f64, lasts: SimDuration) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability out of range: {probability}"
        );
        self.events.push(FaultEvent { at, fault: Fault::MessageLoss { probability, lasts } });
        self
    }

    /// Schedules a crash of the named container at `at`.
    pub fn crash_container(mut self, at: SimDuration, container: &'static str) -> Self {
        self.events.push(FaultEvent { at, fault: Fault::ContainerCrash { container } });
        self
    }

    /// Schedules a processing stall of the named container at `at` for
    /// `lasts`.
    pub fn stall_container(
        mut self,
        at: SimDuration,
        container: &'static str,
        lasts: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent { at, fault: Fault::ContainerStall { container, lasts } });
        self
    }

    /// True if the plan injects nothing. Runs gate *all* fault-layer
    /// scheduling (injection events, heartbeats, detector ticks) on this,
    /// which is what keeps an empty-plan trace bit-identical to a
    /// fault-unaware build.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scheduled faults, in insertion order (ties in `at` are broken
    /// by the kernel's deterministic FIFO sequence numbers).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// The plan's seeded per-message loss sampler.
///
/// This is the fault layer's only randomness. It is seeded from
/// [`FaultPlan::seed`] (xor'd with the fault's index so two loss windows
/// in one plan draw independent streams) and consulted exactly once per
/// send inside the deterministic event order, so identical (seed, plan)
/// pairs reproduce identical drop patterns.
//
// Sanctioned determinism escape: seed_from_u64 only, never entropy.
#[derive(Clone, Debug)]
pub struct LossSampler {
    rng: StdRng,
    probability: f64,
}

impl LossSampler {
    /// Builds a sampler dropping with `probability` from `seed`.
    pub fn new(seed: u64, probability: f64) -> Self {
        LossSampler { rng: StdRng::seed_from_u64(seed), probability }
    }

    /// Draws once; `true` means drop this message.
    pub fn sample(&mut self) -> bool {
        self.rng.gen_bool(self.probability)
    }
}

/// Interprets the network-level faults of a plan against a
/// `simnet::Network`, scheduling each injection (and each degradation /
/// loss-window expiry) as a labelled kernel event (`fault.inject`,
/// `fault.clear`).
///
/// Container-level faults ([`Fault::ContainerCrash`],
/// [`Fault::ContainerStall`]) are not interpreted here — the pipeline
/// layer owns container state and handles them itself.
///
/// Does nothing for an empty plan: no events, no RNG.
pub fn install_network_faults(plan: &FaultPlan, sim: &mut Sim, net: &Net) {
    if plan.is_empty() {
        return;
    }
    for (ix, ev) in plan.events().iter().enumerate() {
        let net = net.clone();
        match ev.fault {
            Fault::NodeCrash { node } => {
                sim.schedule_in_named("fault.inject", ev.at, move |_| {
                    net.borrow_mut().set_node_down(NodeId(node));
                });
            }
            Fault::NodeDegrade { node, bandwidth_factor, latency_factor, lasts } => {
                sim.schedule_in_named("fault.inject", ev.at, move |sim| {
                    let until = sim.now() + lasts;
                    net.borrow_mut().degrade_nic(
                        NodeId(node),
                        Degradation { bandwidth_factor, latency_factor, until },
                    );
                });
            }
            Fault::MessageLoss { probability, lasts } => {
                let seed = plan.seed ^ (0xFA17 + ix as u64);
                sim.schedule_in_named("fault.inject", ev.at, move |sim| {
                    let mut sampler = LossSampler::new(seed, probability);
                    net.borrow_mut().set_loss_sampler(move || sampler.sample());
                    let net2 = net.clone();
                    sim.schedule_in_named("fault.clear", lasts, move |_| {
                        net2.borrow_mut().clear_loss_sampler();
                    });
                });
            }
            Fault::ContainerCrash { .. } | Fault::ContainerStall { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::shared;
    use simnet::{Network, NetworkConfig};

    fn plan() -> FaultPlan {
        FaultPlan::new()
            .with_seed(7)
            .crash_node(SimDuration::from_secs(1), 3)
            .degrade_node(SimDuration::from_secs(2), 4, 0.5, 2.0, SimDuration::from_secs(5))
            .lose_messages(SimDuration::from_secs(3), 0.25, SimDuration::from_secs(2))
            .crash_container(SimDuration::from_secs(4), "Bonds")
            .stall_container(SimDuration::from_secs(5), "CSym", SimDuration::from_secs(1))
    }

    #[test]
    fn builder_records_events_in_order() {
        let p = plan();
        assert!(!p.is_empty());
        assert_eq!(p.len(), 5);
        assert_eq!(p.events()[0].fault, Fault::NodeCrash { node: 3 });
        assert_eq!(
            p.events()[3].fault,
            Fault::ContainerCrash { container: "Bonds" }
        );
        assert!(FaultPlan::new().is_empty());
        assert_eq!(p, p.clone());
    }

    #[test]
    fn loss_sampler_is_reproducible() {
        let draws = |seed| {
            let mut s = LossSampler::new(seed, 0.3);
            (0..64).map(|_| s.sample()).collect::<Vec<_>>()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43), "different seeds should diverge");
        // Probability 0 and 1 are degenerate but exact.
        assert!(!LossSampler::new(1, 0.0).sample());
        assert!(LossSampler::new(1, 1.0).sample());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn out_of_range_probability_rejected() {
        let _ = FaultPlan::new().lose_messages(SimDuration::ZERO, 1.5, SimDuration::from_secs(1));
    }

    fn fast_net() -> Net {
        Network::new(NetworkConfig {
            base_latency: SimDuration::from_micros(1),
            per_hop_latency: SimDuration::ZERO,
            bandwidth_bps: 1_000_000_000,
            sw_overhead: SimDuration::ZERO,
            topology: simnet::Topology::Flat,
        })
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        let hash = |install: bool| {
            let mut sim = Sim::new(0);
            sim.record_trace();
            let net = fast_net();
            if install {
                install_network_faults(&FaultPlan::new(), &mut sim, &net);
            }
            Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 64, |_| {});
            sim.run();
            sim.take_trace().expect("trace recorded").schedule_hash()
        };
        assert_eq!(hash(true), hash(false), "empty plan must leave the schedule untouched");
    }

    #[test]
    fn node_crash_drops_traffic_after_injection() {
        let mut sim = Sim::new(0);
        let net = fast_net();
        let p = FaultPlan::new().crash_node(SimDuration::from_secs(1), 1);
        install_network_faults(&p, &mut sim, &net);
        // Before the crash: delivered. After: dropped.
        let delivered = shared(0u32);
        let d = delivered.clone();
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 64, move |_| {
            *d.borrow_mut() += 1;
        });
        let net2 = net.clone();
        let d = delivered.clone();
        sim.schedule_in_named("test.late", SimDuration::from_secs(2), move |sim| {
            Network::transfer(&net2, sim, NodeId(0), NodeId(1), 64, move |_| {
                *d.borrow_mut() += 1;
            });
        });
        sim.run();
        assert_eq!(*delivered.borrow(), 1);
        assert_eq!(net.borrow().stats().dropped, 1);
    }

    #[test]
    fn degradation_window_applies_and_expires() {
        let mut sim = Sim::new(0);
        let net = fast_net();
        let p = FaultPlan::new().degrade_node(
            SimDuration::from_secs(1),
            1,
            0.5,
            1.0,
            SimDuration::from_secs(5),
        );
        install_network_faults(&p, &mut sim, &net);
        sim.run();
        let n = net.borrow();
        let base = n.config().wire_time(NodeId(0), NodeId(1), 1_000_000);
        let inside = n.effective_wire_time(
            NodeId(0),
            NodeId(1),
            1_000_000,
            sim_core::SimTime::ZERO + SimDuration::from_secs(2),
        );
        let after = n.effective_wire_time(
            NodeId(0),
            NodeId(1),
            1_000_000,
            sim_core::SimTime::ZERO + SimDuration::from_secs(7),
        );
        assert!(inside > base, "inside the window transfers slow down");
        assert_eq!(after, base, "after expiry the link recovers");
    }

    #[test]
    fn loss_window_is_deterministic_and_closes() {
        let run = || {
            let mut sim = Sim::new(0);
            let net = fast_net();
            let p = FaultPlan::new().with_seed(99).lose_messages(
                SimDuration::from_secs(1),
                0.5,
                SimDuration::from_secs(1),
            );
            install_network_faults(&p, &mut sim, &net);
            // 32 sends inside the window, 8 after it closes.
            for i in 0..40u64 {
                let net2 = net.clone();
                let at = SimDuration::from_millis(1_010 + i * 100);
                sim.schedule_in_named("test.send", at, move |sim| {
                    Network::transfer(&net2, sim, NodeId(0), NodeId(1), 64, |_| {});
                });
            }
            sim.run();
            let stats = net.borrow().stats();
            stats
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed + plan must reproduce the same drops");
        assert!(a.dropped > 0, "a 50% loss window over 20 sends should drop some");
        // Sends after second 2 (indices 10..40) are past the window.
        assert!(a.messages >= 30, "post-window sends all deliver: {a:?}");
    }
}
