//! The two-phase staged channel: metadata push, data pull.
//!
//! DataTap/DataStager's defining behaviour is that a writer never pushes
//! bulk data at a receiver. It buffers the payload locally, pushes a small
//! *metadata* record, and the receiver *pulls* the payload when it is ready
//! (over RDMA on the real machine). This keeps slow receivers from being
//! overwhelmed and lets the receiver schedule pulls to manage interconnect
//! contention.
//!
//! [`Channel`] implements those semantics for the threaded runtime:
//! bounded buffering with backpressure (a full buffer blocks the writer —
//! the "application blocking" the paper's management exists to prevent),
//! and a pause/resume protocol used by the container decrease operation:
//! [`Writer::pause`] stops new announcements and blocks until every
//! announced step has been pulled, so no time step can be lost while the
//! downstream container is being resized.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use adios::StepData;
use simtel::{Category, Telemetry};

use crate::clock::{to_sim, Clock, WallClock};
use crate::sync::{Condvar, Mutex};

/// Metadata announcing one buffered output step. Three plain words —
/// `Copy`, so the per-message paths hand it around without cloning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepMeta {
    /// Output-step index.
    pub step: u64,
    /// Payload size in bytes (what the pull will move).
    pub bytes: u64,
    /// Identifier of the writer that buffered the payload.
    pub writer: u32,
}

/// Why a write could not be accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteError {
    /// The channel buffer is full (receiver too slow).
    QueueFull,
    /// The channel was closed by the reader side.
    Closed,
    /// The writer is paused by a control action.
    Paused,
    /// The channel failed (endpoint crash injected via [`Writer::fail`]).
    Failed(&'static str),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::QueueFull => write!(f, "staging queue full"),
            WriteError::Closed => write!(f, "channel closed"),
            WriteError::Paused => write!(f, "writer paused"),
            WriteError::Failed(reason) => write!(f, "channel failed: {reason}"),
        }
    }
}

impl std::error::Error for WriteError {}

/// Why a checked pull returned no step. This is the typed surface for
/// failed pulls: a reader blocked on a crashed endpoint gets
/// [`PullError::Failed`] instead of hanging forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PullError {
    /// The channel failed (endpoint crash injected via [`Writer::fail`]);
    /// any payload buffered at the crashed writer is unrecoverable.
    Failed(&'static str),
    /// The channel was closed and the buffer fully drained.
    Closed,
    /// The deadline passed with no step available.
    TimedOut,
}

impl std::fmt::Display for PullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PullError::Failed(reason) => write!(f, "pull failed: {reason}"),
            PullError::Closed => write!(f, "channel closed and drained"),
            PullError::TimedOut => write!(f, "pull timed out"),
        }
    }
}

impl std::error::Error for PullError {}

/// Why a [`Writer::pause`] drain was aborted before every announced step
/// had been pulled. A decrease protocol that receives this must treat the
/// drain as **failed** — steps may have been lost (`Failed`) or may still
/// be in a buffer it can no longer observe (`Closed`) — instead of
/// proceeding as if the channel quiesced cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PauseAborted {
    /// The reader side closed the channel mid-drain. `remaining` steps
    /// were still buffered when the drain gave up (a closing reader may
    /// still drain them, but the pauser can no longer wait for it).
    Closed {
        /// Steps still buffered when the drain aborted.
        remaining: usize,
    },
    /// The channel failed mid-drain (endpoint crash); every step still
    /// buffered at the crashed writer was discarded.
    Failed(&'static str),
}

impl std::fmt::Display for PauseAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PauseAborted::Closed { remaining } => {
                write!(f, "pause aborted: channel closed with {remaining} steps undrained")
            }
            PauseAborted::Failed(reason) => {
                write!(f, "pause aborted: channel failed: {reason}")
            }
        }
    }
}

impl std::error::Error for PauseAborted {}

struct Envelope {
    meta: StepMeta,
    payload: StepData,
}

struct State {
    queue: VecDeque<Envelope>,
    capacity: usize,
    paused: bool,
    /// Active [`Writer::pause`] drains. The write gate is held while this
    /// is non-zero even if a concurrent [`Writer::resume`] cleared
    /// `paused`: otherwise a resumed writer could refill the queue and
    /// stall the pauser indefinitely.
    drainers: usize,
    closed: bool,
    failed: Option<&'static str>,
    high_watermark: usize,
}

impl State {
    /// True while writes must not be accepted: an explicit pause, or a
    /// pause drain still in progress (which outlives a racing resume).
    fn write_gated(&self) -> bool {
        self.paused || self.drainers > 0
    }
}

struct Inner {
    state: Mutex<State>,
    writer_cv: Condvar,
    reader_cv: Condvar,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
}

impl Inner {
    /// Records a queue-depth sample under [`Category::Transport`].
    fn gauge_queued(&self, queued: usize) {
        if self.telemetry.enabled(Category::Transport) {
            self.telemetry.gauge(
                Category::Transport,
                "datatap.queued",
                self.clock.now(),
                queued as f64,
            );
        }
    }
}

/// Creates a staged channel with a buffer of `capacity` steps, timing its
/// timeout paths against the process wall clock.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn channel(capacity: usize) -> (Writer, Reader) {
    channel_with_clock(capacity, Arc::new(WallClock::new()))
}

/// As [`channel`], but with an injected [`Clock`] — a [`ManualClock`]
/// makes timeout behaviour fully deterministic in tests.
///
/// [`ManualClock`]: crate::clock::ManualClock
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn channel_with_clock(capacity: usize, clock: Arc<dyn Clock>) -> (Writer, Reader) {
    channel_with_telemetry(capacity, clock, Telemetry::disabled())
}

/// As [`channel_with_clock`], but recording flow through `telemetry`
/// (announce/pull totals, queue-depth gauge, pause/resume markers — all
/// under [`Category::Transport`]).
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn channel_with_telemetry(
    capacity: usize,
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
) -> (Writer, Reader) {
    assert!(capacity > 0, "channel capacity must be positive");
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            paused: false,
            drainers: 0,
            closed: false,
            failed: None,
            high_watermark: 0,
        }),
        writer_cv: Condvar::new(),
        reader_cv: Condvar::new(),
        clock,
        telemetry,
    });
    (Writer { inner: inner.clone(), id: 0 }, Reader { inner })
}

/// The producing end. Cloneable: parallel writers (e.g. the ranks of an MPI
/// component) share the buffer.
#[derive(Clone)]
pub struct Writer {
    inner: Arc<Inner>,
    id: u32,
}

impl Writer {
    /// Returns a writer handle with a distinct writer id (for metadata
    /// attribution).
    pub fn with_id(&self, id: u32) -> Writer {
        Writer { inner: self.inner.clone(), id }
    }

    /// Attempts to buffer a step without blocking.
    pub fn try_write(&self, step: StepData) -> Result<StepMeta, WriteError> {
        let mut st = self.inner.state.lock();
        if let Some(reason) = st.failed {
            return Err(WriteError::Failed(reason));
        }
        if st.closed {
            return Err(WriteError::Closed);
        }
        if st.write_gated() {
            return Err(WriteError::Paused);
        }
        if st.queue.len() >= st.capacity {
            return Err(WriteError::QueueFull);
        }
        Ok(self.push(&mut st, step))
    }

    /// Buffers a step, blocking while the buffer is full or the writer is
    /// paused — this is the "application blocks on I/O" failure mode.
    pub fn write(&self, step: StepData) -> Result<StepMeta, WriteError> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(reason) = st.failed {
                return Err(WriteError::Failed(reason));
            }
            if st.closed {
                return Err(WriteError::Closed);
            }
            if !st.write_gated() && st.queue.len() < st.capacity {
                let meta = self.push(&mut st, step);
                return Ok(meta);
            }
            self.inner.writer_cv.wait(&mut st);
        }
    }

    fn push(&self, st: &mut State, payload: StepData) -> StepMeta {
        let meta = StepMeta { step: payload.step(), bytes: payload.payload_bytes(), writer: self.id };
        st.queue.push_back(Envelope { meta, payload });
        st.high_watermark = st.high_watermark.max(st.queue.len());
        self.inner.telemetry.count(Category::Transport, "datatap.announced", 1);
        self.inner.gauge_queued(st.queue.len());
        self.inner.reader_cv.notify_all();
        meta
    }

    /// Pauses the channel and blocks until every announced step has been
    /// pulled. On success, returns the number of steps that had to drain.
    ///
    /// This is the consistency action the decrease protocol waits on; its
    /// cost is what dominates Fig. 5. Because that protocol's "no step is
    /// lost" guarantee rests on the drain actually completing, an aborted
    /// drain is a typed error, never a success-shaped count:
    /// [`PauseAborted::Failed`] if the channel failed mid-drain (buffered
    /// steps were discarded), [`PauseAborted::Closed`] if the reader side
    /// closed while steps were still buffered.
    ///
    /// The write gate engages before the drain starts and is held until
    /// the drain finishes even if a concurrent [`Writer::resume`] clears
    /// the paused flag mid-drain — a resumed writer cannot refill the
    /// queue and stall the pauser. (After such a resume, the channel comes
    /// out of the drain unpaused.)
    pub fn pause(&self) -> Result<usize, PauseAborted> {
        let mut st = self.inner.state.lock();
        st.paused = true;
        st.drainers += 1;
        let draining = st.queue.len();
        self.inner.telemetry.count(Category::Transport, "datatap.pauses", 1);
        if self.inner.telemetry.enabled(Category::Transport) {
            self.inner.telemetry.mark(
                Category::Transport,
                "datatap",
                "pause",
                self.inner.clock.now(),
            );
        }
        let outcome = loop {
            // Failure first: fail() clears the queue, so an empty queue on
            // a failed channel means steps were discarded, not drained.
            if let Some(reason) = st.failed {
                break Err(PauseAborted::Failed(reason));
            }
            if st.queue.is_empty() {
                break Ok(draining);
            }
            if st.closed {
                break Err(PauseAborted::Closed { remaining: st.queue.len() });
            }
            self.inner.writer_cv.wait(&mut st);
        };
        st.drainers -= 1;
        if outcome.is_err() {
            self.inner.telemetry.count(Category::Transport, "datatap.pause_aborts", 1);
        }
        if st.drainers == 0 && !st.paused {
            // A resume arrived mid-drain: the gate opens only now that the
            // drain is over, so wake the writers it was holding back.
            self.inner.writer_cv.notify_all();
        }
        outcome
    }

    /// Resumes a paused channel. If a [`Writer::pause`] drain is still in
    /// progress, the paused flag clears immediately but the write gate
    /// stays held until that drain finishes.
    pub fn resume(&self) {
        let mut st = self.inner.state.lock();
        st.paused = false;
        if self.inner.telemetry.enabled(Category::Transport) {
            self.inner.telemetry.mark(
                Category::Transport,
                "datatap",
                "resume",
                self.inner.clock.now(),
            );
        }
        self.inner.writer_cv.notify_all();
    }

    /// True if the channel currently rejects writes: explicitly paused, or
    /// quiescing because a pause drain is still in progress.
    pub fn is_paused(&self) -> bool {
        self.inner.state.lock().write_gated()
    }

    /// Injects an endpoint failure: the channel enters the failed state,
    /// every buffered-but-unpulled payload is discarded (it lived in the
    /// crashed writer's memory and is unrecoverable), and all blocked
    /// parties wake — writers fail with [`WriteError::Failed`], checked
    /// pulls with [`PullError::Failed`], and plain pulls return `None`
    /// instead of hanging. Returns the number of steps lost.
    pub fn fail(&self, reason: &'static str) -> usize {
        let mut st = self.inner.state.lock();
        if st.failed.is_some() {
            return 0;
        }
        st.failed = Some(reason);
        let lost = st.queue.len();
        st.queue.clear();
        self.inner.telemetry.count(Category::Transport, "datatap.failed_steps", lost as u64);
        if self.inner.telemetry.enabled(Category::Transport) {
            self.inner.telemetry.mark(
                Category::Transport,
                "datatap",
                "fail",
                self.inner.clock.now(),
            );
        }
        self.inner.writer_cv.notify_all();
        self.inner.reader_cv.notify_all();
        lost
    }
}

/// The consuming end.
pub struct Reader {
    inner: Arc<Inner>,
}

impl Reader {
    /// Peeks the metadata of the next buffered step without pulling it.
    pub fn peek_meta(&self) -> Option<StepMeta> {
        self.inner.state.lock().queue.front().map(|e| e.meta)
    }

    /// Pulls the next step, blocking until one is available. Returns `None`
    /// once the channel is closed and drained, or once it has failed (use
    /// [`Reader::pull_checked`] to distinguish — a failed pull surfaces as
    /// a typed [`PullError::Failed`] rather than a silent hang).
    pub fn pull(&self) -> Option<(StepMeta, StepData)> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(env) = st.queue.pop_front() {
                self.inner.telemetry.count(Category::Transport, "datatap.pulled", 1);
                self.inner.gauge_queued(st.queue.len());
                self.inner.writer_cv.notify_all();
                return Some((env.meta, env.payload));
            }
            if st.closed || st.failed.is_some() {
                return None;
            }
            self.inner.reader_cv.wait(&mut st);
        }
    }

    /// Pulls the next step with a typed outcome: `Ok` with the step,
    /// [`PullError::Failed`] if the channel's endpoint crashed (no hang),
    /// [`PullError::Closed`] once closed and drained, or
    /// [`PullError::TimedOut`] if `timeout` elapses first (measured on the
    /// channel's [`Clock`]).
    pub fn pull_checked(
        &self,
        timeout: Duration,
    ) -> Result<(StepMeta, StepData), PullError> {
        let deadline = self.inner.clock.now() + to_sim(timeout);
        let mut st = self.inner.state.lock();
        loop {
            if let Some(env) = st.queue.pop_front() {
                self.inner.telemetry.count(Category::Transport, "datatap.pulled", 1);
                self.inner.gauge_queued(st.queue.len());
                self.inner.writer_cv.notify_all();
                return Ok((env.meta, env.payload));
            }
            if let Some(reason) = st.failed {
                return Err(PullError::Failed(reason));
            }
            if st.closed {
                return Err(PullError::Closed);
            }
            let now = self.inner.clock.now();
            if now >= deadline {
                return Err(PullError::TimedOut);
            }
            let slice = self.inner.clock.block_slice(deadline.since(now));
            self.inner.reader_cv.wait_for(&mut st, slice);
        }
    }

    /// Pulls with a timeout; `None` on timeout or closed-and-drained.
    ///
    /// The deadline is computed on the channel's [`Clock`], so under a
    /// manual clock the timeout only expires when virtual time is advanced
    /// past it.
    pub fn pull_timeout(&self, timeout: Duration) -> Option<(StepMeta, StepData)> {
        let deadline = self.inner.clock.now() + to_sim(timeout);
        let mut st = self.inner.state.lock();
        loop {
            if let Some(env) = st.queue.pop_front() {
                self.inner.telemetry.count(Category::Transport, "datatap.pulled", 1);
                self.inner.gauge_queued(st.queue.len());
                self.inner.writer_cv.notify_all();
                return Some((env.meta, env.payload));
            }
            if st.closed || st.failed.is_some() {
                return None;
            }
            let now = self.inner.clock.now();
            if now >= deadline {
                return None;
            }
            let slice = self.inner.clock.block_slice(deadline.since(now));
            self.inner.reader_cv.wait_for(&mut st, slice);
        }
    }

    /// Attempts a pull without blocking.
    pub fn try_pull(&self) -> Option<(StepMeta, StepData)> {
        let mut st = self.inner.state.lock();
        let env = st.queue.pop_front()?;
        self.inner.telemetry.count(Category::Transport, "datatap.pulled", 1);
        self.inner.gauge_queued(st.queue.len());
        self.inner.writer_cv.notify_all();
        Some((env.meta, env.payload))
    }

    /// Steps currently buffered (announced but not yet pulled).
    pub fn queued(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// The deepest the buffer has ever been.
    pub fn high_watermark(&self) -> usize {
        self.inner.state.lock().high_watermark
    }

    /// The failure reason, if the channel's endpoint has crashed.
    pub fn failure(&self) -> Option<&'static str> {
        self.inner.state.lock().failed
    }

    /// The channel's time source (shared with wrappers like the
    /// scheduled reader, so all deadlines live on one axis).
    pub(crate) fn clock(&self) -> Arc<dyn Clock> {
        self.inner.clock.clone()
    }

    /// Closes the channel; blocked writers fail with
    /// [`WriteError::Closed`], blocked pulls drain then end.
    pub fn close(&self) {
        let mut st = self.inner.state.lock();
        st.closed = true;
        self.inner.writer_cv.notify_all();
        self.inner.reader_cv.notify_all();
    }
}

impl Drop for Reader {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn step(ix: u64) -> StepData {
        StepData::new(ix)
    }

    #[test]
    fn metadata_precedes_data() {
        let (w, r) = channel(4);
        w.try_write(step(0)).unwrap();
        let meta = r.peek_meta().unwrap();
        assert_eq!(meta.step, 0);
        // Peeking does not consume.
        let (meta2, _) = r.pull().unwrap();
        assert_eq!(meta, meta2);
    }

    #[test]
    fn try_write_reports_full() {
        let (w, _r) = channel(2);
        w.try_write(step(0)).unwrap();
        w.try_write(step(1)).unwrap();
        assert_eq!(w.try_write(step(2)).unwrap_err(), WriteError::QueueFull);
    }

    #[test]
    fn blocking_write_resumes_after_pull() {
        let (w, r) = channel(1);
        w.write(step(0)).unwrap();
        let writer = thread::spawn(move || w.write(step(1)).map(|m| m.step));
        thread::sleep(Duration::from_millis(20));
        let (m, _) = r.pull().unwrap();
        assert_eq!(m.step, 0);
        assert_eq!(writer.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn pause_drains_announced_steps() {
        let (w, r) = channel(8);
        for i in 0..3 {
            w.try_write(step(i)).unwrap();
        }
        let w2 = w.clone();
        let pauser = thread::spawn(move || w2.pause());
        // Drain from the reader side; pause must complete exactly when the
        // queue empties.
        thread::sleep(Duration::from_millis(20));
        for _ in 0..3 {
            r.pull().unwrap();
        }
        assert_eq!(pauser.join().unwrap(), Ok(3));
        assert!(w.is_paused());
        assert_eq!(w.try_write(step(9)).unwrap_err(), WriteError::Paused);
        w.resume();
        w.try_write(step(9)).unwrap();
    }

    #[test]
    fn close_unblocks_everyone() {
        let (w, r) = channel(1);
        w.try_write(step(0)).unwrap();
        let blocked = thread::spawn(move || w.write(step(1)));
        thread::sleep(Duration::from_millis(20));
        r.close();
        assert_eq!(blocked.join().unwrap().unwrap_err(), WriteError::Closed);
        // Buffered data is still drainable after close.
        assert!(r.pull().is_some());
        assert!(r.pull().is_none());
    }

    #[test]
    fn telemetry_tracks_flow() {
        use crate::clock::ManualClock;
        use simtel::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::all());
        let clock = Arc::new(ManualClock::new());
        let (w, r) = channel_with_telemetry(4, clock, tel.clone());
        for i in 0..4 {
            w.try_write(step(i)).unwrap();
        }
        r.pull().unwrap();
        assert_eq!(tel.counter("datatap.announced"), 4);
        assert_eq!(tel.counter("datatap.pulled"), 1);
        assert_eq!(r.queued(), 3);
        assert_eq!(r.high_watermark(), 4);
        // The queue-depth gauge saw every transition: 1, 2, 3, 4, then 3.
        let depths: Vec<f64> = tel.series("datatap.queued").iter().map(|(_, v)| *v).collect();
        assert_eq!(depths, vec![1.0, 2.0, 3.0, 4.0, 3.0]);
    }

    #[test]
    fn telemetry_marks_pause_and_resume() {
        use crate::clock::ManualClock;
        use simtel::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::all());
        let clock = Arc::new(ManualClock::new());
        let (w, _r) = channel_with_telemetry(2, clock, tel.clone());
        assert_eq!(w.pause(), Ok(0)); // empty queue: returns immediately
        w.resume();
        assert_eq!(tel.counter("datatap.pauses"), 1);
        let snap = tel.snapshot();
        let marks: Vec<&str> = snap.markers.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(marks, vec!["pause", "resume"]);
    }

    #[test]
    fn pull_timeout_times_out() {
        let (_w, r) = channel(1);
        assert!(r.pull_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn pull_timeout_under_manual_clock_is_virtual() {
        use crate::clock::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let (_w, r) = channel_with_clock(1, clock.clone());
        // The wait passes by advancing virtual time, not by sleeping: an
        // hour-long timeout returns immediately, and the clock lands
        // exactly on the deadline.
        assert!(r.pull_timeout(Duration::from_secs(3600)).is_none());
        assert_eq!(clock.now(), sim_core::SimTime::from_secs(3600));
    }

    #[test]
    fn manual_clock_already_past_deadline_never_blocks() {
        use crate::clock::ManualClock;
        use sim_core::SimTime;
        let clock = Arc::new(ManualClock::at(SimTime::from_secs(5)));
        let (w, r) = channel_with_clock(2, clock.clone());
        assert!(r.pull_timeout(Duration::from_millis(10)).is_none());
        // Data present still wins regardless of the clock.
        w.try_write(step(3)).unwrap();
        assert_eq!(r.pull_timeout(Duration::from_millis(10)).unwrap().0.step, 3);
    }

    #[test]
    fn failed_channel_surfaces_typed_errors_instead_of_hanging() {
        use crate::clock::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let (w, r) = channel_with_clock(4, clock);
        w.try_write(step(0)).unwrap();
        w.try_write(step(1)).unwrap();
        // A reader blocked in pull() when the endpoint dies must wake.
        let w2 = w.clone();
        let failer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            w2.fail("bonds node kernel panic")
        });
        // Drain the two live steps first, then block.
        assert!(r.pull().is_some());
        assert!(r.pull().is_some());
        assert!(r.pull().is_none(), "pull on a failed channel must return, not hang");
        assert_eq!(failer.join().unwrap(), 0, "queue was drained before the crash");
        // The typed surface names the reason.
        assert_eq!(
            r.pull_checked(Duration::from_secs(3600)).unwrap_err(),
            PullError::Failed("bonds node kernel panic")
        );
        assert_eq!(r.failure(), Some("bonds node kernel panic"));
        // Writers see the failure too.
        assert_eq!(
            w.try_write(step(2)).unwrap_err(),
            WriteError::Failed("bonds node kernel panic")
        );
        assert_eq!(w.write(step(3)).unwrap_err(), WriteError::Failed("bonds node kernel panic"));
    }

    #[test]
    fn fail_discards_buffered_payloads() {
        let (w, r) = channel(4);
        w.try_write(step(0)).unwrap();
        w.try_write(step(1)).unwrap();
        assert_eq!(w.fail("power loss"), 2);
        // The crashed writer's buffered payloads are unrecoverable.
        assert!(r.try_pull().is_none());
        assert_eq!(r.queued(), 0);
        // Failing twice is idempotent.
        assert_eq!(w.fail("again"), 0);
        assert_eq!(r.failure(), Some("power loss"));
    }

    #[test]
    fn pull_checked_times_out_and_closes() {
        use crate::clock::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let (w, r) = channel_with_clock(2, clock);
        assert_eq!(
            r.pull_checked(Duration::from_millis(5)).unwrap_err(),
            PullError::TimedOut
        );
        w.try_write(step(7)).unwrap();
        assert_eq!(r.pull_checked(Duration::from_millis(5)).unwrap().0.step, 7);
        r.close();
        assert_eq!(r.pull_checked(Duration::from_millis(5)).unwrap_err(), PullError::Closed);
    }

    #[test]
    fn parallel_writers_share_buffer() {
        use crate::clock::ManualClock;
        use simtel::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::all());
        let (w, r) = channel_with_telemetry(64, Arc::new(ManualClock::new()), tel.clone());
        let mut handles = Vec::new();
        for wid in 0..4u32 {
            let w = w.with_id(wid);
            handles.push(thread::spawn(move || {
                for i in 0..16u64 {
                    w.write(step(i)).unwrap();
                }
            }));
        }
        let mut pulled = 0;
        while pulled < 64 {
            r.pull().unwrap();
            pulled += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tel.counter("datatap.announced"), 64);
        assert_eq!(tel.counter("datatap.pulled"), 64);
    }
}
