//! Injectable time source for the transport's timeout paths.
//!
//! The channel's deadline arithmetic is done in the simulation time domain
//! ([`SimTime`]/[`SimDuration`]) against a [`Clock`] chosen at
//! construction, instead of raw `std::time::Instant` math scattered
//! through the wait loops. Production code uses [`WallClock`] (the only
//! sanctioned wall-clock read in the crate); tests and deterministic
//! harnesses use [`ManualClock`], which only moves when told to — so a
//! timeout can be driven, and asserted on, without real sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sim_core::{SimDuration, SimTime};

/// A monotonic time source on the simulation time axis.
pub trait Clock: Send + Sync {
    /// The current instant. Must be monotonically non-decreasing.
    fn now(&self) -> SimTime;

    /// How a blocked timeout wait should pass `remaining` virtual time:
    /// the returned std duration is handed to the condvar wait. The wall
    /// clock blocks for the full remainder; a manual clock jumps virtual
    /// time to the deadline and returns zero — virtual sleeping, as in a
    /// discrete-event simulation, so timeout paths never really block.
    fn block_slice(&self, remaining: SimDuration) -> Duration;
}

/// The process wall clock mapped onto the [`SimTime`] axis: nanoseconds
/// since this clock was created.
#[derive(Debug)]
pub struct WallClock {
    epoch: std::time::Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        // The transport's one sanctioned wall-clock read: everything else
        // derives from this epoch through Clock::now().
        // simlint: allow(wall-clock, the transport epoch is the one sanctioned wall-clock read)
        WallClock { epoch: std::time::Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(clamp_u64(self.epoch.elapsed().as_nanos()))
    }

    fn block_slice(&self, remaining: SimDuration) -> Duration {
        to_std(remaining)
    }
}

/// A clock that advances only when told to. Thread-safe, so a test can
/// drive time from one thread while another blocks on a timeout.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock at the epoch (t = 0).
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Creates a manual clock already at `t`.
    pub fn at(t: SimTime) -> ManualClock {
        let c = ManualClock::new();
        c.set(t);
        c
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.now_ns.fetch_add(d.as_nanos(), Ordering::SeqCst);
    }

    /// Jumps the clock to `t` (must not move it backwards).
    pub fn set(&self, t: SimTime) {
        self.now_ns.fetch_max(t.as_nanos(), Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }

    fn block_slice(&self, remaining: SimDuration) -> Duration {
        self.advance(remaining);
        Duration::ZERO
    }
}

fn clamp_u64(ns: u128) -> u64 {
    ns.min(u64::MAX as u128) as u64
}

/// Converts a std timeout into the simulation time domain.
pub(crate) fn to_sim(d: Duration) -> SimDuration {
    SimDuration::from_nanos(clamp_u64(d.as_nanos()))
}

/// Converts a simulation-domain remainder back into a std wait.
pub(crate) fn to_std(d: SimDuration) -> Duration {
    Duration::from_nanos(d.as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_from_its_epoch() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a <= b);
    }

    #[test]
    fn manual_clock_moves_only_when_driven() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(5));
        c.set(SimTime::from_millis(3)); // backwards jumps are ignored
        assert_eq!(c.now(), SimTime::from_millis(5));
        c.set(SimTime::from_secs(1));
        assert_eq!(c.now(), SimTime::from_secs(1));
    }

    #[test]
    fn domain_conversions_round_trip() {
        let d = Duration::from_micros(1234);
        assert_eq!(to_std(to_sim(d)), d);
    }
}
