//! # datatap — asynchronous staging transport
//!
//! A reimplementation of the DataTap/DataStager transport the paper moves
//! all inter-container data through. Its defining semantics:
//!
//! * **metadata push, data pull** — writers buffer payloads locally and
//!   announce small metadata records; receivers pull the bulk data when
//!   ready ([`channel`]);
//! * **bounded staging buffers** — a full buffer blocks the writer, which
//!   is exactly the application-blocking failure container management
//!   exists to prevent;
//! * **writer pause/resume** — the consistency action the container
//!   decrease protocol waits on ([`Writer::pause`] drains announced steps
//!   so no time step is lost while a downstream container resizes);
//! * **server-directed pull scheduling** — the receiver decides when pulls
//!   happen ([`PullPolicy`]), DataStager's contention-avoidance mechanism.
//!
//! The threaded implementation here carries real [`adios::StepData`]
//! payloads; [`TransportCosts`] supplies the calibrated software costs the
//! discrete-event experiments charge for the same operations.
//!
//! ## Example
//! ```
//! use datatap::channel;
//! use adios::StepData;
//!
//! let (writer, reader) = channel(4);
//! writer.try_write(StepData::new(0)).unwrap();
//! let meta = reader.peek_meta().unwrap();     // metadata arrives first
//! assert_eq!(meta.step, 0);
//! let (_, payload) = reader.pull().unwrap();  // then the data is pulled
//! assert_eq!(payload.step(), 0);
//! ```

#![warn(missing_docs)]

mod channel;
pub mod clock;
mod cost;
mod sched_reader;
mod scheduler;
mod sync;

pub use channel::{
    channel, channel_with_clock, channel_with_telemetry, PauseAborted, PullError, Reader,
    StepMeta, WriteError, Writer,
};
pub use clock::{Clock, ManualClock, WallClock};
pub use cost::TransportCosts;
pub use sched_reader::{PullGuard, PullSource, ScheduledReader};
pub use scheduler::PullPolicy;
