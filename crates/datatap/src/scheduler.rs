//! Pull-scheduling policies.
//!
//! DataStager's "server-directed" I/O lets the staging side decide *when*
//! to pull announced data, instead of writers pushing greedily. The policy
//! choice trades interconnect contention against end-to-end latency; the
//! `ablation_scheduling` bench compares them.

/// When the reader side issues pulls for announced steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PullPolicy {
    /// Pull every announced step immediately (push-like behaviour; maximal
    /// concurrency, maximal contention).
    Greedy,
    /// Server-directed: at most `max_concurrent` pulls in flight, oldest
    /// step first.
    Scheduled {
        /// Concurrent-pull cap.
        max_concurrent: usize,
    },
}

impl PullPolicy {
    /// The default server-directed policy (one pull in flight at a time).
    pub const fn fifo() -> PullPolicy {
        PullPolicy::Scheduled { max_concurrent: 1 }
    }

    /// Whether a new pull may start given `in_flight` outstanding pulls.
    pub fn may_start(&self, in_flight: usize) -> bool {
        match *self {
            PullPolicy::Greedy => true,
            PullPolicy::Scheduled { max_concurrent } => in_flight < max_concurrent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_never_blocks() {
        assert!(PullPolicy::Greedy.may_start(0));
        assert!(PullPolicy::Greedy.may_start(1_000));
    }

    #[test]
    fn scheduled_caps_in_flight() {
        let p = PullPolicy::Scheduled { max_concurrent: 2 };
        assert!(p.may_start(0));
        assert!(p.may_start(1));
        assert!(!p.may_start(2));
    }

    #[test]
    fn fifo_is_single_pull() {
        assert_eq!(PullPolicy::fifo(), PullPolicy::Scheduled { max_concurrent: 1 });
    }
}
