//! Server-directed pulls for the threaded runtime.
//!
//! [`ScheduledReader`] wraps a pull endpoint and enforces a [`PullPolicy`]
//! across any number of consumer threads: a pull slot must be acquired
//! before data moves, and is held (via an RAII guard) until the consumer
//! finishes with the payload — bounding how much bulk data is in flight
//! at once, which is how DataStager keeps bulk movement from perturbing
//! the interconnect.
//!
//! The endpoint is anything implementing [`PullSource`]: the staged
//! channel's [`Reader`] is the original, and the step-streaming engine's
//! cursors implement it too, so one policy layer serves both transports.

use std::sync::Arc;
use std::time::Duration;

use adios::StepData;
use parking_lot::{Condvar, Mutex};

use crate::channel::{Reader, StepMeta};
use crate::clock::{to_sim, to_std, Clock};
use crate::scheduler::PullPolicy;

/// A pull endpoint the scheduler can wrap: blocking and deadline-bounded
/// pulls over one [`Clock`] time axis.
pub trait PullSource {
    /// Pulls the next step, blocking until one is available; `None` once
    /// the source is closed and drained (or has failed).
    fn pull(&self) -> Option<(StepMeta, StepData)>;

    /// Pulls with a timeout measured on [`PullSource::clock`]; `None` on
    /// timeout, closed-and-drained, or failure.
    fn pull_timeout(&self, timeout: Duration) -> Option<(StepMeta, StepData)>;

    /// The time source every deadline is measured on. The scheduler's
    /// slot-wait deadlines live on the same axis, so slot time and data
    /// time share one budget.
    fn clock(&self) -> Arc<dyn Clock>;
}

impl PullSource for Reader {
    fn pull(&self) -> Option<(StepMeta, StepData)> {
        Reader::pull(self)
    }

    fn pull_timeout(&self, timeout: Duration) -> Option<(StepMeta, StepData)> {
        Reader::pull_timeout(self, timeout)
    }

    fn clock(&self) -> Arc<dyn Clock> {
        Reader::clock(self)
    }
}

struct SchedState {
    in_flight: usize,
}

struct Inner<S> {
    source: S,
    policy: PullPolicy,
    state: Mutex<SchedState>,
    slot_free: Condvar,
    clock: Arc<dyn Clock>,
}

impl<S> Inner<S> {
    fn release_slot(&self) {
        let mut st = self.state.lock();
        st.in_flight -= 1;
        self.slot_free.notify_one();
    }
}

/// A policy-enforcing, clonable reader handle over any [`PullSource`].
pub struct ScheduledReader<S: PullSource = Reader> {
    inner: Arc<Inner<S>>,
}

impl<S: PullSource> Clone for ScheduledReader<S> {
    fn clone(&self) -> Self {
        ScheduledReader { inner: self.inner.clone() }
    }
}

/// RAII pull slot: while alive, the pull counts against the policy's
/// concurrency cap.
pub struct PullGuard<S: PullSource = Reader> {
    inner: Arc<Inner<S>>,
}

impl<S: PullSource> Drop for PullGuard<S> {
    fn drop(&mut self) {
        self.inner.release_slot();
    }
}

impl<S: PullSource> ScheduledReader<S> {
    /// Wraps a pull endpoint with a pull policy.
    pub fn new(source: S, policy: PullPolicy) -> ScheduledReader<S> {
        let clock = source.clock();
        ScheduledReader {
            inner: Arc::new(Inner {
                source,
                policy,
                state: Mutex::new(SchedState { in_flight: 0 }),
                slot_free: Condvar::new(),
                clock,
            }),
        }
    }

    /// Pulls currently in flight (guards alive).
    pub fn in_flight(&self) -> usize {
        self.inner.state.lock().in_flight
    }

    /// Acquires a pull slot (blocking while the policy's cap is reached),
    /// then pulls the next step. Returns `None` when the channel is closed
    /// and drained.
    pub fn pull(&self) -> Option<(PullGuard<S>, StepMeta, StepData)> {
        {
            let mut st = self.inner.state.lock();
            while !self.inner.policy.may_start(st.in_flight) {
                self.inner.slot_free.wait(&mut st);
            }
            st.in_flight += 1;
        }
        match self.inner.source.pull() {
            Some((meta, data)) => Some((PullGuard { inner: self.inner.clone() }, meta, data)),
            None => {
                self.inner.release_slot();
                None
            }
        }
    }

    /// As [`ScheduledReader::pull`] but gives up after `timeout` waiting
    /// for a slot *and* data combined (a held slot is released on
    /// timeout).
    ///
    /// One deadline governs the whole call: time spent waiting for a pull
    /// slot is charged against the same budget the inner pull gets, so the
    /// total block time never exceeds `timeout` on the channel's
    /// [`Clock`]. (It used to hand the inner pull a fresh full budget
    /// after the slot wait, blocking for up to twice the stated timeout.)
    pub fn pull_timeout(&self, timeout: Duration) -> Option<(PullGuard<S>, StepMeta, StepData)> {
        // Deadline arithmetic on the channel's clock, not Instant math:
        // under a manual clock the slot wait passes virtually.
        let deadline = self.inner.clock.now() + to_sim(timeout);
        {
            let mut st = self.inner.state.lock();
            while !self.inner.policy.may_start(st.in_flight) {
                let now = self.inner.clock.now();
                if now >= deadline {
                    return None;
                }
                let slice = self.inner.clock.block_slice(deadline.since(now));
                self.inner.slot_free.wait_for(&mut st, slice);
            }
            st.in_flight += 1;
        }
        // The slot wait may have consumed part (or all) of the budget:
        // hand the inner pull only what remains.
        let now = self.inner.clock.now();
        if now >= deadline {
            self.inner.release_slot();
            return None;
        }
        match self.inner.source.pull_timeout(to_std(deadline.since(now))) {
            Some((meta, data)) => Some((PullGuard { inner: self.inner.clone() }, meta, data)),
            None => {
                self.inner.release_slot();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn greedy_policy_never_blocks_slots() {
        let (w, r) = channel(16);
        for i in 0..4 {
            w.try_write(StepData::new(i)).unwrap();
        }
        let sched = ScheduledReader::new(r, PullPolicy::Greedy);
        let mut guards = Vec::new();
        for _ in 0..4 {
            let (g, _, _) = sched.pull().unwrap();
            guards.push(g);
        }
        assert_eq!(sched.in_flight(), 4);
    }

    #[test]
    fn scheduled_policy_caps_concurrent_pulls() {
        let (w, r) = channel(16);
        for i in 0..8 {
            w.try_write(StepData::new(i)).unwrap();
        }
        let sched = ScheduledReader::new(r, PullPolicy::Scheduled { max_concurrent: 2 });
        let peak = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for _ in 0..4 {
            let sched = sched.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                while let Some((_guard, _, _)) =
                    sched.pull_timeout(Duration::from_millis(50))
                {
                    let now = sched.in_flight();
                    peak.fetch_max(now, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(5));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 2, "cap violated: {}", peak.load(Ordering::Relaxed));
    }

    #[test]
    fn dropping_guard_frees_the_slot() {
        let (w, r) = channel(4);
        w.try_write(StepData::new(0)).unwrap();
        w.try_write(StepData::new(1)).unwrap();
        let sched = ScheduledReader::new(r, PullPolicy::fifo());
        let (g, meta, _) = sched.pull().unwrap();
        assert_eq!(meta.step, 0);
        assert_eq!(sched.in_flight(), 1);
        drop(g);
        assert_eq!(sched.in_flight(), 0);
        let (_g, meta, _) = sched.pull().unwrap();
        assert_eq!(meta.step, 1);
    }

    #[test]
    fn closed_channel_releases_slot_and_returns_none() {
        let (w, r) = channel(4);
        drop(w);
        let sched = ScheduledReader::new(r, PullPolicy::fifo());
        sched.inner.source.close();
        assert!(sched.pull().is_none());
        assert_eq!(sched.in_flight(), 0);
    }

    #[test]
    fn timeout_while_waiting_for_slot_returns_none() {
        let (w, r) = channel(4);
        w.try_write(StepData::new(0)).unwrap();
        w.try_write(StepData::new(1)).unwrap();
        let sched = ScheduledReader::new(r, PullPolicy::fifo());
        let (_hold, _, _) = sched.pull().unwrap(); // occupies the only slot
        assert!(sched.pull_timeout(Duration::from_millis(20)).is_none());
    }
}
