//! Server-directed pulls for the threaded runtime.
//!
//! [`ScheduledReader`] wraps a [`Reader`] and enforces a [`PullPolicy`]
//! across any number of consumer threads: a pull slot must be acquired
//! before data moves, and is held (via an RAII guard) until the consumer
//! finishes with the payload — bounding how much bulk data is in flight
//! at once, which is how DataStager keeps bulk movement from perturbing
//! the interconnect.

use std::sync::Arc;
use std::time::Duration;

use adios::StepData;
use parking_lot::{Condvar, Mutex};

use crate::channel::{Reader, StepMeta};
use crate::clock::{to_sim, Clock};
use crate::scheduler::PullPolicy;

struct SchedState {
    in_flight: usize,
}

struct Inner {
    reader: Reader,
    policy: PullPolicy,
    state: Mutex<SchedState>,
    slot_free: Condvar,
    clock: Arc<dyn Clock>,
}

/// A policy-enforcing, clonable reader handle.
#[derive(Clone)]
pub struct ScheduledReader {
    inner: Arc<Inner>,
}

/// RAII pull slot: while alive, the pull counts against the policy's
/// concurrency cap.
pub struct PullGuard {
    inner: Arc<Inner>,
}

impl Drop for PullGuard {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.in_flight -= 1;
        self.inner.slot_free.notify_one();
    }
}

impl ScheduledReader {
    /// Wraps a reader with a pull policy.
    pub fn new(reader: Reader, policy: PullPolicy) -> ScheduledReader {
        let clock = reader.clock();
        ScheduledReader {
            inner: Arc::new(Inner {
                reader,
                policy,
                state: Mutex::new(SchedState { in_flight: 0 }),
                slot_free: Condvar::new(),
                clock,
            }),
        }
    }

    /// Pulls currently in flight (guards alive).
    pub fn in_flight(&self) -> usize {
        self.inner.state.lock().in_flight
    }

    /// Acquires a pull slot (blocking while the policy's cap is reached),
    /// then pulls the next step. Returns `None` when the channel is closed
    /// and drained.
    pub fn pull(&self) -> Option<(PullGuard, StepMeta, StepData)> {
        {
            let mut st = self.inner.state.lock();
            while !self.inner.policy.may_start(st.in_flight) {
                self.inner.slot_free.wait(&mut st);
            }
            st.in_flight += 1;
        }
        match self.inner.reader.pull() {
            Some((meta, data)) => Some((PullGuard { inner: self.inner.clone() }, meta, data)),
            None => {
                let mut st = self.inner.state.lock();
                st.in_flight -= 1;
                self.inner.slot_free.notify_one();
                None
            }
        }
    }

    /// As [`ScheduledReader::pull`] but gives up after `timeout` waiting
    /// for data (a held slot is released on timeout).
    pub fn pull_timeout(&self, timeout: Duration) -> Option<(PullGuard, StepMeta, StepData)> {
        {
            // Deadline arithmetic on the channel's clock, not Instant math:
            // under a manual clock the slot wait passes virtually.
            let deadline = self.inner.clock.now() + to_sim(timeout);
            let mut st = self.inner.state.lock();
            while !self.inner.policy.may_start(st.in_flight) {
                let now = self.inner.clock.now();
                if now >= deadline {
                    return None;
                }
                let slice = self.inner.clock.block_slice(deadline.since(now));
                self.inner.slot_free.wait_for(&mut st, slice);
            }
            st.in_flight += 1;
        }
        match self.inner.reader.pull_timeout(timeout) {
            Some((meta, data)) => Some((PullGuard { inner: self.inner.clone() }, meta, data)),
            None => {
                let mut st = self.inner.state.lock();
                st.in_flight -= 1;
                self.inner.slot_free.notify_one();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn greedy_policy_never_blocks_slots() {
        let (w, r) = channel(16);
        for i in 0..4 {
            w.try_write(StepData::new(i)).unwrap();
        }
        let sched = ScheduledReader::new(r, PullPolicy::Greedy);
        let mut guards = Vec::new();
        for _ in 0..4 {
            let (g, _, _) = sched.pull().unwrap();
            guards.push(g);
        }
        assert_eq!(sched.in_flight(), 4);
    }

    #[test]
    fn scheduled_policy_caps_concurrent_pulls() {
        let (w, r) = channel(16);
        for i in 0..8 {
            w.try_write(StepData::new(i)).unwrap();
        }
        let sched = ScheduledReader::new(r, PullPolicy::Scheduled { max_concurrent: 2 });
        let peak = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for _ in 0..4 {
            let sched = sched.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                while let Some((_guard, _, _)) =
                    sched.pull_timeout(Duration::from_millis(50))
                {
                    let now = sched.in_flight();
                    peak.fetch_max(now, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(5));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 2, "cap violated: {}", peak.load(Ordering::Relaxed));
    }

    #[test]
    fn dropping_guard_frees_the_slot() {
        let (w, r) = channel(4);
        w.try_write(StepData::new(0)).unwrap();
        w.try_write(StepData::new(1)).unwrap();
        let sched = ScheduledReader::new(r, PullPolicy::fifo());
        let (g, meta, _) = sched.pull().unwrap();
        assert_eq!(meta.step, 0);
        assert_eq!(sched.in_flight(), 1);
        drop(g);
        assert_eq!(sched.in_flight(), 0);
        let (_g, meta, _) = sched.pull().unwrap();
        assert_eq!(meta.step, 1);
    }

    #[test]
    fn closed_channel_releases_slot_and_returns_none() {
        let (w, r) = channel(4);
        drop(w);
        let sched = ScheduledReader::new(r, PullPolicy::fifo());
        sched.inner.reader.close();
        assert!(sched.pull().is_none());
        assert_eq!(sched.in_flight(), 0);
    }

    #[test]
    fn timeout_while_waiting_for_slot_returns_none() {
        let (w, r) = channel(4);
        w.try_write(StepData::new(0)).unwrap();
        w.try_write(StepData::new(1)).unwrap();
        let sched = ScheduledReader::new(r, PullPolicy::fifo());
        let (_hold, _, _) = sched.pull().unwrap(); // occupies the only slot
        assert!(sched.pull_timeout(Duration::from_millis(20)).is_none());
    }
}
