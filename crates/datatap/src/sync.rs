//! Sync primitives behind the `--cfg loom` seam.
//!
//! The channel's pause/resume protocol is the one place in the transport
//! where threads coordinate through a mutex/condvar pair, so it is the
//! one place worth model-checking. Building with `RUSTFLAGS="--cfg loom"`
//! swaps `parking_lot` for the loom stand-in, whose primitives inject
//! seeded preemption points so `loom::model` can explore interleavings
//! (see `tests/loom_channel.rs` and ci.sh's loom job). The two export
//! sets are API-compatible: non-poisoning `lock()`, condvar waits by
//! `&mut MutexGuard`.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};

#[cfg(not(loom))]
pub(crate) use parking_lot::{Condvar, Mutex};
