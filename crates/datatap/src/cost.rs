//! Calibrated timing constants for the simulated transport.
//!
//! The DES experiments simulate every protocol message individually through
//! `simnet`; what this module supplies is the *software* costs layered on
//! top of wire time — endpoint handshakes during replica setup, queue-drain
//! behaviour during writer pause — expressed as simple closed forms so unit
//! tests and the microbenchmark harnesses can reason about expected totals.

use sim_core::SimDuration;

/// Software-side costs of transport operations.
#[derive(Clone, Copy, Debug)]
pub struct TransportCosts {
    /// Software time to set up one writer↔reader endpoint pair during a
    /// container resize (metadata registration, buffer pinning). Charged per
    /// (new replica × peer) pair on top of the control-message wire time.
    pub endpoint_setup: SimDuration,
    /// Fixed software cost for a writer to enter/leave the paused state.
    pub pause_toggle: SimDuration,
    /// Per-step bookkeeping cost at the reader when a pull completes.
    pub pull_bookkeeping: SimDuration,
}

impl Default for TransportCosts {
    fn default() -> Self {
        TransportCosts {
            endpoint_setup: SimDuration::from_micros(120),
            pause_toggle: SimDuration::from_micros(15),
            pull_bookkeeping: SimDuration::from_micros(8),
        }
    }
}

impl TransportCosts {
    /// Total software cost of wiring `new_replicas` fresh replicas to
    /// `peers` existing endpoints (the metadata exchange the paper found to
    /// dominate the increase operation).
    pub fn metadata_exchange(&self, new_replicas: u32, peers: u32) -> SimDuration {
        self.endpoint_setup * (new_replicas as u64 * peers as u64)
    }

    /// Time for a paused writer's announced-but-unpulled backlog to drain at
    /// the given pull bandwidth.
    ///
    /// Routed through [`sim_core::widemath`] with ceiling division:
    /// `queued_bytes * 1e9` overflows `u64` already at ~18.4 GB of backlog
    /// (silently saturating pre-fix), and truncation would round a
    /// sub-nanosecond drain to zero. Results past `u64::MAX` nanoseconds
    /// clamp.
    pub fn drain_time(&self, queued_bytes: u64, bandwidth_bps: u64) -> SimDuration {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        let ns = sim_core::widemath::mul_div_ceil(queued_bytes, 1_000_000_000, bandwidth_bps);
        self.pause_toggle + SimDuration::from_nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_exchange_scales_with_pairs() {
        let c = TransportCosts::default();
        let one = c.metadata_exchange(1, 4);
        let four = c.metadata_exchange(4, 4);
        assert_eq!(four, one * 4);
        assert_eq!(c.metadata_exchange(0, 100), SimDuration::ZERO);
    }

    #[test]
    fn drain_time_proportional_to_backlog() {
        let c = TransportCosts::default();
        let empty = c.drain_time(0, 1_600_000_000);
        assert_eq!(empty, c.pause_toggle);
        let one_gb = c.drain_time(1_600_000_000, 1_600_000_000);
        assert_eq!(one_gb, c.pause_toggle + SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        TransportCosts::default().drain_time(1, 0);
    }

    #[test]
    fn drain_time_does_not_saturate_for_huge_backlogs() {
        let c = TransportCosts::default();
        // Pre-fix, backlog * 1e9 saturated u64 at ~18.4 GB and every larger
        // backlog drained in the same time.
        let t20 = c.drain_time(20_000_000_000, 1_000_000_000);
        let t40 = c.drain_time(40_000_000_000, 1_000_000_000);
        assert_eq!(t40 - c.pause_toggle, (t20 - c.pause_toggle) * 2);
        // Sub-nanosecond drains round up, not down to zero.
        let tiny = c.drain_time(1, 8_000_000_000);
        assert_eq!(tiny, c.pause_toggle + SimDuration::from_nanos(1));
        // u64::MAX backlog clamps instead of wrapping.
        let huge = c.drain_time(u64::MAX, 1);
        assert_eq!(huge, c.pause_toggle + SimDuration::from_nanos(u64::MAX));
    }
}
