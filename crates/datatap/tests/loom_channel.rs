#![cfg(loom)]
//! Model-check suite for the channel's pause/resume protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (ci.sh's loom job), which
//! swaps the channel's mutex/condvar for the loom stand-in via
//! `datatap::sync`. Each `loom::model` call replays its closure under many
//! seeded preemption schedules; the properties checked are the protocol's
//! deadlock and lost-step classes:
//!
//! * a pause must not return before every announced step drains,
//! * a writer blocked by pause must always see the resume wakeup,
//! * a close or fail must unblock a draining pause — and must surface as
//!   a typed [`PauseAborted`], never as a success-shaped count,
//! * a resume racing a draining pause must not reopen the write gate
//!   mid-drain (a refilled queue would stall the pauser indefinitely).
//!
//! The vendored loom is a bounded stress search, not an exhaustive proof:
//! failures are real protocol bugs, passes are probabilistic.

use adios::StepData;
use datatap::{channel, PauseAborted, WriteError};
use loom::thread;

fn step(ix: u64) -> StepData {
    StepData::new(ix)
}

#[test]
fn pause_waits_for_full_drain() {
    loom::model(|| {
        let (w, r) = channel(4);
        for i in 0..2 {
            w.try_write(step(i)).expect("capacity 4 holds 2 steps");
        }
        let w2 = w.clone();
        let pauser = thread::spawn(move || w2.pause());
        let reader = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                let (m, _) = r.pull().expect("two steps were announced");
                got.push(m.step);
            }
            (r, got)
        });
        let (r, got) = reader.join().expect("reader thread");
        assert_eq!(got, vec![0, 1], "announced order is pull order");
        // pause() reports the backlog at the instant it engages — the
        // reader may already have drained some of it.
        let drained = pauser.join().expect("pauser thread").expect("drain completes");
        assert!(drained <= 2);
        // After pause returns the channel is quiesced: paused and empty.
        assert!(w.is_paused());
        assert_eq!(r.queued(), 0, "pause returned before the drain finished");
        assert_eq!(w.try_write(step(9)).unwrap_err(), WriteError::Paused);
    });
}

#[test]
fn pause_resume_never_loses_a_wakeup() {
    loom::model(|| {
        let (w, r) = channel(1);
        let w2 = w.clone();
        let writer = thread::spawn(move || w2.write(step(7)).map(|m| m.step));
        let pauser = thread::spawn(move || {
            let drained = w.pause();
            w.resume();
            drained
        });
        // Whatever the interleaving — write before pause (pause drains
        // through our pull), pause before write (resume must wake the
        // blocked writer) — the step lands and nobody deadlocks.
        let (m, _) = r.pull().expect("the write always completes");
        assert_eq!(m.step, 7);
        assert_eq!(writer.join().expect("writer thread").expect("write succeeds"), 7);
        assert!(pauser.join().expect("pauser thread").expect("drain completes") <= 1);
    });
}

#[test]
fn close_aborts_a_draining_pause_with_a_typed_outcome() {
    loom::model(|| {
        let (w, r) = channel(4);
        w.try_write(step(0)).expect("capacity 4 holds 1 step");
        let w2 = w.clone();
        let pauser = thread::spawn(move || w2.pause());
        let closer = thread::spawn(move || {
            r.close();
            r
        });
        // Nobody pulls, so the drain can only end via the close — and that
        // must be distinguishable from a completed drain.
        assert_eq!(
            pauser.join().expect("pauser thread"),
            Err(PauseAborted::Closed { remaining: 1 }),
            "an aborted drain must not look like success"
        );
        let r = closer.join().expect("closer thread");
        // Buffered data is still drainable after close.
        assert!(r.pull().is_some());
        assert!(r.pull().is_none());
    });
}

#[test]
fn fail_aborts_a_draining_pause_with_a_typed_outcome() {
    loom::model(|| {
        let (w, r) = channel(4);
        w.try_write(step(0)).expect("capacity 4 holds 1 step");
        let w2 = w.clone();
        let pauser = thread::spawn(move || w2.pause());
        let failer = thread::spawn(move || w.fail("injected crash"));
        // The drain can only end via the failure; the buffered step was
        // discarded, so success would be a silent lost step.
        assert_eq!(
            pauser.join().expect("pauser thread"),
            Err(PauseAborted::Failed("injected crash")),
            "a failed drain must not look like success"
        );
        assert_eq!(failer.join().expect("failer thread"), 1, "one step was lost");
        assert!(r.pull().is_none(), "pull on a failed channel returns");
    });
}

#[test]
fn resume_cannot_reopen_the_gate_mid_drain() {
    loom::model(|| {
        let (w, r) = channel(4);
        w.try_write(step(0)).expect("capacity 4 holds 1 step");
        let w_pause = w.clone();
        let pauser = thread::spawn(move || w_pause.pause());
        // Wait for the pause to engage before racing anything against it:
        // the gate cannot drop until the puller (spawned below) drains the
        // queue, so this spin terminates and every schedule exercises the
        // resume/write-racing-an-active-drain interleavings.
        while !w.is_paused() {
            thread::yield_now();
        }
        let w_resume = w.clone();
        let resumer = thread::spawn(move || w_resume.resume());
        let w_refill = w.clone();
        // A writer racing the pause/resume pair: it must never slip a step
        // in while the drain is still waiting for the queue to empty.
        let refiller = thread::spawn(move || w_refill.try_write(step(1)));
        let puller = thread::spawn(move || {
            let (m, _) = r.pull().expect("the announced step drains");
            (r, m.step)
        });
        let drained = pauser.join().expect("pauser thread").expect("drain completes");
        assert!(drained <= 1);
        resumer.join().expect("resumer thread");
        let (r, first) = puller.join().expect("puller thread");
        assert_eq!(first, 0);
        // Whatever the refiller saw — Paused (gate held) or Ok (it ran
        // after the drain finished and the resume landed) — the pauser's
        // contract held: when pause() returned Ok, the queue held nothing
        // announced before the drain completed. A refill that succeeded
        // must have happened after the gate dropped, so at most one step
        // remains now.
        match refiller.join().expect("refiller thread") {
            Ok(m) => {
                assert_eq!(m.step, 1);
                assert_eq!(r.queued(), 1);
            }
            Err(e) => {
                assert_eq!(e, WriteError::Paused);
                assert_eq!(r.queued(), 0);
            }
        }
    });
}
