#![cfg(loom)]
//! Model-check suite for the channel's pause/resume protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (ci.sh's loom job), which
//! swaps the channel's mutex/condvar for the loom stand-in via
//! `datatap::sync`. Each `loom::model` call replays its closure under many
//! seeded preemption schedules; the properties checked are the protocol's
//! deadlock classes:
//!
//! * a pause must not return before every announced step drains,
//! * a writer blocked by pause must always see the resume wakeup,
//! * a close must unblock a pause that is still draining.
//!
//! The vendored loom is a bounded stress search, not an exhaustive proof:
//! failures are real protocol bugs, passes are probabilistic.

use adios::StepData;
use datatap::{channel, WriteError};
use loom::thread;

fn step(ix: u64) -> StepData {
    StepData::new(ix)
}

#[test]
fn pause_waits_for_full_drain() {
    loom::model(|| {
        let (w, r) = channel(4);
        for i in 0..2 {
            w.try_write(step(i)).expect("capacity 4 holds 2 steps");
        }
        let w2 = w.clone();
        let pauser = thread::spawn(move || w2.pause());
        let reader = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                let (m, _) = r.pull().expect("two steps were announced");
                got.push(m.step);
            }
            (r, got)
        });
        let (r, got) = reader.join().expect("reader thread");
        assert_eq!(got, vec![0, 1], "announced order is pull order");
        // pause() reports the backlog at the instant it engages — the
        // reader may already have drained some of it.
        assert!(pauser.join().expect("pauser thread") <= 2);
        // After pause returns the channel is quiesced: paused and empty.
        assert!(w.is_paused());
        assert_eq!(r.queued(), 0, "pause returned before the drain finished");
        assert_eq!(w.try_write(step(9)).unwrap_err(), WriteError::Paused);
    });
}

#[test]
fn pause_resume_never_loses_a_wakeup() {
    loom::model(|| {
        let (w, r) = channel(1);
        let w2 = w.clone();
        let writer = thread::spawn(move || w2.write(step(7)).map(|m| m.step));
        let pauser = thread::spawn(move || {
            let drained = w.pause();
            w.resume();
            drained
        });
        // Whatever the interleaving — write before pause (pause drains
        // through our pull), pause before write (resume must wake the
        // blocked writer) — the step lands and nobody deadlocks.
        let (m, _) = r.pull().expect("the write always completes");
        assert_eq!(m.step, 7);
        assert_eq!(writer.join().expect("writer thread").expect("write succeeds"), 7);
        assert!(pauser.join().expect("pauser thread") <= 1);
    });
}

#[test]
fn close_unblocks_a_draining_pause() {
    loom::model(|| {
        let (w, r) = channel(4);
        w.try_write(step(0)).expect("capacity 4 holds 1 step");
        let w2 = w.clone();
        let pauser = thread::spawn(move || w2.pause());
        let closer = thread::spawn(move || {
            r.close();
            r
        });
        // pause() reported the backlog it found, then either drained or
        // was released by the close — it must not hang.
        assert_eq!(pauser.join().expect("pauser thread"), 1);
        let r = closer.join().expect("closer thread");
        // Buffered data is still drainable after close.
        assert!(r.pull().is_some());
        assert!(r.pull().is_none());
    });
}
