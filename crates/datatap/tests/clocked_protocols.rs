//! Deterministic regression tests for the transport's two protocol
//! contracts fixed alongside the streaming engine:
//!
//! * [`Writer::pause`] returns a **typed drain outcome** — an abort by
//!   close or failure is `Err(PauseAborted)`, never a success-shaped
//!   count — and the write gate survives a concurrent resume until the
//!   drain finishes;
//! * [`ScheduledReader::pull_timeout`] charges slot-wait time and
//!   data-wait time against **one** budget, so the total block time never
//!   exceeds the caller's timeout on the channel's clock.
//!
//! Everything here runs on injected clocks ([`ManualClock`] or the
//! hand-sequenced [`HandoffClock`]), so the assertions are exact virtual
//! time equalities, not sleep-based approximations.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use adios::StepData;
use datatap::{
    channel_with_clock, Clock, ManualClock, PauseAborted, PullPolicy, ScheduledReader, WriteError,
};
use sim_core::{SimDuration, SimTime};

fn step(ix: u64) -> StepData {
    StepData::new(ix)
}

// --- Writer::pause typed outcome -----------------------------------------

#[test]
fn pause_aborted_by_fail_is_an_error_not_a_count() {
    let (w, _r) = channel_with_clock(4, Arc::new(ManualClock::new()));
    w.try_write(step(0)).unwrap();
    w.try_write(step(1)).unwrap();
    let w_pause = w.clone();
    let pauser = thread::spawn(move || w_pause.pause());
    // Nobody pulls: the drain can only end through the failure, whatever
    // the interleaving (fail before or after the pause engages).
    assert_eq!(w.fail("node crash"), 2, "both buffered steps are lost");
    assert_eq!(
        pauser.join().unwrap(),
        Err(PauseAborted::Failed("node crash")),
        "a decrease protocol must see the lost steps, not a drained count"
    );
}

#[test]
fn pause_on_an_already_failed_channel_aborts_immediately() {
    let (w, _r) = channel_with_clock(4, Arc::new(ManualClock::new()));
    w.try_write(step(0)).unwrap();
    w.fail("power loss");
    assert_eq!(w.pause(), Err(PauseAborted::Failed("power loss")));
}

#[test]
fn pause_aborted_by_close_reports_the_undrained_backlog() {
    let (w, r) = channel_with_clock(4, Arc::new(ManualClock::new()));
    w.try_write(step(0)).unwrap();
    w.try_write(step(1)).unwrap();
    w.try_write(step(2)).unwrap();
    let w_pause = w.clone();
    let pauser = thread::spawn(move || w_pause.pause());
    // Nobody pulls: the drain can only end through the close.
    r.close();
    assert_eq!(pauser.join().unwrap(), Err(PauseAborted::Closed { remaining: 3 }));
    // The closing reader can still drain the backlog the pause reported.
    assert!(r.pull().is_some());
}

#[test]
fn pause_after_clean_drain_still_succeeds_when_closed_late() {
    let (w, r) = channel_with_clock(2, Arc::new(ManualClock::new()));
    w.try_write(step(0)).unwrap();
    let w_pause = w.clone();
    let pauser = thread::spawn(move || w_pause.pause());
    // Drain completes; the close arriving afterwards must not turn the
    // already-successful drain into an abort.
    let (m, _) = r.pull().unwrap();
    assert_eq!(m.step, 0);
    assert_eq!(pauser.join().unwrap(), Ok(1));
    r.close();
    assert_eq!(w.try_write(step(1)).unwrap_err(), WriteError::Closed);
}

#[test]
fn resume_during_pause_cannot_reopen_the_write_gate() {
    let (w, r) = channel_with_clock(4, Arc::new(ManualClock::new()));
    w.try_write(step(0)).unwrap();
    let w_pause = w.clone();
    let pauser = thread::spawn(move || w_pause.pause());
    // Wait until the drain engages; it cannot finish before we pull, so
    // this spin terminates and the gate is observably held.
    while !w.is_paused() {
        thread::yield_now();
    }
    // A resume racing the active drain clears the paused flag…
    w.resume();
    // …but the write gate must survive until the drain completes:
    // otherwise this write would refill the queue and stall the pauser
    // indefinitely.
    assert_eq!(
        w.try_write(step(1)).unwrap_err(),
        WriteError::Paused,
        "the drain gate must hold across a concurrent resume"
    );
    assert!(w.is_paused(), "the channel is still quiescing");
    let (m, _) = r.pull().unwrap();
    assert_eq!(m.step, 0);
    assert_eq!(pauser.join().unwrap(), Ok(1), "the drain completed cleanly");
    // The resume already landed, so the channel comes out unpaused and
    // writable.
    assert!(!w.is_paused());
    assert_eq!(w.try_write(step(2)).unwrap().step, 2);
    assert_eq!(r.queued(), 1);
}

// --- ScheduledReader::pull_timeout single budget --------------------------

/// A clock for sequencing a partial slot wait deterministically. The
/// first blocking wait advances virtual time by `first_advance` and
/// signals the test (it cannot park here — `block_slice` runs with the
/// wait's mutex held); it returns a generous *real* wait that the test
/// interrupts by freeing the pull slot (condvar notify). Until the test
/// calls [`HandoffClock::release`], further waits leave virtual time
/// untouched (absorbing any spurious wakeup); after `release`, they jump
/// to the deadline like [`ManualClock`] does.
struct HandoffClock {
    now: ManualClock,
    first_advance: SimDuration,
    waited: mpsc::Sender<()>,
    first_done: std::sync::atomic::AtomicBool,
    released: std::sync::atomic::AtomicBool,
}

impl HandoffClock {
    fn new(first_advance: SimDuration) -> (Arc<HandoffClock>, mpsc::Receiver<()>) {
        let (waited_tx, waited_rx) = mpsc::channel();
        let clock = Arc::new(HandoffClock {
            now: ManualClock::new(),
            first_advance,
            waited: waited_tx,
            first_done: std::sync::atomic::AtomicBool::new(false),
            released: std::sync::atomic::AtomicBool::new(false),
        });
        (clock, waited_rx)
    }

    /// After this, blocked waits jump virtual time to their deadline.
    fn release(&self) {
        self.released.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

impl Clock for HandoffClock {
    fn now(&self) -> SimTime {
        self.now.now()
    }

    fn block_slice(&self, remaining: SimDuration) -> Duration {
        use std::sync::atomic::Ordering;
        if !self.first_done.swap(true, Ordering::SeqCst) {
            // First wait: consume part of the budget, hand control to the
            // test, and let the condvar really wait (the test's notify
            // interrupts it long before this bound).
            self.now.advance(self.first_advance.min(remaining));
            self.waited.send(()).expect("test is listening");
            Duration::from_secs(5)
        } else if self.released.load(Ordering::SeqCst) {
            // Jump to the deadline, as a manual clock would.
            self.now.advance(remaining);
            Duration::ZERO
        } else {
            // Spurious wakeup before the test acted: no virtual progress.
            Duration::from_secs(5)
        }
    }
}

/// The regression the fix pins: a slot wait that consumes part of the
/// budget must leave the inner data wait only the remainder. The old code
/// handed the inner pull a fresh full timeout, so the total virtual block
/// time came to `slot wait + timeout` — up to 2× the caller's timeout.
#[test]
fn pull_timeout_total_block_time_is_bounded_by_the_timeout() {
    let (clock, waited) = HandoffClock::new(SimDuration::from_secs(4));
    let (w, r) = channel_with_clock(4, clock.clone());
    w.try_write(step(0)).unwrap();
    let sched = ScheduledReader::new(r, PullPolicy::fifo());
    // Occupy the only pull slot.
    let (guard, m, _) = sched.pull().expect("slot free, data present");
    assert_eq!(m.step, 0);

    let sched2 = sched.clone();
    let puller = thread::spawn(move || sched2.pull_timeout(Duration::from_secs(10)));
    // The puller blocks on the slot; its first wait advances virtual time
    // to t=4s (4 of the 10s budget spent) and really waits until we drop
    // the guard (the notify interrupts the wait).
    waited.recv().expect("puller reached the slot wait");
    clock.release();
    drop(guard);

    // The puller now acquires the slot at t=4s with an empty channel. The
    // inner data wait must get only the remaining 6s: total virtual time
    // lands exactly on start + timeout, not start + 4s + timeout.
    assert!(puller.join().unwrap().is_none(), "no data ever arrived");
    assert_eq!(
        clock.now(),
        SimTime::from_secs(10),
        "slot wait and data wait must share one 10s budget"
    );
    assert_eq!(sched.in_flight(), 0, "the timed-out pull released its slot");
}

/// When the slot wait consumes the whole budget, the pull must give up at
/// the deadline without touching the inner data wait at all.
#[test]
fn pull_timeout_expiring_in_the_slot_wait_returns_at_the_deadline() {
    let (clock, waited) = HandoffClock::new(SimDuration::from_secs(10));
    let (w, r) = channel_with_clock(4, clock.clone());
    w.try_write(step(0)).unwrap();
    let sched = ScheduledReader::new(r, PullPolicy::fifo());
    let (guard, _, _) = sched.pull().expect("slot free, data present");

    let sched2 = sched.clone();
    let puller = thread::spawn(move || sched2.pull_timeout(Duration::from_secs(10)));
    // The first wait burns the entire 10s budget, then we free the slot:
    // the puller may acquire it, but the deadline has already passed, so
    // it must return None at exactly t=10s instead of granting the inner
    // pull a fresh budget (the old behaviour: None at t=20s).
    waited.recv().expect("puller reached the slot wait");
    clock.release();
    drop(guard);

    assert!(puller.join().unwrap().is_none());
    assert_eq!(
        clock.now(),
        SimTime::from_secs(10),
        "an expired deadline must not buy the inner pull a fresh budget"
    );
    assert_eq!(sched.in_flight(), 0);
}

/// Data arriving within the remaining budget is still delivered — the
/// tightened deadline only trims the wait, it does not drop live steps.
#[test]
fn pull_timeout_remaining_budget_still_delivers_data() {
    let (clock, waited) = HandoffClock::new(SimDuration::from_secs(4));
    let (w, r) = channel_with_clock(4, clock.clone());
    w.try_write(step(0)).unwrap();
    let sched = ScheduledReader::new(r, PullPolicy::fifo());
    let (guard, _, _) = sched.pull().expect("slot free, data present");

    let sched2 = sched.clone();
    let puller = thread::spawn(move || {
        sched2.pull_timeout(Duration::from_secs(10)).map(|(_, m, _)| m.step)
    });
    waited.recv().expect("puller reached the slot wait");
    // Supply data BEFORE freeing the slot, so when the puller acquires it
    // at t=4s the step is already there: the pull must succeed within the
    // remaining budget without any further virtual wait. (The clock is
    // never released — a spurious wakeup makes no virtual progress.)
    w.try_write(step(7)).unwrap();
    drop(guard);

    assert_eq!(puller.join().unwrap(), Some(7));
    assert_eq!(clock.now(), SimTime::from_secs(4), "no further virtual wait was needed");
}
