//! Schedule-invariance checking: a race detector for the simulated pipeline.
//!
//! A discrete-event model is only trustworthy if its results do not depend
//! on *incidental* execution order — the order the kernel happens to pick
//! among events scheduled for the same timestamp, the iteration order of
//! its collections, and so on. This module runs the full managed-pipeline
//! experiment twice with identical seeds but a deliberately perturbed
//! same-timestamp tie-break, and compares the hashed event schedules the
//! kernel recorded. A mismatch means some event handler observed the
//! incidental order — the simulation analogue of a data race — and the
//! report pinpoints the first divergent timestamp.
//!
//! The checked configurations are directive-free: an online user directive
//! deliberately does *not* commute with the policy tick it races against
//! (whichever runs first wins, exactly as with a real operator), so
//! directive scenarios are outside the invariance contract.

use sim_core::{Divergence, Sim, TieBreak, Trace};

use crate::experiment::ExperimentConfig;
use crate::pipeline::run_pipeline_in;

/// Outcome of one invariance check: the two schedule hashes and, when they
/// differ, the first divergent timestamp.
#[derive(Debug)]
pub struct InvarianceReport {
    /// The RNG seed both runs shared.
    pub seed: u64,
    /// Schedule hash of the baseline (FIFO tie-break) run.
    pub baseline_hash: u64,
    /// Schedule hash of the perturbed-tie-break run.
    pub perturbed_hash: u64,
    /// Events executed by the baseline run.
    pub events: u64,
    /// The perturbed tie-break that was used.
    pub perturbation: TieBreak,
    /// First divergent timestamp, if the hashes differ.
    pub divergence: Option<Divergence>,
}

impl InvarianceReport {
    /// True iff the two runs executed identical schedules.
    pub fn invariant(&self) -> bool {
        self.baseline_hash == self.perturbed_hash
    }
}

impl std::fmt::Display for InvarianceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.invariant() {
            write!(
                f,
                "seed {}: invariant ({} events, hash {:#018x}, perturbation {:?})",
                self.seed, self.events, self.baseline_hash, self.perturbation
            )
        } else {
            writeln!(
                f,
                "seed {}: SCHEDULE DIVERGENCE under {:?} ({:#018x} vs {:#018x})",
                self.seed, self.perturbation, self.baseline_hash, self.perturbed_hash
            )?;
            match &self.divergence {
                Some(d) => write!(f, "{d}"),
                None => write!(f, "  (hashes differ but buckets match: event-count skew)"),
            }
        }
    }
}

fn traced_run(cfg: ExperimentConfig, tie_break: TieBreak) -> Trace {
    let mut sim = Sim::with_tie_break(cfg.seed, tie_break);
    sim.record_trace();
    run_pipeline_in(&mut sim, cfg);
    sim.take_trace().expect("tracing was enabled")
}

/// Runs `cfg` under FIFO and under `perturbation`, comparing schedules.
///
/// The config should be directive-free (see the module docs); both runs
/// share `cfg.seed`.
pub fn check_config_invariance(
    cfg: ExperimentConfig,
    perturbation: TieBreak,
) -> InvarianceReport {
    let seed = cfg.seed;
    let baseline = traced_run(cfg.clone(), TieBreak::Fifo);
    let perturbed = traced_run(cfg, perturbation);
    InvarianceReport {
        seed,
        baseline_hash: baseline.schedule_hash(),
        perturbed_hash: perturbed.schedule_hash(),
        events: baseline.events(),
        perturbation,
        divergence: baseline.first_divergence(&perturbed),
    }
}

/// Checks the paper's Fig. 7 scenario (directive-free, with transactional
/// trades and launches in play) under LIFO *and* a seed-salted random
/// tie-break; returns the first failing report, or the salted one.
pub fn check_schedule_invariance(seed: u64) -> InvarianceReport {
    let mut cfg = ExperimentConfig::fig7();
    cfg.seed = seed;
    cfg.steps = 40; // long enough for launches, trades and drains to occur

    let lifo = check_config_invariance(cfg.clone(), TieBreak::Lifo);
    if !lifo.invariant() {
        return lifo;
    }
    // Salt derived from the seed so different seeds explore different
    // same-timestamp permutations.
    check_config_invariance(cfg, TieBreak::Salted(seed ^ 0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_schedule_is_invariant_across_seeds() {
        for seed in [7, 1013, 0xC0FFEE] {
            let report = check_schedule_invariance(seed);
            assert!(report.invariant(), "{report}");
            assert!(report.events > 0, "trace must not be empty");
        }
    }

    #[test]
    fn fig8_overload_schedule_is_invariant() {
        let mut cfg = ExperimentConfig::fig8();
        cfg.steps = 30;
        let report = check_config_invariance(cfg, TieBreak::Lifo);
        assert!(report.invariant(), "{report}");
    }

    #[test]
    fn report_displays_hashes() {
        let report = check_schedule_invariance(42);
        let s = report.to_string();
        assert!(s.contains("seed 42"), "{s}");
    }
}
