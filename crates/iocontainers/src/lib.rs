//! # iocontainers — the paper's primary contribution
//!
//! *I/O containers* are run-time abstractions that embed the analytics
//! components of an online I/O pipeline into actively managed execution
//! environments. Each container has a **local manager** that understands
//! its component (compute model, speedup behaviour, monitoring); a
//! **global manager** enforces cross-container SLAs by rebalancing staging
//! nodes between containers, and — when resources are simply insufficient
//! — by taking non-essential containers offline before their queues
//! overflow and block the application, labeling the stored data with its
//! data-processing provenance.
//!
//! The crate provides:
//! * [`ContainerSpec`]/[`ContainerState`] — containers and their
//!   local-manager bookkeeping;
//! * [`protocol`] — the increase/decrease control protocols (Fig. 3
//!   rounds), runnable in isolation for the Figs. 4–5 microbenchmarks;
//! * [`monitor`](MonitorLog) — the flexible monitoring layer (latency
//!   samples, bottleneck detection, action log);
//! * [`policy`](PolicyConfig) — the global manager's pure decision
//!   function: spares first, steal only to complete a remedy, offline as
//!   last resort;
//! * [`pipeline`](run_pipeline) — the full managed-pipeline experiment
//!   engine reproducing Figs. 7–10;
//! * [`Provenance`] — the attribute-borne processing labels;
//! * [`Sla`] — the metrics management is driven by.
//!
//! ## Example
//! ```
//! use iocontainers::{run_pipeline, ExperimentConfig};
//!
//! // The paper's Fig. 7 scenario: 256 simulation + 13 staging nodes.
//! let mut cfg = ExperimentConfig::fig7();
//! cfg.steps = 12; // keep the doctest fast
//! let run = run_pipeline(cfg);
//! // Management stole a node from Helper to grow Bonds.
//! assert!(!run.log.actions().is_empty());
//! ```

#![warn(missing_docs)]

pub mod codec;
mod container;
mod error;
mod experiment;
pub mod invariance;
mod monitor;
mod pipeline;
pub mod policy;
pub mod protocol;
mod provenance;
mod sla;
pub mod threaded;

pub use container::{ContainerId, ContainerSpec, ContainerState, QueuedStep, Status};
pub use error::Error;
pub use experiment::{
    AdmissionControl, ClusterConfig, ConfigError, Directive, Experiment, ExperimentBuilder,
    ExperimentConfig, ExperimentConfigBuilder, VizConfig, WorkloadConfig,
};
pub use monitor::{Action, LatencySample, MonitorConfig, MonitorLog, ResourceSource};
pub use invariance::{check_config_invariance, check_schedule_invariance, InvarianceReport};
pub use pipeline::{
    run_experiment, run_experiment_in, run_pipeline, run_pipeline_in, AdmissionOutcome,
    ExperimentRun, PipelineRun, TenantRun,
};
pub use policy::{PolicyConfig, RecoveryConfig};
pub use protocol::{
    run_decrease, run_increase, run_offline, DecreaseReport, IncreaseReport, OfflineReport,
    ProtocolLayout,
};
pub use provenance::{Provenance, PENDING_OPS, PROCESSED_BY};
pub use sla::{Sla, SlaAttainment};
pub use threaded::{run_threaded, ThreadedAction, ThreadedConfig, ThreadedReport};
