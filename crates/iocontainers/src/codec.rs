//! Conversions between analysis data and ADIOS step records.
//!
//! The threaded pipeline moves real data between containers through the
//! ADIOS write/read interfaces (as the paper's components do), so atom
//! snapshots and analysis outputs must round-trip through [`StepData`].

use std::sync::Arc;

use adios::{AttrValue, DataType, Dims, Group, StepData, Value};
use mdsim::Snapshot;
use smartpointer::{Adjacency, BondsOutput, CSymOutput};

/// The I/O group schema for atom snapshots.
pub fn atoms_group() -> Group {
    let mut g = Group::new("atoms");
    g.define_var("id", DataType::I64)
        .define_var("pos", DataType::F32)
        .define_var("box", DataType::F64);
    g
}

/// Encodes a snapshot as an ADIOS step.
pub fn snapshot_to_step(snap: &Snapshot) -> StepData {
    let g = atoms_group();
    let n = snap.atom_count() as u64;
    let mut step = StepData::new(snap.step);
    let ids: Vec<i64> = snap.ids.iter().map(|&i| i as i64).collect();
    step.write(&g, "id", Value::from_i64(&ids, Dims::local1d(n)).expect("length matches"))
        .expect("schema matches");
    let flat: Vec<f32> = snap.pos.iter().flat_map(|p| p.iter().copied()).collect();
    step.write(&g, "pos", Value::from_f32(&flat, Dims::local1d(3 * n)).expect("length matches"))
        .expect("schema matches");
    step.write(
        &g,
        "box",
        Value::from_f64(&snap.box_len, Dims::local1d(3)).expect("length matches"),
    )
    .expect("schema matches");
    step.set_attr("md_step", AttrValue::Int(snap.md_step as i64));
    step.set_attr("strain", AttrValue::Float(snap.strain));
    step
}

/// Decodes a snapshot from an ADIOS step. Returns `None` if the step does
/// not carry the atoms schema.
pub fn step_to_snapshot(step: &StepData) -> Option<Snapshot> {
    let ids: Vec<u64> =
        step.value("id")?.as_i64().ok()?.iter().map(|&i| i as u64).collect();
    let flat = step.value("pos")?.as_f32().ok()?;
    if flat.len() != ids.len() * 3 {
        return None;
    }
    let pos: Vec<[f32; 3]> = flat.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
    let b = step.value("box")?.as_f64().ok()?;
    let md_step = match step.attr("md_step") {
        Some(AttrValue::Int(i)) => *i as u64,
        _ => 0,
    };
    let strain = match step.attr("strain") {
        Some(AttrValue::Float(x)) => *x,
        _ => 0.0,
    };
    Some(Snapshot {
        step: step.step(),
        md_step,
        box_len: [b[0], b[1], b[2]],
        ids: Arc::new(ids),
        pos: Arc::new(pos),
        strain,
    })
}

/// Encodes Bonds output (the ingested atoms plus the adjacency list) as an
/// ADIOS step — the component's two declared outputs.
pub fn bonds_to_step(out: &BondsOutput) -> StepData {
    let mut step = snapshot_to_step(&out.snapshot);
    let n = out.adjacency.len();
    let mut offsets: Vec<i32> = Vec::with_capacity(n + 1);
    let mut neighbors: Vec<i32> = Vec::new();
    offsets.push(0);
    for i in 0..n {
        neighbors.extend(out.adjacency.neighbors(i).iter().map(|&j| j as i32));
        offsets.push(neighbors.len() as i32);
    }
    step.write_unchecked(
        "adj_offsets",
        Value::from_i32(&offsets, Dims::local1d(offsets.len() as u64)).expect("length matches"),
    );
    step.write_unchecked(
        "adj_neighbors",
        Value::from_i32(&neighbors, Dims::local1d(neighbors.len() as u64))
            .expect("length matches"),
    );
    step.set_attr("bond_cutoff", AttrValue::Float(out.cutoff));
    step
}

/// Decodes Bonds output from an ADIOS step.
pub fn step_to_bonds(step: &StepData) -> Option<BondsOutput> {
    let snapshot = step_to_snapshot(step)?;
    let offsets = step.value("adj_offsets")?.as_i32().ok()?;
    let neighbors = step.value("adj_neighbors")?.as_i32().ok()?;
    if offsets.len() != snapshot.atom_count() + 1 {
        return None;
    }
    let lists: Vec<Vec<u32>> = offsets
        .windows(2)
        .map(|w| neighbors[w[0] as usize..w[1] as usize].iter().map(|&j| j as u32).collect())
        .collect();
    let cutoff = match step.attr("bond_cutoff") {
        Some(AttrValue::Float(x)) => *x,
        _ => 0.0,
    };
    Some(BondsOutput {
        snapshot,
        adjacency: Arc::new(Adjacency::from_lists(&lists)),
        cutoff,
    })
}

/// Encodes CSym output as an ADIOS step (per-atom CSP plus the verdict).
pub fn csym_to_step(out: &CSymOutput) -> StepData {
    let mut step = StepData::new(out.step);
    step.write_unchecked(
        "csp",
        Value::from_f32(&out.csp, Dims::local1d(out.csp.len() as u64)).expect("length matches"),
    );
    step.set_attr("break_detected", AttrValue::Int(out.break_detected as i64));
    step.set_attr("defective_fraction", AttrValue::Float(out.defective_fraction));
    step
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::{MdConfig, MdEngine};
    use smartpointer::Bonds;

    #[test]
    fn snapshot_round_trips() {
        let snap = MdEngine::new(MdConfig::default()).run_epoch(3);
        let step = snapshot_to_step(&snap);
        let back = step_to_snapshot(&step).expect("valid step");
        assert_eq!(*back.ids, *snap.ids);
        assert_eq!(*back.pos, *snap.pos);
        assert_eq!(back.box_len, snap.box_len);
        assert_eq!(back.step, snap.step);
        assert_eq!(back.md_step, snap.md_step);
    }

    #[test]
    fn bonds_round_trips() {
        let snap = MdEngine::new(MdConfig::default()).run_epoch(1);
        let out = Bonds::default().compute(&snap);
        let step = bonds_to_step(&out);
        let back = step_to_bonds(&step).expect("valid step");
        assert_eq!(*back.adjacency, *out.adjacency);
        assert_eq!(back.cutoff, out.cutoff);
        assert_eq!(*back.snapshot.pos, *snap.pos);
    }

    #[test]
    fn empty_step_is_rejected() {
        assert!(step_to_snapshot(&StepData::new(0)).is_none());
        assert!(step_to_bonds(&StepData::new(0)).is_none());
    }

    #[test]
    fn csym_carries_verdict() {
        let snap = MdEngine::new(MdConfig::default()).run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let csym = smartpointer::CSym::default().compute(&bonds);
        let step = csym_to_step(&csym);
        assert_eq!(step.attr("break_detected"), Some(&AttrValue::Int(0)));
        assert_eq!(step.value("csp").unwrap().as_f32().unwrap().len(), snap.atom_count());
    }
}
