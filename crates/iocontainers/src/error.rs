//! The crate's unified public error type.
//!
//! Per-module enums ([`ConfigError`], admission outcomes, engine error
//! strings) stay the precise internal currency; [`Error`] is the one type
//! callers match on at the public boundary. It is `#[non_exhaustive]`
//! so new failure classes (and new variants of the wrapped enums) are not
//! breaking changes.

use crate::experiment::ConfigError;

/// Everything that can go wrong assembling or running an experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A machine-level (cluster) parameter failed validation.
    Config(ConfigError),
    /// One tenant's workload failed validation.
    Workload {
        /// The offending tenant's id.
        tenant: String,
        /// What was wrong with it.
        source: ConfigError,
    },
    /// [`Experiment::builder`](crate::Experiment::builder) was finished
    /// without a [`ClusterConfig`](crate::ClusterConfig).
    NoCluster,
    /// The experiment has a cluster but not a single tenant.
    NoTenants,
    /// Two tenants share an id.
    DuplicateTenant(String),
    /// The tenants' compute partitions sum past the machine.
    ComputeOvercommitted {
        /// Simulation nodes the machine has.
        sim_nodes: u32,
        /// Simulation nodes the tenants requested in total.
        requested: u64,
    },
    /// Admission control rejected a tenant at run time: its held
    /// allocation did not fit the spare staging nodes.
    AdmissionRejected {
        /// The rejected tenant's id.
        tenant: String,
        /// Nodes the tenant's initially-active containers hold.
        held: u32,
        /// Spare staging nodes at evaluation time.
        spare: u32,
    },
    /// The engine recorded invariant violations during the run (broken
    /// resource accounting, impossible allocations); results should not
    /// be trusted.
    Pipeline(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Config(e) => write!(f, "cluster configuration: {e}"),
            Error::Workload { tenant, source } => write!(f, "tenant {tenant:?}: {source}"),
            Error::NoCluster => write!(f, "experiment has no cluster configuration"),
            Error::NoTenants => write!(f, "experiment has no tenants"),
            Error::DuplicateTenant(id) => write!(f, "duplicate tenant id {id:?}"),
            Error::ComputeOvercommitted { sim_nodes, requested } => write!(
                f,
                "tenants request {requested} simulation nodes but the machine has {sim_nodes}"
            ),
            Error::AdmissionRejected { tenant, held, spare } => write!(
                f,
                "tenant {tenant:?} rejected at admission: holds {held} node(s), \
                 {spare} spare"
            ),
            Error::Pipeline(msg) => write!(f, "pipeline engine: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) | Error::Workload { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Error {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_and_sources() {
        let e = Error::Workload {
            tenant: "md-a".to_string(),
            source: ConfigError::ZeroSteps,
        };
        assert!(e.to_string().contains("md-a"));
        assert!(e.source().is_some());
        assert!(Error::NoTenants.source().is_none());
        let from: Error = ConfigError::ZeroBandwidth.into();
        assert_eq!(from, Error::Config(ConfigError::ZeroBandwidth));
        assert!(Error::AdmissionRejected { tenant: "t".into(), held: 13, spare: 4 }
            .to_string()
            .contains("admission"));
    }
}
