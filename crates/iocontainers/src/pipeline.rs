//! The managed-pipeline experiment engine.
//!
//! Runs the paper's end-to-end scenario on the discrete-event kernel: the
//! application emits an output step every cadence; steps flow Helper →
//! Bonds → CSym (→ CNA after the crack-detection branch) through bounded
//! staging queues; containers process steps at their calibrated service
//! times; local managers report latency and queue depth to the global
//! manager, whose policy rebalances nodes or prunes hopeless bottlenecks.
//!
//! Modeling notes (documented deviations, see DESIGN.md):
//! * transfers are charged `bytes/bandwidth + latency` with per-container
//!   ingress serialization (the NIC effect that matters to queueing);
//! * during a resize the target container's intake is paused — upstream
//!   DataTap writers hold data — so steps accumulate and arrive in a
//!   burst afterwards, reproducing the paper's post-increase latency
//!   transient;
//! * a queue overflow marks the run "blocked" (the application would stall
//!   on I/O); data continues to accumulate upstream so the experiment can
//!   still be observed, as the paper's figures do.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sim_core::{shared, Shared, Sim, SimDuration, SimTime};
use simnet::{NodeId, StagingArea};
use simtel::{Category, Telemetry};

use datatap::TransportCosts;
use evpath::{Event, Overlay, StoneId};
use simfault::{Fault, LossSampler};

use d2t::{run_transaction, FaultPlan, TxnConfig};
use simnet::{Network, NetworkConfig};

use crate::container::{ContainerId, ContainerState, QueuedStep, Status};
use crate::error::Error;
use crate::experiment::{
    AdmissionControl, ClusterConfig, Directive, Experiment, ExperimentConfig, WorkloadConfig,
};
use crate::monitor::{Action, LatencySample, MonitorLog, ResourceSource};
use crate::policy::{
    decide_cluster, decide_recovery, ClusterDecision, ContainerView, Decision, FailureView,
    TenantPolicyView,
};
use crate::protocol::estimate;
use crate::provenance::Provenance;
use crate::sla::SlaAttainment;

/// Indices of the containers in pipeline order.
const HELPER: usize = 0;
/// Bonds' index.
const BONDS: usize = 1;
/// CSym's index.
const CSYM: usize = 2;
/// CNA's index.
const CNA: usize = 3;
/// The optional visualization container's index (present only when the
/// configuration enables it).
const VIZ: usize = 4;

/// Per-control-message cost used by the protocol duration estimates.
const PER_MSG: SimDuration = SimDuration::from_micros(10);

/// Result of a pipeline run.
#[derive(Debug)]
pub struct PipelineRun {
    /// The global manager's monitoring log (latency/queue/e2e series and
    /// the action log) — everything the figure harnesses print.
    pub log: MonitorLog,
    /// When the pipeline first blocked (queue overflow), if ever.
    pub blocked_at: Option<SimTime>,
    /// Steps written to disk with provenance because downstream analytics
    /// were offline.
    pub disk_steps: Vec<(u64, Provenance)>,
    /// Whether the crack-detection branch fired.
    pub crack_detected: bool,
    /// Containers offline at the end (by name).
    pub offline: Vec<&'static str>,
    /// Final node count per container (by name).
    pub final_units: Vec<(&'static str, u32)>,
    /// Virtual time when the run drained.
    pub finished_at: SimTime,
    /// Steps fully processed per container (by name).
    pub completed: Vec<(&'static str, u64)>,
    /// Containers still in the crashed state at the end (by name); empty
    /// when recovery resolved every injected failure.
    pub failed: Vec<&'static str>,
    /// Heartbeats the global manager received over the EVPath control
    /// overlay (zero when the fault plan is empty: heartbeating is only
    /// scheduled for fault-injected runs, keeping clean runs' schedules
    /// untouched).
    pub heartbeats_delivered: u64,
    /// Restart attempts spent per container (by name).
    pub restarts: Vec<(&'static str, u32)>,
    /// Engine-internal errors the run survived (broken resource
    /// accounting, impossible allocations) — the same pattern as
    /// [`crate::threaded::ThreadedReport::errors`]: rather than panicking
    /// mid-run, the engine degrades (skips the action, leaves the
    /// container inactive) and records what happened here. Empty on a
    /// clean run; a non-empty list means the configuration or the engine
    /// violated an invariant and the results should not be trusted.
    pub errors: Vec<String>,
    /// The run's telemetry handle (disabled unless the configuration's
    /// [`simtel::TelemetryConfig`] enabled categories). Snapshot it and
    /// feed [`simtel::export`] to produce Perfetto or CSV traces.
    pub telemetry: Telemetry,
}

/// How a tenant's admission resolved over the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// The tenant ran, with its containers online from the given virtual
    /// time ([`SimTime::ZERO`] when it started with the machine).
    Admitted {
        /// When the tenant's containers came online.
        at: SimTime,
    },
    /// The tenant waited in the admission queue and never got in.
    Queued,
    /// Admission control rejected the tenant outright: its initial
    /// allocation did not fit the spare staging nodes.
    Rejected {
        /// Nodes the tenant's initially active containers wanted.
        held: u32,
        /// Spare staging nodes at evaluation time.
        spare: u32,
    },
}

/// One tenant's slice of an [`ExperimentRun`].
#[derive(Debug)]
pub struct TenantRun {
    /// The tenant's id (from its [`WorkloadConfig`]).
    pub id: String,
    /// How admission resolved for this tenant.
    pub admission: AdmissionOutcome,
    /// The tenant's SLA attainment over the run.
    pub attainment: SlaAttainment,
    /// The tenant's full per-pipeline report: its own monitor log, disk
    /// steps, blocked/crack state, final units. `heartbeats_delivered`
    /// and `errors` are machine-global and repeated on every tenant.
    pub run: PipelineRun,
}

/// Result of a multi-tenant [`Experiment`] run.
#[derive(Debug)]
pub struct ExperimentRun {
    /// Per-tenant results, in submission order.
    pub tenants: Vec<TenantRun>,
    /// Virtual time when the whole machine drained.
    pub finished_at: SimTime,
    /// Machine-global engine errors (see [`PipelineRun::errors`]).
    pub errors: Vec<String>,
    /// The machine's telemetry handle.
    pub telemetry: Telemetry,
}

impl ExperimentRun {
    /// The first thing that went wrong, as the crate's public [`Error`]:
    /// an admission rejection, or an engine-invariant violation the run
    /// survived. `None` for a clean run (a queued-but-never-admitted
    /// tenant is visible in its [`TenantRun::admission`], not here).
    pub fn first_error(&self) -> Option<Error> {
        for t in &self.tenants {
            if let AdmissionOutcome::Rejected { held, spare } = t.admission {
                return Some(Error::AdmissionRejected { tenant: t.id.clone(), held, spare });
            }
        }
        self.errors.first().map(|e| Error::Pipeline(e.clone()))
    }
}

impl Experiment {
    /// Runs this experiment to completion on a fresh kernel seeded with
    /// the cluster's seed.
    pub fn run(self) -> ExperimentRun {
        run_experiment(self)
    }
}

/// Internal admission lifecycle (the public report shape is
/// [`AdmissionOutcome`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AdmissionState {
    Admitted { at: SimTime },
    Queued,
    /// The admission protocol is running; leases happen at completion.
    AdmitInFlight,
    Rejected { held: u32, spare: u32 },
}

/// Per-tenant runtime state. The tenant's containers occupy the global
/// container vector's contiguous range `base..base + count`.
struct TenantRt {
    wl: WorkloadConfig,
    base: usize,
    count: usize,
    /// Telemetry name/track prefix (`"<id>/"` in multi-tenant runs, empty
    /// for a single tenant so the exported trace stays byte-identical to
    /// the legacy engine's).
    prefix: String,
    log: MonitorLog,
    admission: AdmissionState,
    crack_detected: bool,
    first_blocked_at: Option<SimTime>,
    disk_steps: Vec<(u64, Provenance)>,
    /// Active message-loss window for this tenant's ingress paths.
    loss: Option<(LossSampler, SimTime)>,
}

struct World {
    cluster: ClusterConfig,
    tenants: Vec<TenantRt>,
    /// Tenant index owning each container (parallel to `containers`).
    tenant_of: Vec<usize>,
    containers: Vec<ContainerState>,
    staging: StagingArea,
    telemetry: Telemetry,
    costs: TransportCosts,
    ingress_free: Vec<SimTime>,
    stalled: Vec<VecDeque<QueuedStep>>,
    /// Steps dispatched to replicas whose completion events are pending;
    /// tracked so an offline action can flush in-flight work to disk.
    in_flight: Vec<Vec<QueuedStep>>,
    action_in_flight: bool,
    last_action_at: SimTime,
    trade_count: u32,
    // Fault injection and recovery state. All of it is inert (and none of
    // it schedules events) when every tenant's fault plan is empty, so a
    // clean run's event schedule is bit-identical to a build without
    // fault injection.
    /// Per-container ingress degradation: (bandwidth factor, latency
    /// factor, expiry). Expires lazily at the next transfer — no events.
    degraded: Vec<Option<(f64, f64, SimTime)>>,
    /// Dispatch epoch per container, bumped when a crash discards the
    /// in-flight set; stale completion events from before the crash carry
    /// the old epoch and are ignored.
    epoch: Vec<u64>,
    /// When each container's local manager last heartbeat.
    heartbeat_last: Vec<SimTime>,
    /// Containers the failure detector has declared dead.
    declared_failed: Vec<bool>,
    /// Restart attempts spent per container.
    restart_attempts: Vec<u32>,
    /// Invariant violations the run survived; surfaced as
    /// [`PipelineRun::errors`].
    errors: Vec<String>,
    /// Control overlay carrying heartbeats to the global manager, with its
    /// terminal stone (created only for fault-injected runs).
    hb_overlay: Option<(Overlay, StoneId)>,
    /// Heartbeats delivered at the overlay's terminal stone.
    hb_delivered: Arc<AtomicU64>,
    /// Reusable buffers for the periodic policy tick (see
    /// [`PolicyScratch`]); taken out with `mem::take` for the duration of
    /// a tick and returned with its heap blocks intact.
    scratch: PolicyScratch,
}

/// Scratch space for [`policy_tick`]. The tick rebuilds the global
/// manager's view of every tenant each round; at steady state that was
/// two fresh `Vec`s plus one `Vec<ContainerView>` per admitted tenant per
/// tick. The buffers live here across rounds instead: `queued` and
/// `tenants` are cleared in place, and each tenant's view vector is
/// drained back into `view_pool` after the decision so the next round
/// pops an already-sized allocation.
#[derive(Default)]
struct PolicyScratch {
    queued: Vec<(u32, u32)>,
    tenants: Vec<TenantPolicyView>,
    view_pool: Vec<Vec<ContainerView>>,
}

type W = Shared<World>;

impl World {
    fn new(ex: Experiment) -> World {
        let Experiment { cluster, workloads } = ex;
        let mut staging = StagingArea::with_nodes(cluster.sim_nodes, cluster.staging_nodes);
        let telemetry = Telemetry::new(cluster.telemetry);
        let multi = workloads.len() > 1;
        let mut errors = Vec::new();
        let mut tenants = Vec::with_capacity(workloads.len());
        let mut containers = Vec::new();
        let mut tenant_of = Vec::new();
        for (t, wl) in workloads.into_iter().enumerate() {
            let prefix = if multi { format!("{}/", wl.id) } else { String::new() };
            let mut log = MonitorLog::with_scoped_telemetry(telemetry.clone(), prefix.clone());
            let specs = wl.container_specs();
            let base = containers.len();
            let count = specs.len();
            // Runtime admission control: the tenant's whole initial
            // allocation must fit the spare pool, or the tenant is
            // rejected/queued as configured. (The legacy engine started
            // overcommitted configs partially; a tenant is now an
            // all-or-nothing unit.)
            let held = wl.held_nodes();
            let spare = staging.spare();
            let admission = if held <= spare {
                AdmissionState::Admitted { at: SimTime::ZERO }
            } else {
                match cluster.admission {
                    AdmissionControl::Queue => AdmissionState::Queued,
                    AdmissionControl::Reject => AdmissionState::Rejected { held, spare },
                }
            };
            let admitted = matches!(admission, AdmissionState::Admitted { .. });
            for (i, spec) in specs.into_iter().enumerate() {
                let id = ContainerId((base + i) as u32);
                log.register(id, spec.name);
                let nodes = if admitted && spec.starts_active {
                    match staging.lease(spec.initial_nodes) {
                        Ok(nodes) => nodes,
                        Err(e) => {
                            // Unreachable once held <= spare, but keep the
                            // downgrade: record, start inactive.
                            errors.push(format!("initial allocation for {}: {e}", spec.name));
                            Vec::new()
                        }
                    }
                } else {
                    Vec::new() // waiting/rejected tenants hold nothing
                };
                let mut st = ContainerState::new(id, spec, nodes);
                if !admitted || (st.spec.starts_active && st.nodes.is_empty()) {
                    st.status = Status::Inactive;
                }
                st.reset_replicas(SimTime::ZERO);
                containers.push(st);
                tenant_of.push(t);
            }
            tenants.push(TenantRt {
                wl,
                base,
                count,
                prefix,
                log,
                admission,
                crack_detected: false,
                first_blocked_at: None,
                disk_steps: Vec::new(),
                loss: None,
            });
        }
        let n = containers.len();
        World {
            cluster,
            tenants,
            tenant_of,
            containers,
            staging,
            telemetry,
            costs: TransportCosts::default(),
            ingress_free: vec![SimTime::ZERO; n],
            stalled: vec![VecDeque::new(); n],
            in_flight: vec![Vec::new(); n],
            action_in_flight: false,
            last_action_at: SimTime::ZERO,
            trade_count: 0,
            degraded: vec![None; n],
            epoch: vec![0; n],
            heartbeat_last: vec![SimTime::ZERO; n],
            declared_failed: vec![false; n],
            restart_attempts: vec![0; n],
            hb_overlay: None,
            hb_delivered: Arc::new(AtomicU64::new(0)),
            scratch: PolicyScratch::default(),
            errors,
        }
    }

    /// Writers feeding container `ix`: a tenant's Helper is fed by its
    /// application partition's output ranks (one writer per 32 simulation
    /// nodes, the aggregation tree's leaf fan-in); everything else by the
    /// upstream container's replicas.
    fn upstream_writers(&self, ix: usize) -> u32 {
        let t = &self.tenants[self.tenant_of[ix]];
        if ix == t.base + HELPER {
            (t.wl.sim_nodes / 32).max(1)
        } else {
            self.containers.get(ix - 1).map_or(1, |c| c.units().max(1))
        }
    }

    /// Leases `count` spare nodes, downgrading an accounting violation
    /// (caller asked for more than the checked spare count) from a panic
    /// to a recorded error plus an empty lease.
    fn lease_or_record(&mut self, count: u32, action: &str) -> Vec<NodeId> {
        match self.staging.lease(count) {
            Ok(nodes) => nodes,
            Err(e) => {
                self.errors.push(format!("{action}: lease of {count} node(s) failed: {e}"));
                Vec::new()
            }
        }
    }

    /// Returns nodes to staging, downgrading an accounting violation
    /// (nodes not owned by the pool) from a panic to a recorded error.
    fn release_or_record(&mut self, nodes: &[NodeId], action: &str) {
        if let Err(e) = self.staging.release(nodes) {
            self.errors
                .push(format!("{action}: release of {} node(s) failed: {e}", nodes.len()));
        }
    }

    /// Ingress transfer time into container `dst` at virtual time `now`.
    ///
    /// The payload term routes through [`sim_core::widemath`] (u128
    /// ceiling division):
    /// `bytes * 1e9` overflows (pre-fix: silently saturates) `u64` already
    /// at ~18.4 GB, and truncation rounded sub-nanosecond transfers to
    /// zero. Results past `u64::MAX` nanoseconds clamp. An active NIC
    /// degradation on `dst` scales bandwidth down and the fixed overhead
    /// up; an active message-loss window may charge one retransmit. Both
    /// expire lazily here, so a faultless run schedules no extra events.
    fn transfer_time_at(&mut self, dst: usize, bytes: u64, now: SimTime) -> SimDuration {
        let mut bw = self.cluster.bandwidth_bps;
        let mut overhead = SimDuration::from_micros(6);
        match self.degraded[dst] {
            Some((bw_factor, lat_factor, until)) if now < until => {
                bw = ((bw as f64 * bw_factor.clamp(f64::MIN_POSITIVE, 1.0)) as u64).max(1);
                overhead = SimDuration::from_secs_f64(overhead.as_secs_f64() * lat_factor.max(1.0));
            }
            Some(_) => self.degraded[dst] = None,
            None => {}
        }
        let ns = sim_core::widemath::mul_div_ceil(bytes, 1_000_000_000, bw);
        let mut xfer = SimDuration::from_nanos(ns) + overhead;
        let loss = &mut self.tenants[self.tenant_of[dst]].loss;
        if loss.as_ref().is_some_and(|(_, until)| now >= *until) {
            *loss = None;
        }
        if let Some((sampler, _)) = loss {
            // A lost announcement is retransmitted after one timeout:
            // the step is never lost, it just pays the transfer twice.
            if sampler.sample() {
                xfer = xfer * 2;
            }
        }
        xfer
    }

    /// The step-accepting containers downstream of `cid` in the data path.
    /// Empty means the pipeline ends here. Helper fans out to both the
    /// analytics chain (Bonds) and, when launched, the visualization
    /// container. Failed and stalled analytics containers still receive
    /// steps — their queues are the recovery path's guarantee that no time
    /// step is lost while the manager reacts.
    fn downstream_targets(&self, cid: usize) -> Vec<usize> {
        let t = &self.tenants[self.tenant_of[cid]];
        let (base, count) = (t.base, t.count);
        let accepts = |ix: usize| self.containers.get(ix).is_some_and(ContainerState::accepts_steps);
        let mut targets = Vec::with_capacity(2);
        match cid - base {
            HELPER => {
                if accepts(base + BONDS) {
                    targets.push(base + BONDS);
                }
                if count > VIZ
                    && self.containers.get(base + VIZ).is_some_and(ContainerState::is_online)
                {
                    targets.push(base + VIZ);
                }
            }
            BONDS => {
                if accepts(base + CSYM) {
                    targets.push(base + CSYM);
                } else if accepts(base + CNA) {
                    targets.push(base + CNA);
                }
            }
            _ => {}
        }
        targets
    }

    /// True for the analytics chain (visualization is a side sink and does
    /// not participate in provenance or the analytics end-to-end path).
    fn is_analytics(&self, cid: usize) -> bool {
        cid - self.tenants[self.tenant_of[cid]].base < VIZ
    }

    /// Provenance for a step exiting at `cid` with downstream pruned
    /// (visualization is excluded: it owes the data nothing). Scoped to
    /// the owning tenant's analytics chain.
    fn provenance_at(&self, cid: usize) -> Provenance {
        let t = &self.tenants[self.tenant_of[cid]];
        let (base, end) = (t.base, t.base + t.count.min(VIZ));
        let local = cid - base;
        let ran: Vec<&str> = self
            .containers
            .get(base..(base + (local + 1)).min(end))
            .unwrap_or(&[])
            .iter()
            .map(|c| c.spec.name)
            .collect();
        let pruned: Vec<&str> = self
            .containers
            .get(base + local + 1..end)
            .unwrap_or(&[])
            .iter()
            .filter(|c| c.owed)
            .map(|c| c.spec.name)
            .collect();
        Provenance::from_split(&ran, &pruned)
    }

    fn queued_bytes(&self, cid: usize) -> u64 {
        self.containers[cid].queue.iter().map(|q| q.bytes).sum()
    }

    /// The `[base, base + count)` window of the flat container vec — one
    /// tenant's containers. The bounds are fixed at construction; an
    /// out-of-range window degrades to an empty slice rather than
    /// panicking.
    fn tenant_slice(&self, base: usize, count: usize) -> &[ContainerState] {
        self.containers.get(base..base + count).unwrap_or(&[])
    }
}

/// Runs one configured experiment to completion.
pub fn run_pipeline(cfg: ExperimentConfig) -> PipelineRun {
    let mut sim = Sim::new(cfg.seed);
    run_pipeline_in(&mut sim, cfg)
}

/// Runs the experiment inside a caller-built kernel — e.g. one with a
/// perturbed tie-break and tracing enabled, as the schedule-invariance
/// checker does. The kernel's RNG seed should normally match `cfg.seed`.
///
/// This is single-tenant sugar over [`run_experiment_in`]: the config is
/// wrapped in [`Experiment::single`] and the sole tenant's report is
/// returned. A single-tenant experiment schedules exactly the events the
/// legacy single-pipeline engine did, so traces stay bit-identical.
pub fn run_pipeline_in(sim: &mut Sim, cfg: ExperimentConfig) -> PipelineRun {
    let mut run = run_experiment_in(sim, Experiment::single(cfg));
    run.tenants.remove(0).run
}

/// Runs a multi-tenant experiment to completion on a fresh kernel seeded
/// with the cluster's seed.
pub fn run_experiment(ex: Experiment) -> ExperimentRun {
    let mut sim = Sim::new(ex.cluster().seed);
    run_experiment_in(&mut sim, ex)
}

/// Runs a multi-tenant experiment inside a caller-built kernel.
pub fn run_experiment_in(sim: &mut Sim, ex: Experiment) -> ExperimentRun {
    let world: W = shared(World::new(ex));
    let telemetry = world.borrow().telemetry.clone();

    // Kernel-category telemetry observes every executed event by label via
    // the kernel's event hook. The hook cannot touch the schedule, so this
    // is schedule-neutral by construction.
    if telemetry.enabled(Category::Kernel) {
        let tel = telemetry.clone();
        sim.set_event_hook(Box::new(move |_at, label| {
            tel.count(Category::Kernel, &format!("kernel.{label}"), 1);
        }));
    }

    // Application output steps, per admitted tenant, in tenant order.
    // Queued tenants emit nothing until admission launches them.
    let n_tenants = world.borrow().tenants.len();
    for t in 0..n_tenants {
        let (admitted, steps, cadence) = {
            let w = world.borrow();
            let tn = &w.tenants[t];
            (
                matches!(tn.admission, AdmissionState::Admitted { .. }),
                tn.wl.steps,
                tn.wl.cadence,
            )
        };
        if !admitted {
            continue;
        }
        for step in 0..steps {
            let w = world.clone();
            sim.schedule_at_named("ioc.emit", SimTime::ZERO + cadence * step, move |sim| {
                emit(sim, &w, t, step)
            });
        }
    }
    // Global-manager policy ticks (bounded, so the run always drains). The
    // tick count covers the slowest non-rejected tenant's emission span —
    // with a single tenant the cluster tick interval equals the tenant
    // cadence, so this reduces to the legacy `1..steps + 30` schedule —
    // doubled when a tenant waits in the admission queue so its post-
    // admission run is still managed.
    let (tick_every, ticks) = {
        let w = world.borrow();
        let tick_every = w.cluster.policy_tick_every;
        let mut span = 0u64;
        let mut any_queued = false;
        for tn in &w.tenants {
            match tn.admission {
                AdmissionState::Rejected { .. } => {}
                _ => {
                    let emit_span = (tn.wl.cadence * tn.wl.steps).as_nanos();
                    span = span.max(emit_span.div_ceil(tick_every.as_nanos().max(1)));
                }
            }
            if matches!(tn.admission, AdmissionState::Queued) {
                any_queued = true;
            }
        }
        (tick_every, if any_queued { span * 2 } else { span })
    };
    for tick in 1..(ticks + 30) {
        let w = world.clone();
        sim.schedule_at_named("ioc.policy_tick", SimTime::ZERO + tick_every * tick, move |sim| {
            policy_tick(sim, &w)
        });
    }
    // Online user directives (admitted tenants only; a queued tenant's
    // directives are scheduled relative to its admission time).
    for t in 0..n_tenants {
        let directives = {
            let w = world.borrow();
            let tn = &w.tenants[t];
            if matches!(tn.admission, AdmissionState::Admitted { .. }) {
                tn.wl.directives.clone()
            } else {
                Vec::new()
            }
        };
        for (at, directive) in directives {
            let w = world.clone();
            sim.schedule_at_named("ioc.directive", SimTime::ZERO + at, move |sim| {
                perform_directive(sim, &w, t, directive)
            });
        }
    }

    // Fault injection + heartbeat-driven recovery. Everything here is
    // gated on every non-rejected tenant's plan being empty: an empty
    // plan schedules NOTHING, so the clean run's event schedule is
    // bit-identical to a build without simfault wired in.
    let fault_tenants: Vec<usize> = {
        let w = world.borrow();
        (0..n_tenants)
            .filter(|&t| {
                !matches!(w.tenants[t].admission, AdmissionState::Rejected { .. })
                    && !w.tenants[t].wl.faults.is_empty()
            })
            .collect()
    };
    if !fault_tenants.is_empty() {
        {
            // Heartbeats are mirrored over an EVPath overlay into the
            // global manager's terminal stone, as the paper's control
            // plane does; the overlay feeds nothing back into the
            // schedule (its counter is read only after the run drains).
            let mut w = world.borrow_mut();
            let overlay = Overlay::new("manager-control");
            let delivered = w.hb_delivered.clone();
            let sink = overlay.add_stone(evpath::Action::Terminal(Box::new(move |ev: Event| {
                if ev.is::<Heartbeat>() {
                    delivered.fetch_add(1, Ordering::Relaxed);
                }
            })));
            w.hb_overlay = Some((overlay, sink));
        }
        for &t in &fault_tenants {
            let plan = world.borrow().tenants[t].wl.faults.clone();
            install_pipeline_faults(sim, &world, t, &plan);
        }
        let hb_every = world.borrow().cluster.recovery.heartbeat_every;
        let detector_lag = world.borrow().cluster.monitoring.delivery_delay;
        {
            let w = world.clone();
            sim.schedule_at_named("fault.heartbeat", SimTime::ZERO + hb_every, move |sim| {
                heartbeat_tick(sim, &w)
            });
        }
        {
            let w = world.clone();
            // The detector evaluates just after each heartbeat round has
            // been delivered over the control overlay.
            sim.schedule_at_named(
                "fault.detect",
                SimTime::ZERO + hb_every + detector_lag,
                move |sim| detector_tick(sim, &w),
            );
        }
    }

    // Generous horizon: hopeless-bottleneck drains are bounded by the
    // offline action, but guard against pathological configurations. Sized
    // by the slowest non-rejected tenant.
    let horizon = {
        let w = world.borrow();
        let mut max_span = SimDuration::ZERO;
        for tn in &w.tenants {
            if !matches!(tn.admission, AdmissionState::Rejected { .. }) {
                let span = tn.wl.cadence * (tn.wl.steps + 2);
                if span > max_span {
                    max_span = span;
                }
            }
        }
        SimTime::ZERO + max_span + SimDuration::from_secs(3600 * 4)
    };
    sim.run_until(horizon);
    let finished_at = sim.now();
    if telemetry.enabled(Category::Kernel) {
        sim.clear_event_hook();
    }

    // Drain the heartbeat overlay before reading its delivery counter.
    let hb_overlay = world.borrow_mut().hb_overlay.take();
    if let Some((overlay, _)) = hb_overlay {
        overlay.flush();
        overlay.shutdown();
    }
    let mut w = world.borrow_mut();
    let heartbeats_delivered = w.hb_delivered.load(Ordering::Relaxed);
    let errors = w.errors.clone();
    let mut tenants = Vec::with_capacity(w.tenants.len());
    for t in 0..w.tenants.len() {
        let log = std::mem::replace(&mut w.tenants[t].log, MonitorLog::new());
        let tn = &w.tenants[t];
        let (base, count) = (tn.base, tn.count);
        let slice = w.tenant_slice(base, count);
        let admission = match tn.admission {
            AdmissionState::Admitted { at } => AdmissionOutcome::Admitted { at },
            AdmissionState::Queued | AdmissionState::AdmitInFlight => AdmissionOutcome::Queued,
            AdmissionState::Rejected { held, spare } => {
                AdmissionOutcome::Rejected { held, spare }
            }
        };
        let emitted =
            if matches!(admission, AdmissionOutcome::Admitted { .. }) { tn.wl.steps } else { 0 };
        let attainment = tn.wl.sla.attainment(
            emitted,
            log.e2e_series().points().iter().map(|&(_, v)| v),
            slice.iter().flat_map(|c| {
                log.latency_series(c.id)
                    .map(|s| s.points().iter().map(|&(_, v)| v).collect::<Vec<_>>())
                    .unwrap_or_default()
            }),
        );
        let run = PipelineRun {
            log,
            blocked_at: tn.first_blocked_at,
            disk_steps: tn.disk_steps.clone(),
            crack_detected: tn.crack_detected,
            offline: slice
                .iter()
                .filter(|c| matches!(c.status, Status::Offline))
                .map(|c| c.spec.name)
                .collect(),
            final_units: slice.iter().map(|c| (c.spec.name, c.units())).collect(),
            completed: slice.iter().map(|c| (c.spec.name, c.completed)).collect(),
            failed: slice
                .iter()
                .filter(|c| matches!(c.status, Status::Failed))
                .map(|c| c.spec.name)
                .collect(),
            heartbeats_delivered,
            restarts: slice
                .iter()
                .map(|c| (c.spec.name, w.restart_attempts[c.id.0 as usize]))
                .collect(),
            finished_at,
            telemetry: telemetry.clone(),
            errors: errors.clone(),
        };
        tenants.push(TenantRun { id: w.tenants[t].wl.id.clone(), admission, attainment, run });
    }
    ExperimentRun { tenants, finished_at, errors, telemetry }
}

fn emit(sim: &mut Sim, world: &W, t: usize, step: u64) {
    let (helper, arrival, qstep) = {
        let mut w = world.borrow_mut();
        let helper = w.tenants[t].base + HELPER;
        let bytes = w.tenants[t].wl.step_bytes();
        let xfer = w.transfer_time_at(helper, bytes, sim.now());
        let start = sim.now().max(w.ingress_free[helper]);
        let arrival = start + xfer;
        w.ingress_free[helper] = arrival;
        (
            helper,
            arrival,
            QueuedStep { step, bytes, entered: arrival, emitted: sim.now() },
        )
    };
    let w = world.clone();
    sim.schedule_at_named("ioc.arrive", arrival, move |sim| arrive(sim, &w, helper, qstep));
}

fn arrive(sim: &mut Sim, world: &W, cid: usize, mut qstep: QueuedStep) {
    {
        let mut w = world.borrow_mut();
        let t = w.tenant_of[cid];
        match w.containers[cid].status {
            Status::Offline | Status::Inactive => {
                // Mid-flight data landing on a pruned container goes to
                // disk, labeled with its provenance.
                let base = w.tenants[t].base;
                let local = cid - base;
                let prov = w.provenance_at(base + local.saturating_sub(1));
                w.containers[cid].bypassed += 1;
                w.tenants[t].disk_steps.push((qstep.step, prov));
                let at = sim.now();
                let e2e = at.since(qstep.emitted);
                w.tenants[t].log.record_e2e(at, e2e);
                return;
            }
            // Failed/stalled containers keep queueing arrivals: recovery
            // must lose no time step, so data waits for the restart (or is
            // flushed to disk with provenance by the offline fallback).
            Status::Online | Status::Resizing { .. } | Status::Failed | Status::Stalled { .. } => {
                let cap = w.containers[cid].spec.queue_capacity;
                if w.containers[cid].queue.len() >= cap {
                    // Overflow: the application (or upstream stage) blocks.
                    if !w.containers[cid].overflowed {
                        w.containers[cid].overflowed = true;
                        let id = w.containers[cid].id;
                        let at = sim.now();
                        w.tenants[t].log.record_action(at, Action::Blocked { container: id });
                        if w.tenants[t].first_blocked_at.is_none() {
                            w.tenants[t].first_blocked_at = Some(at);
                        }
                    }
                    w.stalled[cid].push_back(qstep);
                    return;
                }
                qstep.entered = sim.now();
                w.containers[cid].queue.push_back(qstep);
            }
        }
    }
    try_dispatch(sim, world, cid);
}

fn try_dispatch(sim: &mut Sim, world: &W, cid: usize) {
    loop {
        let dispatched = {
            let mut w = world.borrow_mut();
            if w.containers[cid].status != Status::Online || w.containers[cid].queue.is_empty() {
                None
            } else {
                let now = sim.now();
                let t = w.tenant_of[cid];
                let atoms = w.tenants[t].wl.atoms();
                let monitoring = w.cluster.monitoring;
                let c = &mut w.containers[cid];
                match (c.next_free_replica(), c.queue.pop_front()) {
                    (Some(idx), Some(qstep)) if c.replica_free[idx] <= now => {
                        let mut service = c.step_time(atoms);
                        if monitoring.samples_step(qstep.step) {
                            service += monitoring.per_sample_cost;
                        }
                        let done = now + service;
                        c.replica_free[idx] = done;
                        w.in_flight[cid].push(qstep);
                        if w.telemetry.enabled(Category::Container) {
                            let track = format!(
                                "{}{}",
                                w.tenants[t].prefix, w.containers[cid].spec.name
                            );
                            w.telemetry.span(Category::Container, &track, "step", now, done);
                        }
                        // Accept a stalled step into the freed queue slot.
                        if let Some(mut s) = w.stalled[cid].pop_front() {
                            s.entered = now;
                            w.containers[cid].queue.push_back(s);
                        }
                        Some((qstep, done, w.epoch[cid]))
                    }
                    (_, Some(qstep)) => {
                        // No replica free yet: the step goes back where it
                        // came from and this dispatch round ends.
                        c.queue.push_front(qstep);
                        None
                    }
                    (_, None) => None,
                }
            }
        };
        match dispatched {
            Some((qstep, done, epoch)) => {
                let w = world.clone();
                sim.schedule_at_named("ioc.complete", done, move |sim| {
                    complete(sim, &w, cid, qstep, epoch)
                });
            }
            None => break,
        }
    }
}

fn complete(sim: &mut Sim, world: &W, cid: usize, qstep: QueuedStep, epoch: u64) {
    let now = sim.now();
    let mut activate_branch = false;
    let (t, sample, forward) = {
        let mut w = world.borrow_mut();
        let t = w.tenant_of[cid];
        // A crash between dispatch and completion discarded this replica's
        // work (the step went back to the queue under a new epoch).
        if w.epoch[cid] != epoch {
            return;
        }
        // If the offline protocol already flushed this step to disk, the
        // replica's work was discarded along with the container.
        let Some(pos) = w.in_flight[cid].iter().position(|q| q.step == qstep.step) else {
            return;
        };
        w.in_flight[cid].swap_remove(pos);
        if matches!(w.containers[cid].status, Status::Offline) {
            // Retired mid-step (dynamic branch): the work is still valid
            // output, but the container no longer reports or forwards.
            w.tenants[t].log.record_e2e(now, now.since(qstep.emitted));
            return;
        }
        let latency = now.since(qstep.entered);
        let c = &mut w.containers[cid];
        c.latency_window.push(latency);
        c.completed += 1;
        let sample = LatencySample {
            container: c.id,
            step: qstep.step,
            latency,
            queue_len: c.queue.len(),
            taken_at: now,
        };
        if w.telemetry.enabled(Category::Sla) && w.tenants[t].wl.sla.container_violated(latency) {
            let prefix = &w.tenants[t].prefix;
            let track = format!("{}{}", prefix, w.containers[cid].spec.name);
            let counter = format!("{prefix}sla.violations");
            w.telemetry.mark(Category::Sla, &track, "sla.violation", now);
            w.telemetry.count(Category::Sla, &counter, 1);
        }

        // Dynamic branch: CSym detecting the break retires itself and
        // activates CNA (which then reads from Bonds).
        let base = w.tenants[t].base;
        if cid == base + CSYM && !w.tenants[t].crack_detected {
            if let Some(crack_at) = w.tenants[t].wl.crack_at_step {
                if qstep.step >= crack_at {
                    activate_branch = true;
                }
            }
        }

        let targets = w.downstream_targets(cid);
        let analytics_targets =
            targets.iter().filter(|&&dst| w.is_analytics(dst)).count();
        let mut forward = Vec::with_capacity(targets.len());
        for dst in targets {
            let bytes = (qstep.bytes as f64 * w.containers[cid].spec.output_ratio) as u64;
            let xfer = w.transfer_time_at(dst, bytes, now);
            let start = now.max(w.ingress_free[dst]);
            let arrival = start + xfer;
            w.ingress_free[dst] = arrival;
            forward.push((dst, arrival, QueuedStep { bytes, entered: arrival, ..qstep }));
        }
        if analytics_targets == 0 && w.is_analytics(cid) {
            // Analytics-path exit: record end-to-end latency; if downstream
            // was pruned by policy, the step goes to disk with provenance.
            w.tenants[t].log.record_e2e(now, now.since(qstep.emitted));
            let end = base + w.tenants[t].count.min(VIZ);
            let owes_downstream =
                w.containers.get(cid + 1..end).is_some_and(|cs| cs.iter().any(|c| c.owed));
            if owes_downstream {
                let prov = w.provenance_at(cid);
                w.tenants[t].disk_steps.push((qstep.step, prov));
            }
        }
        (t, sample, forward)
    };

    if activate_branch {
        perform_branch(sim, world, t);
    }

    for (dst, arrival, fwd) in forward {
        let w = world.clone();
        sim.schedule_at_named("ioc.arrive", arrival, move |sim| arrive(sim, &w, dst, fwd));
    }

    // Local manager reports to the global manager over the control
    // overlay, at the configured sampling frequency.
    let monitoring = world.borrow().cluster.monitoring;
    if monitoring.samples_step(sample.step) {
        let w = world.clone();
        sim.schedule_in_named("ioc.monitor", monitoring.delivery_delay, move |_sim| {
            w.borrow_mut().tenants[t].log.record(&sample);
        });
    }

    // The completing replica is free again.
    try_dispatch(sim, world, cid);
}

/// Activates an inactive container, leasing up to its configured node
/// count from the spare pool. Returns `false` (and does nothing) when the
/// container is not inactive or no node is available.
fn activate_container(sim: &mut Sim, world: &W, ix: usize) -> bool {
    let now = sim.now();
    let activated = {
        let mut w = world.borrow_mut();
        if w.containers[ix].status != Status::Inactive {
            false
        } else {
            let want = w.containers[ix].spec.initial_nodes.max(1);
            let take = want.min(w.staging.spare());
            let nodes = if take == 0 { Vec::new() } else { w.lease_or_record(take, "activate") };
            if nodes.is_empty() {
                false
            } else {
                let t = w.tenant_of[ix];
                let c = &mut w.containers[ix];
                c.nodes = nodes;
                c.reset_replicas(now);
                c.status = Status::Online;
                let id = c.id;
                w.tenants[t].log.record_action(now, Action::Activate { container: id });
                true
            }
        }
    };
    if activated {
        try_dispatch(sim, world, ix);
    }
    activated
}

/// Executes an online user directive at the global manager.
fn perform_directive(sim: &mut Sim, world: &W, t: usize, directive: Directive) {
    let target = {
        let w = world.borrow();
        let (base, count) = (w.tenants[t].base, w.tenants[t].count);
        let name = match directive {
            Directive::LaunchViz => "Viz",
            Directive::Activate(name) => name,
        };
        w.tenant_slice(base, count)
            .iter()
            .position(|c| c.spec.name == name)
            .map(|local| base + local)
    };
    if let Some(ix) = target {
        activate_container(sim, world, ix);
    }
}

/// Tenant `t`'s CSym detected the break: retire CSym, activate CNA on
/// CSym's nodes plus whatever spare nodes its allocation calls for.
fn perform_branch(sim: &mut Sim, world: &W, t: usize) {
    let (csym, cna) = {
        let mut w = world.borrow_mut();
        w.tenants[t].crack_detected = true;
        let base = w.tenants[t].base;
        let (csym, cna) = (base + CSYM, base + CNA);

        // Retire CSym (its question is answered); not "owed" work.
        let released: Vec<_> = std::mem::take(&mut w.containers[csym].nodes);
        w.containers[csym].status = Status::Offline;
        w.containers[csym].replica_free.clear();
        w.release_or_record(&released, "retire CSym");
        (csym, cna)
    };
    // CNA activates on the released nodes (plus any other spares).
    activate_container(sim, world, cna);
    {
        // Steps queued at CSym still need the post-break analysis.
        let mut w = world.borrow_mut();
        let pending: Vec<_> = w.containers[csym].queue.drain(..).collect();
        for q in pending {
            w.containers[cna].queue.push_back(q);
        }
    }
    try_dispatch(sim, world, cna);
}

/// Periodic global-manager evaluation: build per-tenant local-manager
/// views, run the pure cluster policy (admission first, then fair-share
/// rebalancing with cross-tenant steal), execute the decision.
fn policy_tick(sim: &mut Sim, world: &W) {
    let decision = {
        let mut w = world.borrow_mut();
        if !w.cluster.policy.enabled
            || w.action_in_flight
            || sim.now() < w.last_action_at + w.cluster.policy.cooldown
        {
            return;
        }
        w.telemetry.count(Category::Management, "policy.rounds", 1);
        // The tick's buffers are recycled across rounds (see
        // [`PolicyScratch`]); take them out so the build below can hold a
        // shared borrow of the world.
        let mut scratch = std::mem::take(&mut w.scratch);
        {
            let w = &*w;
            let total_weight: u64 = w
                .tenants
                .iter()
                .filter(|tn| matches!(tn.admission, AdmissionState::Admitted { .. }))
                .map(|tn| tn.wl.weight as u64)
                .sum();
            scratch.queued.extend(
                w.tenants
                    .iter()
                    .enumerate()
                    .filter(|(_, tn)| matches!(tn.admission, AdmissionState::Queued))
                    .map(|(i, tn)| (i as u32, tn.wl.held_nodes())),
            );
            for (i, tn) in w.tenants.iter().enumerate() {
                if !matches!(tn.admission, AdmissionState::Admitted { .. }) {
                    continue;
                }
                let atoms = tn.wl.atoms();
                let cadence = tn.wl.sla.output_cadence;
                let mut views = scratch.view_pool.pop().unwrap_or_default();
                views.extend(w.tenant_slice(tn.base, tn.count).iter().map(|c| {
                    // The head-of-line age bounds the next completion's
                    // latency from below; it lets the manager see a starving
                    // queue even before the first (very slow) completion.
                    let head_age = c
                        .queue
                        .front()
                        .map(|q| sim.now().since(q.entered))
                        .unwrap_or(SimDuration::ZERO);
                    let avg = c.latency_window.mean().max(head_age);
                    ContainerView {
                        id: c.id,
                        online: c.status == Status::Online,
                        essential: c.spec.essential,
                        units: c.units(),
                        needed: c.units_needed(atoms, cadence),
                        spareable: c.units_spareable(atoms, cadence),
                        queue_len: c.queue.len() + w.stalled[c.id.0 as usize].len(),
                        queue_capacity: c.spec.queue_capacity,
                        avg_latency: avg,
                        samples: c.latency_window.len() + c.queue.len(),
                    }
                }));
                let held: u32 = views.iter().map(|v| v.units).sum();
                let fair_share = (w.cluster.staging_nodes as u64 * tn.wl.weight as u64
                    / total_weight.max(1)) as u32;
                scratch.tenants.push(TenantPolicyView {
                    tenant: i as u32,
                    sla: tn.wl.sla,
                    fair_share,
                    held,
                    views,
                });
            }
        }
        let decision =
            decide_cluster(&w.cluster.policy, &scratch.tenants, &scratch.queued, w.staging.spare());
        scratch.queued.clear();
        for mut tv in scratch.tenants.drain(..) {
            tv.views.clear();
            scratch.view_pool.push(tv.views);
        }
        w.scratch = scratch;
        decision
    };

    match decision {
        ClusterDecision::None => {}
        ClusterDecision::Admit { tenant } => perform_admission(sim, world, tenant as usize),
        ClusterDecision::Act { decision, .. } => match decision {
            Decision::None => {}
            Decision::Rebalance { target, lease_spare, steal } => {
                perform_rebalance(sim, world, target, lease_spare, steal);
            }
            Decision::Offline { target } => perform_offline(sim, world, target),
            // The SLA policy never restarts; that decision belongs to the
            // failure detector's recovery path.
            Decision::Restart { .. } => {}
        },
        ClusterDecision::CrossSteal { target, lease_spare, donor, take, .. } => {
            perform_rebalance(sim, world, target, lease_spare, Some((donor, take)));
        }
    }
}

/// Launches a queued tenant: the admission protocol (container launches
/// plus DataTap reader registration for every initially active stage) runs
/// for its estimated duration, then the tenant's leases are taken and its
/// emission/directive schedule begins relative to the admission time.
fn perform_admission(sim: &mut Sim, world: &W, t: usize) {
    let duration = {
        let mut w = world.borrow_mut();
        w.action_in_flight = true;
        w.tenants[t].admission = AdmissionState::AdmitInFlight;
        let tn = &w.tenants[t];
        let mut writers = (tn.wl.sim_nodes / 32).max(1);
        let mut stages = Vec::new();
        for c in w.tenant_slice(tn.base, tn.count) {
            if c.spec.starts_active {
                stages.push((writers, c.spec.initial_nodes.max(1)));
                writers = c.spec.initial_nodes.max(1);
            }
        }
        estimate::admission(&stages, &w.costs, PER_MSG) + w.cluster.launch.sample(sim)
    };
    let w2 = world.clone();
    sim.schedule_in_named("ioc.admit", duration, move |sim| {
        let now = sim.now();
        let launched = {
            let mut w = w2.borrow_mut();
            let held = w.tenants[t].wl.held_nodes();
            let spare = w.staging.spare();
            if held > spare {
                // The machine filled up while the protocol ran: back to
                // the queue, try again at a later tick.
                w.tenants[t].admission = AdmissionState::Queued;
                w.action_in_flight = false;
                w.last_action_at = now;
                false
            } else {
                let (base, count) = (w.tenants[t].base, w.tenants[t].count);
                for ix in base..base + count {
                    if !w.containers[ix].spec.starts_active {
                        continue;
                    }
                    let want = w.containers[ix].spec.initial_nodes;
                    let nodes = w.lease_or_record(want, "admission");
                    let c = &mut w.containers[ix];
                    c.nodes = nodes;
                    c.status = Status::Online;
                    c.reset_replicas(now);
                    let id = c.id;
                    w.heartbeat_last[ix] = now;
                    w.tenants[t].log.record_action(now, Action::Activate { container: id });
                }
                w.tenants[t].admission = AdmissionState::Admitted { at: now };
                w.action_in_flight = false;
                w.last_action_at = now;
                true
            }
        };
        if !launched {
            return;
        }
        // The tenant's application starts emitting now; its directives are
        // relative to its own start.
        let (steps, cadence, directives, base, count) = {
            let w = w2.borrow();
            let tn = &w.tenants[t];
            (tn.wl.steps, tn.wl.cadence, tn.wl.directives.clone(), tn.base, tn.count)
        };
        for step in 0..steps {
            let w = w2.clone();
            sim.schedule_at_named("ioc.emit", now + cadence * step, move |sim| {
                emit(sim, &w, t, step)
            });
        }
        for (at, directive) in directives {
            let w = w2.clone();
            sim.schedule_at_named("ioc.directive", now + at, move |sim| {
                perform_directive(sim, &w, t, directive)
            });
        }
        for ix in base..base + count {
            try_dispatch(sim, &w2, ix);
        }
    });
}

fn perform_rebalance(
    sim: &mut Sim,
    world: &W,
    target: ContainerId,
    lease_spare: u32,
    steal: Option<(ContainerId, u32)>,
) {
    world.borrow_mut().action_in_flight = true;
    match steal {
        Some((donor, k)) => {
            // A trade moves a resource between two containers; guarded by
            // a D2T control transaction it either fully commits or rolls
            // back with nothing moved. The transaction is simulated over
            // the control plane (a separate event context: it involves
            // only manager traffic) and its duration and outcome are
            // charged here.
            let txn = {
                let mut w = world.borrow_mut();
                if w.cluster.policy.transactional_trades {
                    let trade_ix = w.trade_count;
                    w.trade_count += 1;
                    let inject = w.cluster.trade_faults.contains(&trade_ix);
                    let writers = w.containers[donor.0 as usize].units().max(1);
                    let readers = w.containers[target.0 as usize].units().max(1);
                    let mut txn_sim = Sim::new(w.cluster.seed ^ (0xD2D2 + trade_ix as u64));
                    let net = Network::new(NetworkConfig::portals_xt4());
                    let cfg = TxnConfig { writers, readers, ..TxnConfig::default() };
                    let mut faults = FaultPlan::default();
                    if inject {
                        faults.drop_writer_votes.insert(0);
                    }
                    let report = run_transaction(&mut txn_sim, &net, &cfg, &faults);
                    Some((report.duration, report.decision == d2t::Decision::Abort))
                } else {
                    None
                }
            };
            if let Some((txn_duration, aborted)) = txn {
                if aborted {
                    // Roll back: nothing moved; retry after the cooldown.
                    let w2 = world.clone();
                    sim.schedule_in_named("ioc.trade_txn", txn_duration, move |sim| {
                        let mut w = w2.borrow_mut();
                        let at = sim.now();
                        let t = w.tenant_of[target.0 as usize];
                        w.tenants[t].log.record_action(
                            at,
                            Action::TradeAborted { donor, recipient: target },
                        );
                        w.action_in_flight = false;
                        w.last_action_at = at;
                    });
                    return;
                }
                // Committed: proceed with the physical trade after the
                // transaction completes.
                let w2 = world.clone();
                sim.schedule_in_named("ioc.trade_txn", txn_duration, move |sim| {
                    start_steal(sim, &w2, target, donor, k, lease_spare);
                });
                return;
            }
            start_steal(sim, world, target, donor, k, lease_spare);
        }
        None => start_increase(sim, world, target, lease_spare, ResourceSource::Spare),
    }
}

/// The physical trade: decrease the donor, then grow the target with the
/// stolen (plus any spare) nodes.
fn start_steal(
    sim: &mut Sim,
    world: &W,
    target: ContainerId,
    donor: ContainerId,
    k: u32,
    lease_spare: u32,
) {
            // Phase 1: decrease the donor (pausing its upstream writers).
            let dec_duration = {
                let mut w = world.borrow_mut();
                let donor_ix = donor.0 as usize;
                let upstream_writers = w.upstream_writers(donor_ix);
                let queued = w.queued_bytes(donor_ix);
                let d = estimate::decrease(
                    upstream_writers,
                    k,
                    &w.costs,
                    PER_MSG,
                    queued / upstream_writers.max(1) as u64,
                    w.cluster.bandwidth_bps,
                );
                w.containers[donor_ix].status = Status::Resizing { until: sim.now() + d };
                d
            };
            let w2 = world.clone();
            sim.schedule_in_named("ioc.trade_dec", dec_duration, move |sim| {
                let source = {
                    let mut w = w2.borrow_mut();
                    let donor_ix = donor.0 as usize;
                    let keep = w.containers[donor_ix].nodes.len().saturating_sub(k as usize);
                    let removed: Vec<_> = w.containers[donor_ix].nodes.split_off(keep);
                    w.release_or_record(&removed, "trade decrease");
                    w.containers[donor_ix].status = Status::Online;
                    let now = sim.now();
                    w.containers[donor_ix].reset_replicas(now);
                    let dt = w.tenant_of[donor_ix];
                    w.tenants[dt].log.record_action(
                        now,
                        Action::Decrease { container: donor, removed: k },
                    );
                    // A foreign donor is recorded distinctly in the
                    // recipient's action log.
                    if dt == w.tenant_of[target.0 as usize] {
                        ResourceSource::StolenFrom(donor)
                    } else {
                        ResourceSource::StolenFromTenant { tenant: dt as u32, container: donor }
                    }
                };
                try_dispatch(sim, &w2, donor.0 as usize);
                start_increase(sim, &w2, target, lease_spare + k, source);
            });
}

fn start_increase(sim: &mut Sim, world: &W, target: ContainerId, add: u32, source: ResourceSource) {
    let inc_duration = {
        let mut w = world.borrow_mut();
        let tix = target.0 as usize;
        let upstream_writers = w.upstream_writers(tix);
        let proto = estimate::increase(upstream_writers, add, &w.costs, PER_MSG);
        let launch = w.cluster.launch;
        let total = proto + launch.sample(sim);
        w.containers[tix].status = Status::Resizing { until: sim.now() + total };
        total
    };
    let w2 = world.clone();
    sim.schedule_in_named("ioc.trade_inc", inc_duration, move |sim| {
        {
            let mut w = w2.borrow_mut();
            let tix = target.0 as usize;
            let add = add.min(w.staging.spare());
            if add > 0 {
                let nodes = w.lease_or_record(add, "trade increase");
                w.containers[tix].nodes.extend(nodes);
            }
            let units = w.containers[tix].units();
            let replicas = w.containers[tix].spec.effective_replicas(units);
            // New replicas are free immediately; existing ones keep their
            // in-flight work (conservatively reset to now: in-flight steps
            // already have completion events scheduled).
            let mut frees = w.containers[tix].replica_free.clone();
            frees.resize(replicas, sim.now());
            w.containers[tix].replica_free = frees;
            w.containers[tix].status = Status::Online;
            let at = sim.now();
            let t = w.tenant_of[tix];
            w.tenants[t]
                .log
                .record_action(at, Action::Increase { container: target, added: add, source });
            w.action_in_flight = false;
            w.last_action_at = at;
        }
        try_dispatch(sim, &w2, target.0 as usize);
    });
}

fn perform_offline(sim: &mut Sim, world: &W, target: ContainerId) {
    let now = sim.now();
    let mut w = world.borrow_mut();
    let tix = target.0 as usize;
    let t = w.tenant_of[tix];
    let (base, count) = (w.tenants[t].base, w.tenants[t].count);

    // Cascade: the target plus everything downstream (within the owning
    // tenant's pipeline) that depends on it (transitively) and is not
    // already offline.
    let mut cascade = vec![tix];
    for i in tix + 1..base + count {
        if matches!(w.containers[i].status, Status::Offline) {
            continue;
        }
        let deps = &w.containers[i].spec.depends_on;
        let depends_on_cascade =
            cascade.iter().any(|&c| deps.contains(&w.containers[c].spec.name));
        if depends_on_cascade {
            cascade.push(i);
        }
    }

    let mut ids = Vec::with_capacity(cascade.len());
    for &ix in &cascade {
        let released: Vec<_> = std::mem::take(&mut w.containers[ix].nodes);
        if !released.is_empty() {
            w.release_or_record(&released, "offline cascade");
        }
        w.containers[ix].status = Status::Offline;
        w.containers[ix].owed = true;
        w.containers[ix].replica_free.clear();
        ids.push(w.containers[ix].id);
    }

    // Flush queued and stalled steps of the pruned containers to disk with
    // provenance: they were processed up to the container before the cut.
    let local = tix - base;
    let prov = w.provenance_at(base + local.saturating_sub(1));
    for &ix in &cascade {
        let mut drained: Vec<_> = w.containers[ix].queue.drain(..).collect();
        drained.extend(w.stalled[ix].drain(..));
        drained.append(&mut w.in_flight[ix]);
        for q in drained {
            w.tenants[t].disk_steps.push((q.step, prov.clone()));
            w.tenants[t].log.record_e2e(now, now.since(q.emitted));
        }
    }

    w.tenants[t].log.record_action(now, Action::Offline { containers: ids });
    w.last_action_at = now;
}

// ---------------------------------------------------------------------------
// Fault injection and heartbeat-driven recovery.
//
// None of this runs for an empty fault plan: `run_pipeline_in` schedules the
// injectors, the heartbeat chain, and the detector chain only when the plan
// has events, so a clean run's schedule (and trace hash) is bit-identical to
// a build without fault support.
// ---------------------------------------------------------------------------

/// A heartbeat from a container's local manager, carried over the EVPath
/// control overlay to the global manager's terminal stone.
struct Heartbeat {
    #[allow(dead_code)]
    container: u32,
}

/// True once every tenant is terminal: rejected tenants trivially, queued
/// tenants never (the detector keeps running so admission can still act),
/// admitted tenants once every emitted step has exited the pipeline
/// (processed or written to disk) — the signal for the self-rescheduling
/// heartbeat and detector chains to stop instead of running to the
/// horizon.
fn run_drained(w: &World) -> bool {
    w.tenants.iter().all(|tn| match tn.admission {
        AdmissionState::Rejected { .. } => true,
        AdmissionState::Queued | AdmissionState::AdmitInFlight => false,
        AdmissionState::Admitted { .. } => tn.log.e2e_series().len() as u64 >= tn.wl.steps,
    })
}

fn install_pipeline_faults(sim: &mut Sim, world: &W, t: usize, plan: &simfault::FaultPlan) {
    for (ev_ix, ev) in plan.events().iter().enumerate() {
        let fault = ev.fault;
        let seed = plan.seed;
        let w = world.clone();
        sim.schedule_at_named("fault.inject", SimTime::ZERO + ev.at, move |sim| {
            inject(sim, &w, t, fault, seed, ev_ix)
        });
    }
}

/// Marks a fault on the owning tenant's fault track (unprefixed in
/// single-tenant runs, matching the legacy trace byte for byte).
fn fault_mark(w: &World, t: usize, label: &str, now: SimTime) {
    if w.telemetry.enabled(Category::Fault) {
        let track = format!("{}fault", w.tenants[t].prefix);
        w.telemetry.mark(Category::Fault, &track, label, now);
    }
}

fn inject(sim: &mut Sim, world: &W, t: usize, fault: Fault, plan_seed: u64, ev_ix: usize) {
    let now = sim.now();
    match fault {
        Fault::NodeCrash { node } => crash_node(sim, world, NodeId(node)),
        Fault::NodeDegrade { node, bandwidth_factor, latency_factor, lasts } => {
            let mut w = world.borrow_mut();
            if let Some(ix) = w.containers.iter().position(|c| c.nodes.contains(&NodeId(node))) {
                w.degraded[ix] = Some((bandwidth_factor, latency_factor, now + lasts));
                let name = w.containers[ix].spec.name;
                let owner = w.tenant_of[ix];
                fault_mark(&w, owner, &format!("degrade {name}"), now);
            }
        }
        Fault::MessageLoss { probability, lasts } => {
            let mut w = world.borrow_mut();
            // Sampler seeding mirrors simfault's network hook: the plan
            // seed XOR the event index, so the draw sequence is a pure
            // function of (seed, plan) — the sanctioned determinism escape.
            let sampler = LossSampler::new(plan_seed ^ (0xFA17 + ev_ix as u64), probability);
            w.tenants[t].loss = Some((sampler, now + lasts));
            fault_mark(&w, t, "loss window opens", now);
        }
        Fault::ContainerCrash { container } => {
            let target = {
                let w = world.borrow();
                let tn = &w.tenants[t];
                w.tenant_slice(tn.base, tn.count)
                    .iter()
                    .position(|c| c.spec.name == container)
                    .map(|local| tn.base + local)
            };
            if let Some(ix) = target {
                fail_container(sim, world, ix);
            }
        }
        Fault::ContainerStall { container, lasts } => {
            let target = {
                let w = world.borrow();
                let tn = &w.tenants[t];
                w.tenant_slice(tn.base, tn.count)
                    .iter()
                    .position(|c| c.spec.name == container)
                    .map(|local| tn.base + local)
            };
            if let Some(ix) = target {
                stall_container(sim, world, ix, lasts);
            }
        }
    }
}

/// A staging-node crash: the node leaves the pool forever
/// ([`StagingArea::fail_node`]); a container holding it shrinks, and
/// shrinking to zero nodes is a container crash.
fn crash_node(sim: &mut Sim, world: &W, node: NodeId) {
    let now = sim.now();
    let dead_container = {
        let mut w = world.borrow_mut();
        match w.containers.iter().position(|c| c.nodes.contains(&node)) {
            Some(ix) => {
                w.containers[ix].nodes.retain(|&n| n != node);
                w.staging.fail_node(node);
                let units = w.containers[ix].units();
                if units == 0 {
                    Some(ix)
                } else {
                    // Surviving replicas absorb the load; in-flight work is
                    // conservatively kept (completion events already
                    // scheduled), only capacity shrinks.
                    w.containers[ix].reset_replicas(now);
                    let name = w.containers[ix].spec.name;
                    let owner = w.tenant_of[ix];
                    fault_mark(&w, owner, &format!("node {} down ({name})", node.0), now);
                    None
                }
            }
            None => {
                w.staging.fail_node(node);
                None
            }
        }
    };
    if let Some(ix) = dead_container {
        fail_container(sim, world, ix);
    }
}

/// Executes a container crash: fence its nodes (a fenced node never
/// returns to the pool), send in-flight work back to the head of the queue
/// in step order under a new dispatch epoch (the work is lost, the data is
/// not), and mark the container failed. The global manager learns of the
/// crash only through missed heartbeats.
fn fail_container(sim: &mut Sim, world: &W, ix: usize) {
    let now = sim.now();
    let mut w = world.borrow_mut();
    if !matches!(
        w.containers[ix].status,
        Status::Online | Status::Resizing { .. } | Status::Stalled { .. }
    ) {
        return;
    }
    let nodes = std::mem::take(&mut w.containers[ix].nodes);
    for n in &nodes {
        w.staging.fail_node(*n);
    }
    w.epoch[ix] += 1;
    let mut inflight = std::mem::take(&mut w.in_flight[ix]);
    inflight.sort_by_key(|q| q.step);
    for q in inflight.into_iter().rev() {
        w.containers[ix].queue.push_front(q);
    }
    w.containers[ix].replica_free.clear();
    w.containers[ix].status = Status::Failed;
    if w.telemetry.enabled(Category::Fault) {
        let name = w.containers[ix].spec.name;
        let owner = w.tenant_of[ix];
        fault_mark(&w, owner, &format!("crash {name}"), now);
        let counter = format!("{}fault.container_crashes", w.tenants[owner].prefix);
        w.telemetry.count(Category::Fault, &counter, 1);
    }
}

/// Wedges an online container until `lasts` elapses: intake continues and
/// in-service steps finish, but nothing new is dispatched. Its local
/// manager stops heartbeating, so a stall outlasting the miss window is
/// (correctly) indistinguishable from a crash to the detector, which will
/// fence and restart it.
fn stall_container(sim: &mut Sim, world: &W, ix: usize, lasts: SimDuration) {
    let until = sim.now() + lasts;
    {
        let mut w = world.borrow_mut();
        if w.containers[ix].status != Status::Online {
            return;
        }
        w.containers[ix].status = Status::Stalled { until };
        let name = w.containers[ix].spec.name;
        let owner = w.tenant_of[ix];
        fault_mark(&w, owner, &format!("stall {name}"), sim.now());
    }
    let w2 = world.clone();
    sim.schedule_at_named("fault.unstall", until, move |sim| {
        let resumed = {
            let mut w = w2.borrow_mut();
            if matches!(w.containers[ix].status, Status::Stalled { .. }) {
                w.containers[ix].status = Status::Online;
                true
            } else {
                false // fenced or restarted meanwhile
            }
        };
        if resumed {
            try_dispatch(sim, &w2, ix);
        }
    });
}

/// One heartbeat round: every live (online or resizing) container's local
/// manager beats; the beat lands in the global manager's table and is
/// mirrored over the EVPath overlay. Reschedules itself until the run
/// drains.
fn heartbeat_tick(sim: &mut Sim, world: &W) {
    let now = sim.now();
    let (done, every) = {
        let mut w = world.borrow_mut();
        let done = run_drained(&w);
        if !done {
            for ix in 0..w.containers.len() {
                if w.containers[ix].is_online() {
                    w.heartbeat_last[ix] = now;
                    let container = w.containers[ix].id.0;
                    if let Some((overlay, sink)) = &w.hb_overlay {
                        overlay.submit(*sink, Event::new(Heartbeat { container }));
                    }
                }
            }
        }
        (done, w.cluster.recovery.heartbeat_every)
    };
    if !done {
        let w = world.clone();
        sim.schedule_in_named("fault.heartbeat", every, move |sim| heartbeat_tick(sim, &w));
    }
}

/// One failure-detector round at the global manager: declare any watched
/// container whose heartbeats stopped for `miss_limit` periods, then run
/// the pure recovery policy for (at most one) declared-dead container —
/// restart on spares, or fall back to offline staging. Reschedules itself
/// until the run drains.
fn detector_tick(sim: &mut Sim, world: &W) {
    let now = sim.now();
    let (done, every, newly_declared) = {
        let mut w = world.borrow_mut();
        let done = run_drained(&w);
        let mut newly = Vec::new();
        if !done {
            let miss_limit = w.cluster.recovery.miss_limit;
            let window = w.cluster.recovery.heartbeat_every * miss_limit as u64;
            for ix in 0..w.containers.len() {
                if w.declared_failed[ix] {
                    continue;
                }
                // Offline and inactive are deliberate manager states, not
                // failures; everything else is expected to heartbeat.
                let watched = matches!(
                    w.containers[ix].status,
                    Status::Online
                        | Status::Resizing { .. }
                        | Status::Stalled { .. }
                        | Status::Failed
                );
                if watched && now.since(w.heartbeat_last[ix]) > window {
                    w.declared_failed[ix] = true;
                    let id = w.containers[ix].id;
                    let t = w.tenant_of[ix];
                    w.tenants[t].log.record_action(
                        now,
                        Action::ContainerFailed { container: id, missed: miss_limit },
                    );
                    newly.push(ix);
                }
            }
        }
        (done, w.cluster.recovery.heartbeat_every, newly)
    };
    // Fence newly declared containers (the manager cannot distinguish a
    // dead process from a wedged one, so their nodes are fenced either
    // way before recovery reallocates).
    for ix in newly_declared {
        fail_container(sim, world, ix);
    }

    let decision = {
        let w = world.borrow();
        if done || w.action_in_flight {
            None
        } else {
            w.containers
                .iter()
                .enumerate()
                .find(|&(ix, c)| w.declared_failed[ix] && matches!(c.status, Status::Failed))
                .map(|(ix, c)| {
                    let wl = &w.tenants[w.tenant_of[ix]].wl;
                    let view = FailureView {
                        id: c.id,
                        needed: c.units_needed(wl.atoms(), wl.sla.output_cadence),
                        restarts_so_far: w.restart_attempts[ix],
                    };
                    decide_recovery(&w.cluster.recovery, &view, w.staging.spare())
                })
        }
    };
    match decision {
        Some(Decision::Restart { target, lease_spare }) => {
            perform_restart(sim, world, target, lease_spare);
        }
        Some(Decision::Offline { target }) => {
            // No spares (or retry budget spent): generalized offline
            // staging — upstream output goes to disk with provenance.
            perform_offline(sim, world, target);
        }
        _ => {}
    }

    if !done {
        let w = world.clone();
        sim.schedule_in_named("fault.detect", every, move |sim| detector_tick(sim, &w));
    }
}

/// Restarts a failed container on `lease_spare` spare staging nodes.
/// The duration charges the full endpoint re-setup
/// ([`estimate::restart`]), the configured launch cost, and a linear
/// virtual-time backoff per prior attempt.
fn perform_restart(sim: &mut Sim, world: &W, target: ContainerId, lease_spare: u32) {
    let ix = target.0 as usize;
    let total = {
        let mut w = world.borrow_mut();
        w.action_in_flight = true;
        w.restart_attempts[ix] += 1;
        let attempt = w.restart_attempts[ix];
        let upstream_writers = w.upstream_writers(ix);
        let proto = estimate::restart(upstream_writers, lease_spare, &w.costs, PER_MSG);
        let backoff = w.cluster.recovery.restart_backoff * (attempt - 1) as u64;
        let launch = w.cluster.launch;
        let total = proto + launch.sample(sim) + backoff;
        w.containers[ix].status = Status::Resizing { until: sim.now() + total };
        total
    };
    let w2 = world.clone();
    sim.schedule_in_named("ioc.restart", total, move |sim| {
        let restarted = {
            let mut w = w2.borrow_mut();
            let now = sim.now();
            let add = lease_spare.min(w.staging.spare());
            let nodes = if add == 0 { Vec::new() } else { w.lease_or_record(add, "restart") };
            if nodes.is_empty() {
                // The spare pool emptied while the restart was in flight:
                // this attempt fails; the detector falls back next round.
                w.containers[ix].status = Status::Failed;
                w.action_in_flight = false;
                w.last_action_at = now;
                false
            } else {
                let add = nodes.len() as u32;
                w.containers[ix].nodes = nodes;
                w.containers[ix].reset_replicas(now);
                w.containers[ix].status = Status::Online;
                w.declared_failed[ix] = false;
                let attempt = w.restart_attempts[ix];
                let id = w.containers[ix].id;
                let t = w.tenant_of[ix];
                w.tenants[t]
                    .log
                    .record_action(now, Action::Restarted { container: id, attempt, added: add });
                w.action_in_flight = false;
                w.last_action_at = now;
                true
            }
        };
        if restarted {
            try_dispatch(sim, &w2, ix);
        }
    });
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Action;
    use crate::policy::PolicyConfig;

    fn latency_points(run: &PipelineRun, name: &str) -> Vec<(SimTime, f64)> {
        let id = run
            .log
            .containers()
            .find(|&id| run.log.name_of(id) == name)
            .expect("container registered");
        run.log.latency_series(id).expect("series exists").points().to_vec()
    }

    #[test]
    fn fig7_steals_from_helper_and_recovers() {
        let run = run_pipeline(ExperimentConfig::fig7());
        // The manager decreased Helper and increased Bonds with the stolen
        // node, exactly the Fig. 7 action sequence.
        let mut saw_decrease_helper = false;
        let mut saw_increase_bonds_stolen = false;
        for (_, a) in run.log.actions() {
            match a {
                Action::Decrease { container, .. }
                    if run.log.name_of(*container) == "Helper" =>
                {
                    saw_decrease_helper = true
                }
                Action::Increase { container, source, .. }
                    if run.log.name_of(*container) == "Bonds" =>
                {
                    assert!(matches!(source, ResourceSource::StolenFrom(_)));
                    saw_increase_bonds_stolen = true;
                }
                _ => {}
            }
        }
        assert!(saw_decrease_helper, "actions: {:?}", run.log.actions());
        assert!(saw_increase_bonds_stolen);
        assert!(run.blocked_at.is_none(), "Fig. 7 must not block");
        assert!(run.offline.is_empty(), "Fig. 7 takes nothing offline");

        // Bonds latency rises, then falls back after the action.
        let pts = latency_points(&run, "Bonds");
        let peak = pts.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        let last = pts.last().expect("bonds produced samples").1;
        assert!(peak > 30.0, "latency must violate the SLA before action: peak {peak}");
        assert!(last < peak * 0.75, "latency must recover: last {last} vs peak {peak}");
        // All steps processed.
        let bonds_done =
            run.completed.iter().find(|(n, _)| *n == "Bonds").expect("bonds exists").1;
        assert_eq!(bonds_done, ExperimentConfig::fig7().steps);
    }

    #[test]
    fn fig8_converges_using_spares() {
        let run = run_pipeline(ExperimentConfig::fig8());
        let mut spare_added = 0;
        for (_, a) in run.log.actions() {
            if let Action::Increase { container, added, source } = a {
                if run.log.name_of(*container) == "Bonds" {
                    assert!(matches!(source, ResourceSource::Spare));
                    spare_added += added;
                }
            }
        }
        assert_eq!(spare_added, 4, "Bonds must consume exactly the 4 spare nodes");
        assert!(run.blocked_at.is_none(), "Fig. 8 completes before any queue overflow");
        assert!(run.offline.is_empty());
        let bonds_done =
            run.completed.iter().find(|(n, _)| *n == "Bonds").expect("bonds exists").1;
        assert_eq!(bonds_done, ExperimentConfig::fig8().steps);
        // Bonds ends with 6 replicas: the rate needed at 512 nodes.
        let bonds_units =
            run.final_units.iter().find(|(n, _)| *n == "Bonds").expect("bonds exists").1;
        assert_eq!(bonds_units, 6);
    }

    #[test]
    fn fig9_takes_bonds_and_csym_offline_before_overflow() {
        let run = run_pipeline(ExperimentConfig::fig9());
        assert!(run.offline.contains(&"Bonds"), "offline: {:?}", run.offline);
        assert!(run.offline.contains(&"CSym"), "dependents cascade: {:?}", run.offline);
        assert!(run.blocked_at.is_none(), "the runtime must act before overflow");
        // Spares were consumed first, as the paper describes.
        assert!(run.log.actions().iter().any(|(_, a)| matches!(
            a,
            Action::Increase { source: ResourceSource::Spare, .. }
        )));
        // Data written to disk is labeled with pending analytics.
        assert!(!run.disk_steps.is_empty());
        let (_, prov) = &run.disk_steps[0];
        assert!(prov.pending_ops.contains(&"Bonds".to_string()), "prov: {prov:?}");
        assert!(prov.processed_by.contains(&"Helper".to_string()));
    }

    #[test]
    fn fig10_end_to_end_latency_drops_sharply_after_offline() {
        let run = run_pipeline(ExperimentConfig::fig10());
        let offline_at = run
            .log
            .actions()
            .iter()
            .find_map(|(t, a)| matches!(a, Action::Offline { .. }).then_some(*t))
            .expect("offline action happened");
        let e2e = run.log.e2e_series().points();
        let before: Vec<f64> =
            e2e.iter().filter(|&&(t, _)| t <= offline_at).map(|&(_, v)| v).collect();
        let after: Vec<f64> = e2e
            .iter()
            .filter(|&&(t, _)| t > offline_at + SimDuration::from_secs(30))
            .map(|&(_, v)| v)
            .collect();
        assert!(!before.is_empty() && !after.is_empty(), "need points on both sides");
        let peak_before = before.iter().copied().fold(0.0, f64::max);
        let typical_after = after[after.len() / 2];
        assert!(
            typical_after < peak_before / 4.0,
            "sharp decrease expected: before peak {peak_before}, after {typical_after}"
        );
    }

    #[test]
    fn unmanaged_fig9_blocks_the_application() {
        let mut cfg = ExperimentConfig::fig9();
        cfg.policy = PolicyConfig { enabled: false, ..PolicyConfig::default() };
        let run = run_pipeline(cfg);
        assert!(run.blocked_at.is_some(), "without management the pipeline must block");
        assert!(run.offline.is_empty());
    }

    #[test]
    fn crack_branch_retires_csym_and_activates_cna() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.crack_at_step = Some(4);
        cfg.steps = 20;
        let run = run_pipeline(cfg);
        assert!(run.crack_detected);
        assert!(run.offline.contains(&"CSym"), "CSym retires after detection");
        assert!(run
            .log
            .actions()
            .iter()
            .any(|(_, a)| matches!(a, Action::Activate { .. })));
        let cna_done = run.completed.iter().find(|(n, _)| *n == "CNA").expect("cna").1;
        assert!(cna_done > 0, "CNA must process post-break steps");
    }

    #[test]
    fn healthy_small_run_needs_no_management() {
        // Tiny data: every stage sustains the cadence comfortably.
        let mut cfg = ExperimentConfig::fig7();
        cfg.sim_nodes = 8;
        cfg.steps = 10;
        let run = run_pipeline(cfg);
        let managing = run
            .log
            .actions()
            .iter()
            .filter(|(_, a)| !matches!(a, Action::Activate { .. }))
            .count();
        assert_eq!(managing, 0, "actions: {:?}", run.log.actions());
        assert!(run.blocked_at.is_none());
        // Everything flowed through to the pipeline end.
        assert_eq!(run.log.e2e_series().len(), 10);
    }

    #[test]
    fn telemetry_captures_the_managed_run() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.telemetry = simtel::TelemetryConfig::all();
        let run = run_pipeline(cfg);
        let snap = run.telemetry.snapshot();
        // Container service spans on per-container tracks.
        assert!(snap.spans.iter().any(|s| s.track == "Bonds" && s.name == "step"));
        assert!(snap.spans.iter().any(|s| s.track == "Helper"));
        // The Fig. 7 backlog violates the SLA before the manager acts.
        assert!(run.telemetry.counter("sla.violations") > 0);
        assert!(snap.markers.iter().any(|m| m.name == "sla.violation"));
        // Management rounds ran and actions were marked on the manager track.
        assert!(run.telemetry.counter("policy.rounds") > 0);
        assert!(run.telemetry.counter("manager.actions") > 0);
        assert!(snap.markers.iter().any(|m| m.track == "manager"));
        // Kernel-category event counts follow the schedule's labels.
        assert_eq!(
            run.telemetry.counter("kernel.ioc.emit"),
            ExperimentConfig::fig7().steps
        );
        // Monitoring gauges mirror the figure-harness series.
        assert!(!run.telemetry.series("end_to_end_s").is_empty());
        assert!(!run.telemetry.series("Bonds_latency_s").is_empty());
    }

    #[test]
    fn deterministic_runs() {
        let a = run_pipeline(ExperimentConfig::fig9());
        let b = run_pipeline(ExperimentConfig::fig9());
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.offline, b.offline);
        assert_eq!(a.log.e2e_series().points(), b.log.e2e_series().points());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use simfault::FaultPlan as SimFaultPlan;

    /// Fig. 7 shape with spare headroom: Bonds crashes mid-run, the
    /// detector notices the missed heartbeats, and recovery restarts it on
    /// spare nodes. Every emitted step still exits the pipeline.
    #[test]
    fn bonds_crash_is_detected_and_restarted_on_spares() {
        let cfg = ExperimentConfig::fig7()
            .to_builder()
            .staging_nodes(16) // 13 held + 3 spares
            .faults(SimFaultPlan::new().crash_container(SimDuration::from_secs(120), "Bonds"))
            .build()
            .expect("valid");
        let steps = cfg.steps;
        let run = run_pipeline(cfg);

        let failed_at = run
            .log
            .actions()
            .iter()
            .find_map(|(t, a)| {
                matches!(a, Action::ContainerFailed { container, .. }
                    if run.log.name_of(*container) == "Bonds")
                .then_some(*t)
            })
            .expect("heartbeat loss must be detected");
        assert!(failed_at > SimTime::from_secs(120), "detection follows the crash");
        let restarted = run.log.actions().iter().any(|(t, a)| {
            *t > failed_at
                && matches!(a, Action::Restarted { container, attempt: 1, .. }
                    if run.log.name_of(*container) == "Bonds")
        });
        assert!(restarted, "actions: {:?}", run.log.actions());

        // Zero lost steps: every emitted step exited the pipeline, and the
        // restarted container finished the run online.
        assert_eq!(run.log.e2e_series().len() as u64, steps);
        assert!(run.failed.is_empty(), "recovery resolved the crash");
        assert!(run.offline.is_empty(), "no offline fallback was needed");
        assert!(run.heartbeats_delivered > 0, "heartbeats flowed over the overlay");
        let bonds_restarts =
            run.restarts.iter().find(|(n, _)| *n == "Bonds").expect("bonds exists").1;
        assert_eq!(bonds_restarts, 1);
        // Bounded end-to-end latency even through the outage.
        let worst = run.log.e2e_series().max_value().unwrap_or(f64::INFINITY);
        assert!(worst < 120.0, "e2e stayed bounded: worst {worst}");
    }

    /// Plain Fig. 7 has zero spares: when Bonds crashes there is nothing to
    /// restart it on, so recovery falls back to generalized offline
    /// staging — downstream data goes to disk with provenance, and the run
    /// still accounts for every step.
    #[test]
    fn crash_without_spares_falls_back_to_offline_staging() {
        let cfg = ExperimentConfig::fig7()
            .to_builder()
            .faults(SimFaultPlan::new().crash_container(SimDuration::from_secs(150), "Bonds"))
            .build()
            .expect("valid");
        let steps = cfg.steps;
        let run = run_pipeline(cfg);

        assert!(run.log.actions().iter().any(|(_, a)| matches!(
            a,
            Action::ContainerFailed { container, .. }
                if run.log.name_of(*container) == "Bonds"
        )));
        assert!(run.offline.contains(&"Bonds"), "offline: {:?}", run.offline);
        assert!(run.offline.contains(&"CSym"), "dependents cascade: {:?}", run.offline);
        assert!(run.failed.is_empty(), "the fallback resolved the failure");
        assert!(!run.disk_steps.is_empty(), "bypassed steps land on disk with provenance");
        let (_, prov) = run.disk_steps.last().expect("disk steps exist");
        assert!(prov.pending_ops.contains(&"Bonds".to_string()), "prov: {prov:?}");
        assert_eq!(run.log.e2e_series().len() as u64, steps, "every step accounted for");
    }

    /// A stall shorter than the heartbeat miss window self-heals before the
    /// detector reacts: no failure is declared, nothing restarts.
    #[test]
    fn short_stall_self_heals_without_detection() {
        let cfg = ExperimentConfig::fig8()
            .to_builder()
            .faults(SimFaultPlan::new().stall_container(
                SimDuration::from_secs(90),
                "Bonds",
                SimDuration::from_secs(10), // < 3 × 5 s miss window
            ))
            .build()
            .expect("valid");
        let steps = cfg.steps;
        let run = run_pipeline(cfg);
        assert!(run
            .log
            .actions()
            .iter()
            .all(|(_, a)| !matches!(a, Action::ContainerFailed { .. } | Action::Restarted { .. })));
        assert_eq!(run.log.e2e_series().len() as u64, steps);
        assert!(run.restarts.iter().all(|&(_, n)| n == 0));
    }

    /// NIC degradation and message loss stretch transfers inside their
    /// windows, deterministically: two identical runs agree point-for-point,
    /// and the faulted run finishes no earlier than the clean one.
    #[test]
    fn degradation_and_loss_are_deterministic() {
        let plan = SimFaultPlan::new()
            .lose_messages(SimDuration::from_secs(30), 0.5, SimDuration::from_secs(120))
            .degrade_node(
                SimDuration::from_secs(30),
                256, // Helper's first staging node (Fig. 7 layout)
                0.25,
                4.0,
                SimDuration::from_secs(120),
            );
        let cfg = ExperimentConfig::fig7()
            .to_builder()
            .faults(plan)
            .build()
            .expect("valid");
        let a = run_pipeline(cfg.clone());
        let b = run_pipeline(cfg);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.log.e2e_series().points(), b.log.e2e_series().points());
        let clean = run_pipeline(ExperimentConfig::fig7());
        assert!(a.finished_at >= clean.finished_at, "faults never speed the run up");
    }

    /// An empty fault plan schedules nothing: the kernel trace hash is
    /// identical to the clean configuration's, and repeatable.
    #[test]
    fn empty_fault_plan_is_schedule_neutral() {
        let hash_of = |cfg: ExperimentConfig| {
            let mut sim = Sim::new(cfg.seed);
            sim.record_trace();
            run_pipeline_in(&mut sim, cfg);
            sim.take_trace().expect("trace recorded").schedule_hash()
        };
        let mut small = ExperimentConfig::fig7();
        small.steps = 8;
        let clean = hash_of(small.clone());
        let mut empty_plan = small.clone();
        empty_plan.faults = SimFaultPlan::new(); // explicitly empty
        assert_eq!(hash_of(empty_plan), clean, "empty plan must not perturb the schedule");
        let mut faulted = small;
        faulted.faults =
            SimFaultPlan::new().stall_container(SimDuration::from_secs(20), "Bonds", SimDuration::from_secs(5));
        assert_ne!(hash_of(faulted), clean, "a real fault does change the schedule");
    }

    /// Crashing a staging node out from under a container shrinks it; the
    /// last node's crash kills the container outright and recovery takes
    /// over.
    #[test]
    fn node_crash_shrinks_then_kills_the_container() {
        // Fig. 7 layout: staging ids start at sim_nodes (256); Helper
        // leases 8 (256..264), Bonds takes 264.
        let cfg = ExperimentConfig::fig7()
            .to_builder()
            .staging_nodes(16)
            .faults(SimFaultPlan::new().crash_node(SimDuration::from_secs(120), 264))
            .build()
            .expect("valid");
        let steps = cfg.steps;
        let run = run_pipeline(cfg);
        // Bonds held node 264 (possibly among others after a resize): its
        // crash either shrank or killed Bonds; in the killed case recovery
        // restarted it. Either way, no step is lost.
        assert_eq!(run.log.e2e_series().len() as u64, steps);
        assert!(run.failed.is_empty());
    }
}

#[cfg(test)]
mod viz_tests {
    use super::*;
    use crate::experiment::{Directive, VizConfig};
    use crate::monitor::Action;
    use crate::policy::PolicyConfig;

    /// The paper's introduction scenario: analytics needing resources
    /// steals from the visualization container when it does not need them.
    #[test]
    fn analytics_steals_from_overprovisioned_viz() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.staging_nodes = 8;
        cfg.initial = smartpointer::Table1Names { helper: 2, bonds: 1, csym: 2, cna: 2 };
        cfg.viz = Some(VizConfig { nodes: 3, active_from_start: true });
        let run = run_pipeline(cfg);
        let stole_from_viz = run.log.actions().iter().any(|(_, a)| {
            matches!(
                a,
                Action::Increase { source: crate::monitor::ResourceSource::StolenFrom(d), .. }
                    if run.log.name_of(*d) == "Viz"
            )
        });
        assert!(stole_from_viz, "actions: {:?}", run.log.actions());
        assert!(run.blocked_at.is_none());
        // Viz keeps running on its remaining nodes.
        let viz_done = run.completed.iter().find(|(n, _)| *n == "Viz").expect("viz exists").1;
        assert!(viz_done > 0, "viz must still process steps after the steal");
    }

    /// Online user direction: launch the visualization mid-run.
    #[test]
    fn launch_viz_directive_activates_mid_run() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.staging_nodes = 15; // 13 held + 2 spare for the viz launch
        cfg.viz = Some(VizConfig { nodes: 2, active_from_start: false });
        cfg.directives = vec![(SimDuration::from_secs(60), Directive::LaunchViz)];
        let run = run_pipeline(cfg);
        assert!(run
            .log
            .actions()
            .iter()
            .any(|(t, a)| matches!(a, Action::Activate { .. })
                && t.as_secs_f64() >= 60.0));
        let viz_done = run.completed.iter().find(|(n, _)| *n == "Viz").expect("viz exists").1;
        assert!(viz_done > 0 && viz_done < ExperimentConfig::fig7().steps,
            "viz only sees steps after its launch: {viz_done}");
    }

    /// A user can also force an inactive filter on without the data branch.
    #[test]
    fn activate_directive_forces_cna_on() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.staging_nodes = 16; // room for CNA's 2 nodes
        cfg.directives = vec![(SimDuration::from_secs(45), Directive::Activate("CNA"))];
        let run = run_pipeline(cfg);
        // CNA is online but reads nothing until CSym retires — forcing it
        // on is a no-op for the data path unless the branch fires too.
        assert!(run
            .log
            .actions()
            .iter()
            .any(|(_, a)| matches!(a, Action::Activate { .. })));
    }

    /// Without policy, the viz container is left alone even when analytics
    /// starve — the unmanaged baseline for the steal scenario.
    #[test]
    fn unmanaged_run_never_steals_from_viz() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.staging_nodes = 8;
        cfg.initial = smartpointer::Table1Names { helper: 2, bonds: 1, csym: 2, cna: 2 };
        cfg.viz = Some(VizConfig { nodes: 3, active_from_start: true });
        cfg.policy = PolicyConfig { enabled: false, ..PolicyConfig::default() };
        cfg.steps = 60;
        let run = run_pipeline(cfg);
        assert!(run.log.actions().iter().all(|(_, a)| !matches!(a, Action::Increase { .. })));
        assert!(run.blocked_at.is_some(), "starving bonds must eventually block");
    }
}

#[cfg(test)]
mod monitoring_tests {
    use super::*;
    use crate::monitor::MonitorConfig;

    /// The paper's point about flexible monitoring: aggressive sampling
    /// perturbs the monitored components; reducing the frequency recovers
    /// the lost throughput.
    #[test]
    fn heavy_monitoring_perturbs_the_bottleneck() {
        let run_with = |report_every: u64, per_sample_cost: SimDuration| {
            let mut cfg = ExperimentConfig::fig7();
            cfg.monitoring = MonitorConfig {
                report_every,
                per_sample_cost,
                delivery_delay: SimDuration::from_micros(20),
            };
            cfg.steps = 20;
            run_pipeline(cfg)
        };
        let cost = SimDuration::from_secs(2); // pathological probe cost
        let heavy = run_with(1, cost);
        let light = run_with(8, cost);
        // Compare the bottleneck's mean observed latency: the per-sample
        // cost inflates every heavy-run service time.
        let bonds_mean = |r: &PipelineRun| {
            let id = r
                .log
                .containers()
                .find(|&id| r.log.name_of(id) == "Bonds")
                .expect("bonds registered");
            let pts = r.log.latency_series(id).expect("series").points().to_vec();
            pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64
        };
        let (h, l) = (bonds_mean(&heavy), bonds_mean(&light));
        assert!(
            h > l + 1.0,
            "per-step sampling at 2 s/sample must inflate Bonds latency: {h} vs {l}"
        );
        // Lighter monitoring reports fewer samples.
        let count = |r: &PipelineRun| {
            r.log
                .containers()
                .filter_map(|id| r.log.latency_series(id))
                .map(|s| s.len())
                .sum::<usize>()
        };
        assert!(count(&light) < count(&heavy));
    }

    #[test]
    fn default_monitoring_is_cheap() {
        // The default 50 µs probe must not change experiment outcomes.
        let run = run_pipeline(ExperimentConfig::fig7());
        assert!(run.blocked_at.is_none());
        assert!(run.offline.is_empty());
    }
}

#[cfg(test)]
mod trade_tests {
    use super::*;
    use crate::monitor::Action;

    /// Nodes held by containers at the end of a run (the rest are spare;
    /// the staging area itself enforces no-double-lease).
    fn held_nodes(run: &PipelineRun) -> u32 {
        run.final_units.iter().map(|&(_, u)| u).sum()
    }

    /// A transactional trade commits: the Fig. 7 steal still happens, with
    /// the transaction's latency charged.
    #[test]
    fn committed_trade_behaves_like_fig7() {
        let cfg = ExperimentConfig::fig7();
        assert!(cfg.policy.transactional_trades);
        let run = run_pipeline(cfg.clone());
        assert!(run.log.actions().iter().any(|(_, a)| matches!(a, Action::Decrease { .. })));
        assert!(run.log.actions().iter().any(|(_, a)| matches!(a, Action::Increase { .. })));
        assert!(run.blocked_at.is_none());
        // Node inventory is conserved.
        assert!(held_nodes(&run) <= cfg.staging_nodes);
    }

    /// An injected transaction failure rolls the trade back atomically —
    /// the donor keeps its node, the recipient gets nothing — and a retry
    /// succeeds on the next evaluation.
    #[test]
    fn aborted_trade_moves_nothing_then_retries() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.trade_faults = vec![0]; // first trade aborts
        let run = run_pipeline(cfg.clone());

        let actions = run.log.actions();
        let abort_pos = actions
            .iter()
            .position(|(_, a)| matches!(a, Action::TradeAborted { .. }))
            .expect("first trade must abort");
        // Nothing moved before or at the abort.
        assert!(actions[..abort_pos]
            .iter()
            .all(|(_, a)| !matches!(a, Action::Decrease { .. } | Action::Increase { .. })));
        // The retry (trade 1) commits later.
        assert!(actions[abort_pos + 1..]
            .iter()
            .any(|(_, a)| matches!(a, Action::Increase { .. })));
        // Inventory still conserved and the run still succeeds.
        assert!(run.blocked_at.is_none());
        assert!(held_nodes(&run) <= cfg.staging_nodes);
    }

    /// With every trade failing, the bottleneck never gets the node; the
    /// pipeline stays consistent (no partial trades) even while degraded.
    #[test]
    fn persistent_trade_failure_never_leaks_nodes() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.trade_faults = (0..64).collect();
        cfg.steps = 30;
        let run = run_pipeline(cfg.clone());
        assert!(run.log.actions().iter().all(|(_, a)| !matches!(a, Action::Increase { .. })));
        let aborts = run
            .log
            .actions()
            .iter()
            .filter(|(_, a)| matches!(a, Action::TradeAborted { .. }))
            .count();
        assert!(aborts >= 2, "retries keep aborting: {aborts}");
        // Donor kept everything: helper still holds its 8 nodes.
        let helper =
            run.final_units.iter().find(|(n, _)| *n == "Helper").expect("helper").1;
        assert_eq!(helper, 8);
    }

    /// Non-transactional mode still works (the pre-D2T behaviour).
    #[test]
    fn plain_trades_still_work() {
        let mut cfg = ExperimentConfig::fig7();
        cfg.policy.transactional_trades = false;
        cfg.trade_faults = vec![0]; // ignored without transactions
        let run = run_pipeline(cfg);
        assert!(run.log.actions().iter().any(|(_, a)| matches!(a, Action::Increase { .. })));
        assert!(run
            .log
            .actions()
            .iter()
            .all(|(_, a)| !matches!(a, Action::TradeAborted { .. })));
    }
}
