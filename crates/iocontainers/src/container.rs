//! Container specifications and runtime state.
//!
//! A container wraps one analytics component: it holds the staging nodes
//! the component runs on, the component's compute model and cost model,
//! its ingress queue, and the bookkeeping its local manager exposes to
//! global management (latency window, queue depth, resize estimates).

use std::collections::VecDeque;

use sim_core::stats::SlidingWindow;
use sim_core::{SimDuration, SimTime};
use simnet::NodeId;
use smartpointer::{ComputeModel, ServiceModel};

/// Identifier of a container within one pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ContainerId(pub u32);

/// Lifecycle status of a container.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Processing steps normally.
    Online,
    /// A resize protocol is in flight: intake is paused (upstream DataTap
    /// writers are paused) until the given time.
    Resizing {
        /// When the resize completes and intake resumes.
        until: SimTime,
    },
    /// Taken offline: the component no longer runs; upstream outputs
    /// destined here are written to disk with provenance instead.
    Offline,
    /// Declared but not yet started (e.g. CNA before a crack is detected).
    Inactive,
    /// Crashed (injected fault): the component is dead and consumes nothing
    /// until recovery restarts it or takes it offline. Arriving steps keep
    /// queueing — recovery must lose none of them.
    Failed,
    /// Temporarily wedged (injected processing stall): intake continues but
    /// no step is dispatched until the given time.
    Stalled {
        /// When processing resumes.
        until: SimTime,
    },
}

/// Static description of one container.
#[derive(Clone, Debug)]
pub struct ContainerSpec {
    /// Component name (also the container's name).
    pub name: &'static str,
    /// Compute model the component uses (Table I).
    pub model: ComputeModel,
    /// Calibrated service-time model.
    pub service: ServiceModel,
    /// Nodes the container starts with.
    pub initial_nodes: u32,
    /// Ingress queue capacity in steps; overflow blocks the pipeline.
    pub queue_capacity: usize,
    /// Essential containers are never taken offline by policy.
    pub essential: bool,
    /// Containers that must be online for this one to be useful (their
    /// removal cascades here).
    pub depends_on: Vec<&'static str>,
    /// Whether the container starts active (CNA starts inactive and is
    /// activated by the dynamic branch).
    pub starts_active: bool,
    /// Ratio of output bytes to input bytes (Bonds forwards atoms plus an
    /// adjacency list, CSym/CNA emit small annotations).
    pub output_ratio: f64,
}

impl ContainerSpec {
    /// Replicas the engine runs at `units` nodes: round-robin components
    /// run one replica per node; single-instance components always run
    /// exactly one regardless of node count.
    pub fn effective_replicas(&self, units: u32) -> usize {
        match self.model {
            ComputeModel::RoundRobin => units.max(1) as usize,
            _ => 1,
        }
    }
}

/// A step waiting in (or moving through) a container.
#[derive(Clone, Copy, Debug)]
pub struct QueuedStep {
    /// Output-step index.
    pub step: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// When the step entered this container (latency epoch).
    pub entered: SimTime,
    /// When the step was originally emitted by the application (for
    /// end-to-end latency).
    pub emitted: SimTime,
}

/// Runtime state of a container inside the discrete-event pipeline.
#[derive(Debug)]
pub struct ContainerState {
    /// The static spec.
    pub spec: ContainerSpec,
    /// This container's id.
    pub id: ContainerId,
    /// Nodes currently held.
    pub nodes: Vec<NodeId>,
    /// Per-replica next-free time (one replica per node).
    pub replica_free: Vec<SimTime>,
    /// Ingress queue.
    pub queue: VecDeque<QueuedStep>,
    /// Lifecycle status.
    pub status: Status,
    /// Recent per-step latencies (entry → exit).
    pub latency_window: SlidingWindow,
    /// Steps fully processed.
    pub completed: u64,
    /// Steps dropped because the container was offline when they arrived.
    pub bypassed: u64,
    /// True once the queue has overflowed (pipeline blocked).
    pub overflowed: bool,
    /// True when the container was pruned by policy with work still owed
    /// to the stored data (recorded in provenance as a pending op). Branch
    /// retirement (CSym after detection) does not owe work.
    pub owed: bool,
}

impl ContainerState {
    /// Creates runtime state for a spec with its initially assigned nodes.
    pub fn new(id: ContainerId, spec: ContainerSpec, nodes: Vec<NodeId>) -> ContainerState {
        let status = if spec.starts_active { Status::Online } else { Status::Inactive };
        let replica_free = vec![SimTime::ZERO; nodes.len()];
        ContainerState {
            spec,
            id,
            nodes,
            replica_free,
            queue: VecDeque::new(),
            status,
            latency_window: SlidingWindow::new(4),
            completed: 0,
            bypassed: 0,
            overflowed: false,
            owed: false,
        }
    }

    /// Resource units (replicas/ranks) currently held.
    pub fn units(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// True when the container accepts and processes steps.
    pub fn is_online(&self) -> bool {
        matches!(self.status, Status::Online | Status::Resizing { .. })
    }

    /// True when arriving steps should queue here rather than bypass to
    /// disk. A failed or stalled container still *accepts* steps — its
    /// queue is the recovery path's claim that no time step is lost — it
    /// just stops consuming them until recovery acts.
    pub fn accepts_steps(&self) -> bool {
        matches!(
            self.status,
            Status::Online | Status::Resizing { .. } | Status::Failed | Status::Stalled { .. }
        )
    }

    /// Service time for one step at the current size.
    pub fn step_time(&self, atoms: u64) -> SimDuration {
        self.spec.service.step_time_with(atoms, self.spec.model, self.units())
    }

    /// Sustained throughput (steps/s) at the current size.
    pub fn throughput(&self, atoms: u64) -> f64 {
        self.spec.service.throughput(atoms, self.spec.model, self.units())
    }

    /// Local-manager estimate: units needed to sustain the cadence. This is
    /// the "ask the container-local authority what is needed to speed it
    /// up" interface of the paper.
    pub fn units_needed(&self, atoms: u64, cadence: SimDuration) -> u32 {
        self.spec.service.units_to_sustain(atoms, self.spec.model, cadence)
    }

    /// Local-manager estimate: units this container could give away while
    /// still sustaining the cadence (its over-provisioning margin).
    pub fn units_spareable(&self, atoms: u64, cadence: SimDuration) -> u32 {
        if !self.is_online() {
            return 0;
        }
        let needed = self.units_needed(atoms, cadence).max(1);
        self.units().saturating_sub(needed)
    }

    /// Resets the per-replica free times to match the current node count,
    /// with every replica free at `at` (used after a resize or restart).
    pub fn reset_replicas(&mut self, at: SimTime) {
        let n = self.spec.effective_replicas(self.units());
        self.replica_free.clear();
        self.replica_free.resize(n, at);
    }

    /// The earliest-free replica index, if any replica exists.
    pub fn next_free_replica(&self) -> Option<usize> {
        self.replica_free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpointer::default_models;

    fn bonds_spec() -> ContainerSpec {
        ContainerSpec {
            name: "Bonds",
            model: ComputeModel::RoundRobin,
            service: default_models().bonds,
            initial_nodes: 1,
            queue_capacity: 8,
            essential: false,
            depends_on: vec!["Helper"],
            starts_active: true,
            output_ratio: 1.5,
        }
    }

    fn state(nodes: u32) -> ContainerState {
        let spec = bonds_spec();
        ContainerState::new(ContainerId(1), spec, (0..nodes).map(NodeId).collect())
    }

    #[test]
    fn units_track_nodes() {
        let st = state(3);
        assert_eq!(st.units(), 3);
        assert!(st.is_online());
    }

    #[test]
    fn round_robin_throughput_scales_with_units() {
        let atoms = mdsim::atoms_for_nodes(256);
        let one = state(1).throughput(atoms);
        let three = state(3).throughput(atoms);
        assert!((three / one - 3.0).abs() < 1e-9);
    }

    #[test]
    fn local_manager_estimates() {
        let atoms = mdsim::atoms_for_nodes(256);
        let cadence = SimDuration::from_secs(15);
        let st = state(1);
        // ~19.4 s service: needs 2 RR replicas, can spare none.
        assert_eq!(st.units_needed(atoms, cadence), 2);
        assert_eq!(st.units_spareable(atoms, cadence), 0);
        let big = state(5);
        assert_eq!(big.units_spareable(atoms, cadence), 3);
    }

    #[test]
    fn inactive_spec_starts_inactive() {
        let spec = ContainerSpec { starts_active: false, ..bonds_spec() };
        let st = ContainerState::new(ContainerId(0), spec, vec![NodeId(9)]);
        assert_eq!(st.status, Status::Inactive);
        assert!(!st.is_online());
        assert_eq!(st.units_spareable(1_000_000, SimDuration::from_secs(15)), 0);
    }

    #[test]
    fn failed_and_stalled_accept_steps_but_are_not_online() {
        let mut st = state(2);
        st.status = Status::Failed;
        assert!(st.accepts_steps());
        assert!(!st.is_online());
        assert_eq!(st.units_spareable(1_000_000, SimDuration::from_secs(15)), 0);
        st.status = Status::Stalled { until: SimTime::from_secs(30) };
        assert!(st.accepts_steps());
        assert!(!st.is_online());
        st.status = Status::Offline;
        assert!(!st.accepts_steps());
    }

    #[test]
    fn next_free_replica_picks_earliest() {
        let mut st = state(3);
        st.replica_free = vec![
            SimTime::from_secs(10),
            SimTime::from_secs(5),
            SimTime::from_secs(7),
        ];
        assert_eq!(st.next_free_replica(), Some(1));
    }
}
