//! Online monitoring: latency samples, bottleneck detection, action log.
//!
//! Containers report per-step latency (entry → exit, queue wait included)
//! to the global manager over the control overlay; the global manager's
//! aggregate view drives bottleneck analysis — "the pipeline's container
//! with the longest average latency" — and records every management action
//! for the figure harnesses.

use std::collections::BTreeMap;

use sim_core::stats::{DurationHistogram, Series};
use sim_core::{SimDuration, SimTime};
use simtel::{Category, Telemetry};

use crate::container::ContainerId;

/// Configuration of the monitoring layer — the paper's "flexible
/// monitoring": *which* metrics are captured, *how often*, and what the
/// capture costs the monitored component. Tuning these is how perturbation
/// to the application is minimized.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Report every k-th output step (1 = every step).
    pub report_every: u64,
    /// Software cost charged to the container for taking one sample
    /// (serializing counters, building the event).
    pub per_sample_cost: SimDuration,
    /// Control-overlay delivery delay from a local manager to the global
    /// manager.
    pub delivery_delay: SimDuration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            report_every: 1,
            per_sample_cost: SimDuration::from_micros(50),
            delivery_delay: SimDuration::from_micros(20),
        }
    }
}

impl MonitorConfig {
    /// Whether an output step is sampled under this configuration.
    pub fn samples_step(&self, step: u64) -> bool {
        self.report_every <= 1 || step.is_multiple_of(self.report_every)
    }
}

/// One latency sample reported by a container's local manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySample {
    /// Reporting container.
    pub container: ContainerId,
    /// The step measured.
    pub step: u64,
    /// Entry→exit latency including queue wait.
    pub latency: SimDuration,
    /// Queue depth after the step left.
    pub queue_len: usize,
    /// When the sample was taken (at the container).
    pub taken_at: SimTime,
}

/// A management action recorded in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Container grew by `added` nodes.
    Increase {
        /// Target container.
        container: ContainerId,
        /// Nodes added.
        added: u32,
        /// Where the nodes came from.
        source: ResourceSource,
    },
    /// Container shrank by `removed` nodes.
    Decrease {
        /// Target container.
        container: ContainerId,
        /// Nodes removed.
        removed: u32,
    },
    /// Container (and its dependents) taken offline.
    Offline {
        /// Containers moved offline, in cascade order.
        containers: Vec<ContainerId>,
    },
    /// A previously inactive container was activated (dynamic branch).
    Activate {
        /// The activated container.
        container: ContainerId,
    },
    /// The pipeline blocked: a staging queue overflowed back to the app.
    Blocked {
        /// The overflowing container.
        container: ContainerId,
    },
    /// A transactional resource trade aborted (injected or real failure):
    /// nothing moved, the trade will be retried.
    TradeAborted {
        /// The donor whose decrease was rolled back.
        donor: ContainerId,
        /// The intended recipient.
        recipient: ContainerId,
    },
    /// The failure detector declared a container dead after missing its
    /// heartbeats.
    ContainerFailed {
        /// The dead container.
        container: ContainerId,
        /// Consecutive heartbeats missed at declaration time.
        missed: u32,
    },
    /// A failed container was restarted on spare staging nodes.
    Restarted {
        /// The recovered container.
        container: ContainerId,
        /// 1-based restart attempt number.
        attempt: u32,
        /// Spare nodes leased for the new instance.
        added: u32,
    },
}

/// Where the nodes for an increase came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceSource {
    /// Spare staging-area nodes.
    Spare,
    /// Stolen from another container of the same tenant.
    StolenFrom(ContainerId),
    /// Stolen across tenants: a foreign tenant held more than its fair
    /// share and its container could spare the nodes.
    StolenFromTenant {
        /// The donor tenant's index in the experiment.
        tenant: u32,
        /// The donor container.
        container: ContainerId,
    },
}

/// The global manager's aggregate monitoring view.
///
/// Every signal the log stores is mirrored into its [`Telemetry`] handle
/// (disabled by default): latency and queue-depth samples become
/// [`Category::Container`] gauges under the figure-harness series names,
/// end-to-end latency becomes the `end_to_end_s` gauge, and management
/// actions become [`Category::Management`] markers on the `manager`
/// track — so one exported trace carries the whole management story.
#[derive(Debug, Default)]
pub struct MonitorLog {
    latency: BTreeMap<ContainerId, Series>,
    histograms: BTreeMap<ContainerId, DurationHistogram>,
    queue: BTreeMap<ContainerId, Series>,
    e2e: Series,
    actions: Vec<(SimTime, Action)>,
    names: BTreeMap<ContainerId, &'static str>,
    telemetry: Telemetry,
    /// Prefix applied to every mirrored telemetry name and track
    /// (`"t3/"` in a multi-tenant run, empty otherwise). An empty scope
    /// leaves the telemetry byte-identical to the single-tenant layout.
    scope: String,
    /// Scoped telemetry keys precomputed at construction/registration so
    /// the per-sample hot paths ([`MonitorLog::record`],
    /// [`MonitorLog::record_e2e`]) format nothing: the same strings the
    /// old `format!("{scope}…")` appends produced, built once.
    scoped_e2e: String,
    scoped_manager: String,
    scoped_manager_actions: String,
    scoped_fault: String,
    scoped_fault_recovery: String,
    /// Per-container `("{scope}{name}_latency_s", "{scope}{name}_queue")`.
    scoped_keys: BTreeMap<ContainerId, (String, String)>,
}

impl MonitorLog {
    /// Creates an empty log with telemetry disabled.
    pub fn new() -> MonitorLog {
        MonitorLog::with_telemetry(Telemetry::disabled())
    }

    /// Creates an empty log mirroring its signals into `telemetry`.
    pub fn with_telemetry(telemetry: Telemetry) -> MonitorLog {
        MonitorLog::with_scoped_telemetry(telemetry, String::new())
    }

    /// Creates an empty log mirroring its signals into `telemetry`, with
    /// every exported name and track prefixed by `scope` (pass the tenant
    /// id plus `/`). An empty scope is byte-identical to
    /// [`MonitorLog::with_telemetry`].
    pub fn with_scoped_telemetry(telemetry: Telemetry, scope: String) -> MonitorLog {
        MonitorLog {
            e2e: Series::new("end_to_end_s"),
            telemetry,
            scoped_e2e: format!("{scope}end_to_end_s"),
            scoped_manager: format!("{scope}manager"),
            scoped_manager_actions: format!("{scope}manager.actions"),
            scoped_fault: format!("{scope}fault"),
            scoped_fault_recovery: format!("{scope}fault.recovery_actions"),
            scope,
            ..MonitorLog::default()
        }
    }

    /// A one-line label for an action, using registered container names
    /// (shared by trace markers and the narration in examples).
    pub fn action_label(&self, action: &Action) -> String {
        match action {
            Action::Increase { container, added, source } => {
                let src = match source {
                    ResourceSource::Spare => "spare pool".to_string(),
                    ResourceSource::StolenFrom(d) => self.name_of(*d).to_string(),
                    ResourceSource::StolenFromTenant { tenant, container } => {
                        format!("tenant {tenant}#{}", container.0)
                    }
                };
                format!("increase {} +{added} (from {src})", self.name_of(*container))
            }
            Action::Decrease { container, removed } => {
                format!("decrease {} -{removed}", self.name_of(*container))
            }
            Action::Offline { containers } => {
                let names: Vec<&str> = containers.iter().map(|c| self.name_of(*c)).collect();
                format!("offline {}", names.join("+"))
            }
            Action::Activate { container } => format!("activate {}", self.name_of(*container)),
            Action::Blocked { container } => format!("blocked at {}", self.name_of(*container)),
            Action::TradeAborted { donor, recipient } => {
                format!("trade aborted {}→{}", self.name_of(*donor), self.name_of(*recipient))
            }
            Action::ContainerFailed { container, missed } => {
                format!("failed {} ({missed} heartbeats missed)", self.name_of(*container))
            }
            Action::Restarted { container, attempt, added } => {
                format!("restarted {} (attempt {attempt}, +{added})", self.name_of(*container))
            }
        }
    }

    /// Registers a container's display name.
    pub fn register(&mut self, id: ContainerId, name: &'static str) {
        self.names.insert(id, name);
        let scope = &self.scope;
        self.scoped_keys
            .entry(id)
            .or_insert_with(|| (format!("{scope}{name}_latency_s"), format!("{scope}{name}_queue")));
        self.latency.entry(id).or_insert_with(|| Series::new(format!("{name}_latency_s")));
        self.queue.entry(id).or_insert_with(|| Series::new(format!("{name}_queue")));
    }

    /// The registered name of a container.
    pub fn name_of(&self, id: ContainerId) -> &'static str {
        self.names.get(&id).copied().unwrap_or("?")
    }

    /// Records a latency sample arriving at the global manager.
    pub fn record(&mut self, sample: &LatencySample) {
        if let Some(s) = self.latency.get_mut(&sample.container) {
            s.push(sample.taken_at, sample.latency.as_secs_f64());
        }
        self.histograms.entry(sample.container).or_default().add(sample.latency);
        if let Some(s) = self.queue.get_mut(&sample.container) {
            s.push(sample.taken_at, sample.queue_len as f64);
        }
        if self.telemetry.enabled(Category::Container) {
            // Registered containers use the precomputed keys (the hot
            // path); an unregistered id falls back to formatting the
            // legacy "?" names so the exported trace is unchanged.
            match self.scoped_keys.get(&sample.container) {
                Some((latency_key, queue_key)) => {
                    self.telemetry.gauge(
                        Category::Container,
                        latency_key,
                        sample.taken_at,
                        sample.latency.as_secs_f64(),
                    );
                    self.telemetry.gauge(
                        Category::Container,
                        queue_key,
                        sample.taken_at,
                        sample.queue_len as f64,
                    );
                }
                None => {
                    let name = self.name_of(sample.container);
                    let scope = &self.scope;
                    self.telemetry.gauge(
                        Category::Container,
                        &format!("{scope}{name}_latency_s"),
                        sample.taken_at,
                        sample.latency.as_secs_f64(),
                    );
                    self.telemetry.gauge(
                        Category::Container,
                        &format!("{scope}{name}_queue"),
                        sample.taken_at,
                        sample.queue_len as f64,
                    );
                }
            }
        }
    }

    /// Upper bound on the q-quantile of a container's observed latency
    /// (from a power-of-two histogram; zero when no samples arrived).
    pub fn latency_quantile(&self, id: ContainerId, q: f64) -> SimDuration {
        self.histograms.get(&id).map(|h| h.quantile(q)).unwrap_or(SimDuration::ZERO)
    }

    /// Records an end-to-end latency point (step emitted → pipeline exit).
    pub fn record_e2e(&mut self, at: SimTime, e2e: SimDuration) {
        self.e2e.push(at, e2e.as_secs_f64());
        self.telemetry.gauge(Category::Container, &self.scoped_e2e, at, e2e.as_secs_f64());
    }

    /// Records a management action.
    pub fn record_action(&mut self, at: SimTime, action: Action) {
        if self.telemetry.enabled(Category::Management) {
            self.telemetry.mark(
                Category::Management,
                &self.scoped_manager,
                &self.action_label(&action),
                at,
            );
            self.telemetry.count(Category::Management, &self.scoped_manager_actions, 1);
        }
        // Failure-detection and recovery actions additionally land on the
        // fault track, so a fault-focused trace shows injection and
        // recovery side by side.
        if matches!(action, Action::ContainerFailed { .. } | Action::Restarted { .. })
            && self.telemetry.enabled(Category::Fault)
        {
            self.telemetry.mark(
                Category::Fault,
                &self.scoped_fault,
                &self.action_label(&action),
                at,
            );
            self.telemetry.count(Category::Fault, &self.scoped_fault_recovery, 1);
        }
        self.actions.push((at, action));
    }

    /// Latency series for a container.
    pub fn latency_series(&self, id: ContainerId) -> Option<&Series> {
        self.latency.get(&id)
    }

    /// Queue-depth series for a container.
    pub fn queue_series(&self, id: ContainerId) -> Option<&Series> {
        self.queue.get(&id)
    }

    /// The end-to-end latency series.
    pub fn e2e_series(&self) -> &Series {
        &self.e2e
    }

    /// The full action log.
    pub fn actions(&self) -> &[(SimTime, Action)] {
        &self.actions
    }

    /// All registered containers in id order.
    pub fn containers(&self) -> impl Iterator<Item = ContainerId> + '_ {
        self.names.keys().copied()
    }

    /// Bottleneck detection over recent samples: the container with the
    /// longest average latency across its last `window` samples.
    pub fn bottleneck(&self, window: usize) -> Option<(ContainerId, SimDuration)> {
        let mut best: Option<(ContainerId, f64)> = None;
        for (&id, series) in &self.latency {
            let pts = series.points();
            if pts.is_empty() {
                continue;
            }
            let tail = &pts[pts.len().saturating_sub(window)..];
            let avg = tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64;
            if best.map(|(_, b)| avg > b).unwrap_or(true) {
                best = Some((id, avg));
            }
        }
        best.map(|(id, avg)| (id, SimDuration::from_secs_f64(avg.max(0.0))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u32, latency_s: u64, at_s: u64) -> LatencySample {
        LatencySample {
            container: ContainerId(id),
            step: 0,
            latency: SimDuration::from_secs(latency_s),
            queue_len: 1,
            taken_at: SimTime::from_secs(at_s),
        }
    }

    #[test]
    fn bottleneck_is_longest_average_latency() {
        let mut log = MonitorLog::new();
        log.register(ContainerId(0), "Helper");
        log.register(ContainerId(1), "Bonds");
        for t in 0..4 {
            log.record(&sample(0, 2, t));
            log.record(&sample(1, 20, t));
        }
        let (id, lat) = log.bottleneck(4).expect("samples exist");
        assert_eq!(id, ContainerId(1));
        assert_eq!(lat, SimDuration::from_secs(20));
    }

    #[test]
    fn bottleneck_window_uses_recent_samples_only() {
        let mut log = MonitorLog::new();
        log.register(ContainerId(0), "A");
        log.register(ContainerId(1), "B");
        // A was slow long ago, B is slow now.
        log.record(&sample(0, 100, 0));
        for t in 1..5 {
            log.record(&sample(0, 1, t));
            log.record(&sample(1, 10, t));
        }
        let (id, _) = log.bottleneck(3).expect("samples exist");
        assert_eq!(id, ContainerId(1));
    }

    #[test]
    fn empty_log_has_no_bottleneck() {
        let mut log = MonitorLog::new();
        log.register(ContainerId(0), "A");
        assert!(log.bottleneck(3).is_none());
    }

    #[test]
    fn actions_are_logged_in_order() {
        let mut log = MonitorLog::new();
        log.register(ContainerId(1), "Bonds");
        log.record_action(
            SimTime::from_secs(10),
            Action::Increase {
                container: ContainerId(1),
                added: 2,
                source: ResourceSource::Spare,
            },
        );
        log.record_action(
            SimTime::from_secs(20),
            Action::Offline { containers: vec![ContainerId(1)] },
        );
        assert_eq!(log.actions().len(), 2);
        assert!(matches!(log.actions()[0].1, Action::Increase { added: 2, .. }));
    }

    #[test]
    fn e2e_series_accumulates() {
        let mut log = MonitorLog::new();
        log.record_e2e(SimTime::from_secs(1), SimDuration::from_secs(30));
        log.record_e2e(SimTime::from_secs(2), SimDuration::from_secs(40));
        assert_eq!(log.e2e_series().len(), 2);
        assert_eq!(log.e2e_series().max_value(), Some(40.0));
    }

    #[test]
    fn latency_quantiles_follow_samples() {
        let mut log = MonitorLog::new();
        log.register(ContainerId(0), "Bonds");
        for s in 1..=100u64 {
            log.record(&sample(0, s, s));
        }
        let p50 = log.latency_quantile(ContainerId(0), 0.5);
        let p99 = log.latency_quantile(ContainerId(0), 0.99);
        assert!(p99 >= p50);
        assert!(p99 >= SimDuration::from_secs(99));
        assert_eq!(log.latency_quantile(ContainerId(9), 0.5), SimDuration::ZERO);
    }

    #[test]
    fn failure_and_restart_actions_have_labels() {
        let mut log = MonitorLog::new();
        log.register(ContainerId(1), "Bonds");
        let failed = Action::ContainerFailed { container: ContainerId(1), missed: 3 };
        assert_eq!(log.action_label(&failed), "failed Bonds (3 heartbeats missed)");
        let restarted = Action::Restarted { container: ContainerId(1), attempt: 1, added: 2 };
        assert_eq!(log.action_label(&restarted), "restarted Bonds (attempt 1, +2)");
        log.record_action(SimTime::from_secs(40), failed);
        log.record_action(SimTime::from_secs(50), restarted);
        assert_eq!(log.actions().len(), 2);
    }

    #[test]
    fn names_resolve() {
        let mut log = MonitorLog::new();
        log.register(ContainerId(2), "CSym");
        assert_eq!(log.name_of(ContainerId(2)), "CSym");
        assert_eq!(log.name_of(ContainerId(9)), "?");
    }
}
