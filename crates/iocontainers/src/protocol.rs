//! The container resize and offline control protocols.
//!
//! Implements the message rounds of the paper's Fig. 3 over the simulated
//! interconnect: the global manager asks a container manager to change
//! size; rounds of control messages distribute endpoint contact
//! information, pause/resume upstream DataTap writers, and signal
//! completion. The harnesses for Figs. 4 and 5 run these protocols in
//! isolation and report the same breakdown the paper plots — total time,
//! the intra-container metadata exchange (dominant), and the nearly
//! negligible manager↔manager point-to-point messages. The `aprun` launch
//! cost is sampled separately so it can be factored out exactly as the
//! paper does.

use datatap::TransportCosts;
use sim_core::{shared, Sim, SimDuration, SimTime};
use simnet::{LaunchModel, Net, Network, NodeId};

/// Node roles participating in a resize.
#[derive(Clone, Debug)]
pub struct ProtocolLayout {
    /// The global manager's node.
    pub global_mgr: NodeId,
    /// The container manager's node.
    pub container_mgr: NodeId,
    /// Upstream DataTap writer endpoints feeding this container.
    pub upstream_writers: Vec<NodeId>,
    /// Existing replica nodes.
    pub replicas: Vec<NodeId>,
}

impl ProtocolLayout {
    /// A compact layout for microbenchmarks: manager nodes first, then
    /// `writers` upstream endpoints, then `replicas` replica nodes.
    pub fn microbench(writers: u32, replicas: u32) -> ProtocolLayout {
        let mut next = 2u32;
        let mut take = |n: u32| -> Vec<NodeId> {
            let v = (next..next + n).map(NodeId).collect();
            next += n;
            v
        };
        ProtocolLayout {
            global_mgr: NodeId(0),
            container_mgr: NodeId(1),
            upstream_writers: take(writers),
            replicas: take(replicas),
        }
    }
}

/// Timing breakdown of an increase operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IncreaseReport {
    /// Wall time of the whole protocol, excluding launch.
    pub total: SimDuration,
    /// Time spent in global-manager ↔ container-manager messages.
    pub manager_msgs: SimDuration,
    /// Time spent in intra-container registration and endpoint metadata
    /// exchange with upstream writers (the dominant term).
    pub intra_container: SimDuration,
    /// Sampled launch (`aprun`) cost, reported separately.
    pub launch: SimDuration,
}

/// Timing breakdown of a decrease operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecreaseReport {
    /// Wall time of the whole protocol.
    pub total: SimDuration,
    /// Manager ↔ manager message time.
    pub manager_msgs: SimDuration,
    /// Time waiting for upstream writers to pause and drain (dominant).
    pub pause_wait: SimDuration,
    /// Replica teardown and resume messaging.
    pub intra_container: SimDuration,
}

/// Sends a control message from `center` to every peer; each peer spends
/// `per_peer_sw` of software time and replies; `on_done` fires when the
/// last reply lands back at `center`.
fn fan_out_in(
    net: &Net,
    sim: &mut Sim,
    center: NodeId,
    peers: &[NodeId],
    per_peer_sw: SimDuration,
    on_done: impl FnOnce(&mut Sim) + 'static,
) {
    if peers.is_empty() {
        // Still costs one scheduling quantum of nothing: fire immediately.
        sim.schedule_in_named("proto.done", SimDuration::ZERO, on_done);
        return;
    }
    let pending = shared((peers.len(), Some(Box::new(on_done) as Box<dyn FnOnce(&mut Sim)>)));
    for &peer in peers {
        let net2 = net.clone();
        let pending = pending.clone();
        Network::send_control(net, sim, center, peer, move |sim| {
            let net3 = net2.clone();
            let pending = pending.clone();
            sim.schedule_in_named("proto.peer_sw", per_peer_sw, move |sim| {
                let pending = pending.clone();
                Network::send_control(&net3, sim, peer, center, move |sim| {
                    let mut p = pending.borrow_mut();
                    p.0 -= 1;
                    if p.0 == 0 {
                        if let Some(done) = p.1.take() {
                            done(sim);
                        }
                    }
                });
            });
        });
    }
}

struct Marks {
    start: SimTime,
    after_request: SimTime,
    after_intra: SimTime,
    done: SimTime,
}

/// Runs the increase protocol: the container grows by `new_nodes`.
///
/// Rounds (Fig. 3): GM→CM request; CM launches the new replicas (cost from
/// `launch`, reported separately); new replicas register with the CM; the
/// CM distributes the new endpoint information to every upstream writer,
/// each of which performs per-pair endpoint setup and connects to each new
/// replica; CM→GM completion.
pub fn run_increase(
    sim: &mut Sim,
    net: &Net,
    layout: &ProtocolLayout,
    new_nodes: &[NodeId],
    costs: &TransportCosts,
    launch: LaunchModel,
) -> IncreaseReport {
    assert!(!new_nodes.is_empty(), "increase of zero replicas");
    let marks = shared(Marks {
        start: sim.now(),
        after_request: sim.now(),
        after_intra: sim.now(),
        done: sim.now(),
    });
    let launch_cost = launch.sample(sim);

    let cm = layout.container_mgr;
    let gm = layout.global_mgr;
    let writers = layout.upstream_writers.clone();
    let added: Vec<NodeId> = new_nodes.to_vec();
    let per_writer_sw = costs.metadata_exchange(added.len() as u32, 1);

    let net0 = net.clone();
    let marks0 = marks.clone();
    // Round 1: GM -> CM.
    Network::send_control(net, sim, gm, cm, move |sim| {
        marks0.borrow_mut().after_request = sim.now();
        let net1 = net0.clone();
        let marks1 = marks0.clone();
        let writers1 = writers.clone();
        // Launch happens here; its cost is accounted separately, so the
        // simulated protocol continues immediately.
        // Round 2: new replicas register with the CM.
        fan_out_in(&net0, sim, cm, &added, SimDuration::from_micros(20), move |sim| {
            let net2 = net1.clone();
            let marks2 = marks1.clone();
            // Round 3: endpoint metadata exchange with all upstream
            // writers. The writer↔replica probe traffic is folded into the
            // per-pair software cost charged at each writer here.
            fan_out_in(&net1, sim, cm, &writers1, per_writer_sw, move |sim| {
                marks2.borrow_mut().after_intra = sim.now();
                let marks5 = marks2.clone();
                // Round 4: CM -> GM done.
                Network::send_control(&net2, sim, cm, gm, move |sim| {
                    marks5.borrow_mut().done = sim.now();
                });
            });
        });
    });

    sim.run();
    let m = marks.borrow();
    let manager_msgs = (m.after_request - m.start) + (m.done - m.after_intra);
    IncreaseReport {
        total: m.done - m.start,
        manager_msgs,
        intra_container: m.after_intra - m.after_request,
        launch: launch_cost,
    }
}

/// Runs the decrease protocol: the container shrinks by `victims`.
///
/// Rounds: GM→CM request; CM pauses every upstream writer, which must
/// drain `queued_bytes_per_writer` of announced-but-unpulled data before
/// acking (the dominant cost); CM tears down the victim replicas; CM
/// resumes the writers; CM→GM completion.
pub fn run_decrease(
    sim: &mut Sim,
    net: &Net,
    layout: &ProtocolLayout,
    victims: &[NodeId],
    costs: &TransportCosts,
    queued_bytes_per_writer: u64,
    bandwidth_bps: u64,
) -> DecreaseReport {
    assert!(!victims.is_empty(), "decrease of zero replicas");
    let marks = shared(Marks {
        start: sim.now(),
        after_request: sim.now(),
        after_intra: sim.now(),
        done: sim.now(),
    });
    // Extra mark for the pause phase boundary.
    let pause_done_at = shared(sim.now());

    let cm = layout.container_mgr;
    let gm = layout.global_mgr;
    let writers = layout.upstream_writers.clone();
    let victims: Vec<NodeId> = victims.to_vec();
    let drain = costs.drain_time(queued_bytes_per_writer, bandwidth_bps);
    let pause_toggle = costs.pause_toggle;

    let net0 = net.clone();
    let marks0 = marks.clone();
    let pause0 = pause_done_at.clone();
    Network::send_control(net, sim, gm, cm, move |sim| {
        marks0.borrow_mut().after_request = sim.now();
        let net1 = net0.clone();
        let marks1 = marks0.clone();
        let pause1 = pause0.clone();
        let victims1 = victims.clone();
        let writers_for_resume = writers.clone();
        // Round 2: pause all upstream writers; each drains before acking.
        fan_out_in(&net0, sim, cm, &writers, drain, move |sim| {
            *pause1.borrow_mut() = sim.now();
            let net2 = net1.clone();
            let marks2 = marks1.clone();
            let writers2 = writers_for_resume.clone();
            // Round 3: tear down victim replicas.
            fan_out_in(&net1, sim, cm, &victims1, SimDuration::from_micros(30), move |sim| {
                let net3 = net2.clone();
                let marks3 = marks2.clone();
                // Round 4: resume writers.
                fan_out_in(&net2, sim, cm, &writers2, pause_toggle, move |sim| {
                    marks3.borrow_mut().after_intra = sim.now();
                    let marks4 = marks3.clone();
                    Network::send_control(&net3, sim, cm, gm, move |sim| {
                        marks4.borrow_mut().done = sim.now();
                    });
                });
            });
        });
    });

    sim.run();
    let m = marks.borrow();
    let pause_done = *pause_done_at.borrow();
    let manager_msgs = (m.after_request - m.start) + (m.done - m.after_intra);
    DecreaseReport {
        total: m.done - m.start,
        manager_msgs,
        pause_wait: pause_done - m.after_request,
        intra_container: m.after_intra - pause_done,
    }
}

/// Timing breakdown of a take-offline operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OfflineReport {
    /// Wall time of the whole protocol.
    pub total: SimDuration,
    /// Manager ↔ manager message time.
    pub manager_msgs: SimDuration,
    /// Decrease-to-zero phase (writer pause + full teardown).
    pub teardown: SimDuration,
    /// Upstream output-method switch (each writer re-opens its ADIOS
    /// output against the file method and stamps provenance).
    pub method_switch: SimDuration,
}

/// Runs the offline protocol: the container's resources drop to zero and
/// every upstream writer switches its ADIOS output method to disk,
/// marking provenance — "the global manager decreasing each affected
/// container's resources to 0 … switch its output method within ADIOS to
/// write to disk using the attribute system".
pub fn run_offline(
    sim: &mut Sim,
    net: &Net,
    layout: &ProtocolLayout,
    costs: &TransportCosts,
    queued_bytes_per_writer: u64,
    bandwidth_bps: u64,
) -> OfflineReport {
    // Phase 1 is a decrease of the full replica set.
    let dec = run_decrease(
        sim,
        net,
        layout,
        &layout.replicas,
        costs,
        queued_bytes_per_writer,
        bandwidth_bps,
    );

    // Phase 2: method switch at each upstream writer (software cost of
    // closing the staging output and opening the file output), fanned out
    // from the container manager, then completion to the GM.
    let marks = shared(Marks {
        start: sim.now(),
        after_request: sim.now(),
        after_intra: sim.now(),
        done: sim.now(),
    });
    let cm = layout.container_mgr;
    let gm = layout.global_mgr;
    let writers = layout.upstream_writers.clone();
    let switch_sw = SimDuration::from_micros(200);
    let net0 = net.clone();
    let marks0 = marks.clone();
    fan_out_in(net, sim, cm, &writers, switch_sw, move |sim| {
        marks0.borrow_mut().after_intra = sim.now();
        let marks1 = marks0.clone();
        Network::send_control(&net0, sim, cm, gm, move |sim| {
            marks1.borrow_mut().done = sim.now();
        });
    });
    sim.run();

    let m = marks.borrow();
    let method_switch = m.after_intra - m.start;
    let final_msg = m.done - m.after_intra;
    OfflineReport {
        total: dec.total + method_switch + final_msg,
        manager_msgs: dec.manager_msgs + final_msg,
        teardown: dec.total - dec.manager_msgs,
        method_switch,
    }
}

/// Convenience: closed-form *estimates* of the protocol durations (without
/// running a simulation). The pipeline uses these to charge resize costs;
/// unit tests verify they track the simulated protocols.
pub mod estimate {
    use super::*;

    /// Estimated increase-protocol duration (excluding launch).
    pub fn increase(
        writers: u32,
        new_replicas: u32,
        costs: &TransportCosts,
        per_msg: SimDuration,
    ) -> SimDuration {
        // Request + done + registration round + writer round, serialized at
        // the container manager's NIC; the per-writer endpoint setup runs
        // concurrently across writers, so only one writer's share (setup
        // for each new replica) adds to the critical path.
        let msgs = 2 + 2 * new_replicas as u64 + 2 * writers as u64;
        per_msg * msgs + costs.metadata_exchange(new_replicas, 1)
    }

    /// Estimated restart-protocol duration (excluding launch and backoff).
    ///
    /// A restart is an increase from zero with extra endpoint work: every
    /// upstream writer must first tear down its endpoints to the dead
    /// instance (one message round) and then perform a full endpoint
    /// re-setup against the fresh replicas, so the per-writer metadata
    /// exchange is charged twice — stale-state teardown plus fresh setup.
    pub fn restart(
        writers: u32,
        new_replicas: u32,
        costs: &TransportCosts,
        per_msg: SimDuration,
    ) -> SimDuration {
        increase(writers, new_replicas, costs, per_msg)
            + per_msg * (2 * writers as u64)
            + costs.metadata_exchange(new_replicas, 1)
    }

    /// Estimated cost of admitting a whole tenant: every initially active
    /// stage runs its increase protocol (registration plus writer-side
    /// endpoint setup), serialized at the global manager. `stages` lists
    /// `(writers, replicas)` per stage in pipeline order.
    pub fn admission(
        stages: &[(u32, u32)],
        costs: &TransportCosts,
        per_msg: SimDuration,
    ) -> SimDuration {
        stages
            .iter()
            .map(|&(writers, replicas)| increase(writers, replicas, costs, per_msg))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// Estimated decrease-protocol duration.
    pub fn decrease(
        writers: u32,
        victims: u32,
        costs: &TransportCosts,
        per_msg: SimDuration,
        queued_bytes_per_writer: u64,
        bandwidth_bps: u64,
    ) -> SimDuration {
        let msgs = 2 + 4 * writers as u64 + 2 * victims as u64;
        per_msg * msgs
            + costs.drain_time(queued_bytes_per_writer, bandwidth_bps)
            + costs.pause_toggle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NetworkConfig;

    fn env() -> (Sim, Net) {
        (Sim::new(3), Network::new(NetworkConfig::portals_xt4()))
    }

    #[test]
    fn increase_intra_dominates_manager_msgs() {
        let (mut sim, net) = env();
        let layout = ProtocolLayout::microbench(8, 4);
        let new: Vec<NodeId> = (100..116).map(NodeId).collect();
        let r = run_increase(
            &mut sim,
            &net,
            &layout,
            &new,
            &TransportCosts::default(),
            LaunchModel::Instant,
        );
        assert!(
            r.intra_container > r.manager_msgs * 10,
            "intra {} vs manager {}",
            r.intra_container,
            r.manager_msgs
        );
        assert_eq!(r.total, r.manager_msgs + r.intra_container);
        assert_eq!(r.launch, SimDuration::ZERO);
    }

    #[test]
    fn increase_cost_grows_with_replica_count() {
        let costs = TransportCosts::default();
        let mut prev = SimDuration::ZERO;
        for k in [1u32, 4, 16, 32] {
            let (mut sim, net) = env();
            let layout = ProtocolLayout::microbench(8, 4);
            let new: Vec<NodeId> = (100..100 + k).map(NodeId).collect();
            let r = run_increase(&mut sim, &net, &layout, &new, &costs, LaunchModel::Instant);
            assert!(r.total > prev, "k={k}: {} not > {prev}", r.total);
            prev = r.total;
        }
    }

    #[test]
    fn aprun_launch_dwarfs_protocol() {
        let (mut sim, net) = env();
        let layout = ProtocolLayout::microbench(8, 4);
        let new: Vec<NodeId> = (100..104).map(NodeId).collect();
        let r = run_increase(
            &mut sim,
            &net,
            &layout,
            &new,
            &TransportCosts::default(),
            LaunchModel::Aprun,
        );
        assert!(r.launch >= LaunchModel::APRUN_MIN);
        assert!(r.launch > r.total * 50, "launch {} vs protocol {}", r.launch, r.total);
    }

    #[test]
    fn decrease_pause_dominates() {
        let (mut sim, net) = env();
        let layout = ProtocolLayout::microbench(8, 16);
        let victims: Vec<NodeId> = layout.replicas[..4].to_vec();
        // One 67 MB step buffered per writer.
        let r = run_decrease(
            &mut sim,
            &net,
            &layout,
            &victims,
            &TransportCosts::default(),
            67_000_000,
            1_600_000_000,
        );
        assert!(
            r.pause_wait > r.intra_container,
            "pause {} vs intra {}",
            r.pause_wait,
            r.intra_container
        );
        assert!(r.pause_wait > r.manager_msgs * 100);
        assert_eq!(r.total, r.manager_msgs + r.pause_wait + r.intra_container);
    }

    #[test]
    fn decrease_with_empty_queues_is_cheap() {
        let (mut sim, net) = env();
        let layout = ProtocolLayout::microbench(4, 8);
        let victims: Vec<NodeId> = layout.replicas[..2].to_vec();
        let r = run_decrease(
            &mut sim,
            &net,
            &layout,
            &victims,
            &TransportCosts::default(),
            0,
            1_600_000_000,
        );
        assert!(r.total < SimDuration::from_millis(5), "cheap decrease: {}", r.total);
    }

    #[test]
    fn offline_includes_teardown_and_method_switch() {
        let (mut sim, net) = env();
        let layout = ProtocolLayout::microbench(8, 8);
        let r = run_offline(
            &mut sim,
            &net,
            &layout,
            &TransportCosts::default(),
            8_000_000,
            1_600_000_000,
        );
        assert!(r.teardown > SimDuration::ZERO);
        assert!(r.method_switch > SimDuration::from_micros(200));
        // The breakdown is exhaustive: teardown + switch + manager msgs.
        assert_eq!(r.total, r.teardown + r.method_switch + r.manager_msgs);
        // The offline operation costs more than a plain full decrease.
        let (mut sim2, net2) = env();
        let layout2 = ProtocolLayout::microbench(8, 8);
        let plain = run_decrease(
            &mut sim2,
            &net2,
            &layout2,
            &layout2.replicas,
            &TransportCosts::default(),
            8_000_000,
            1_600_000_000,
        );
        assert!(r.total > plain.total);
    }

    #[test]
    fn restart_estimate_exceeds_plain_increase() {
        let costs = TransportCosts::default();
        let per_msg = SimDuration::from_micros(8);
        let inc = estimate::increase(8, 4, &costs, per_msg);
        let restart = estimate::restart(8, 4, &costs, per_msg);
        assert!(restart > inc, "restart {restart} should exceed increase {inc}");
        // And it scales with the restarted replica count.
        assert!(estimate::restart(8, 8, &costs, per_msg) > restart);
    }

    #[test]
    fn estimates_track_simulation() {
        let costs = TransportCosts::default();
        let per_msg = SimDuration::from_micros(8);
        let (mut sim, net) = env();
        let layout = ProtocolLayout::microbench(8, 4);
        let new: Vec<NodeId> = (100..108).map(NodeId).collect();
        let r = run_increase(&mut sim, &net, &layout, &new, &costs, LaunchModel::Instant);
        let est = estimate::increase(8, 8, &costs, per_msg);
        let ratio = est.as_secs_f64() / r.total.as_secs_f64();
        assert!((0.2..5.0).contains(&ratio), "estimate off by {ratio}x ({est} vs {})", r.total);
    }
}
