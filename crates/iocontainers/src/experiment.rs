//! Experiment configurations: the machine-level [`ClusterConfig`], the
//! per-tenant [`WorkloadConfig`], the composed multi-tenant
//! [`Experiment`], and the paper's three weak-scaling presets (Figs. 7,
//! 8, 9/10) kept as single-tenant sugar on [`ExperimentConfig`].

use sim_core::SimDuration;
use simnet::LaunchModel;
use simtel::TelemetryConfig;
use smartpointer::{default_models, ComputeModel, ServiceModel, Table1Names};

use simfault::FaultPlan;

use crate::container::ContainerSpec;
use crate::error::Error;
use crate::monitor::MonitorConfig;
use crate::policy::{PolicyConfig, RecoveryConfig};
use crate::sla::Sla;

/// Configuration of the optional visualization container (the paper's
/// ParaView-in-a-container scenario: an online viz consumer of Helper's
/// output that analytics may steal nodes from when it is over-provisioned).
#[derive(Clone, Copy, Debug)]
pub struct VizConfig {
    /// Nodes the viz container holds (or requests at launch).
    pub nodes: u32,
    /// Whether it runs from the start or waits for a LaunchViz directive.
    pub active_from_start: bool,
}

/// An online user direction delivered to the global manager mid-run — the
/// paper's "add this filter now while I'm looking at the output".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Directive {
    /// Launch the visualization container with its configured node count.
    LaunchViz,
    /// Activate an inactive analytics container by name (e.g. force the
    /// CNA filter on without waiting for the data-driven branch).
    Activate(&'static str),
}

/// Full configuration of a managed-pipeline run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Simulation (compute) nodes — sets the atom count per Table II.
    pub sim_nodes: u32,
    /// Staging-area nodes available to containers.
    pub staging_nodes: u32,
    /// Output cadence (the paper stresses the system at 15 s).
    pub cadence: SimDuration,
    /// Output steps the application emits.
    pub steps: u64,
    /// Step at which the material cracks (activates the dynamic branch),
    /// if any.
    pub crack_at_step: Option<u64>,
    /// Initial node allocation per container (CNA's allocation is taken at
    /// activation time, not held in reserve).
    pub initial: Table1Names<u32>,
    /// Ingress queue capacity per container, in steps.
    pub queue_capacity: usize,
    /// Interconnect bandwidth for bulk transfers.
    pub bandwidth_bps: u64,
    /// Launch model for new replicas during an increase.
    pub launch: LaunchModel,
    /// Management policy.
    pub policy: PolicyConfig,
    /// The SLA management enforces.
    pub sla: Sla,
    /// Monitoring layer configuration.
    pub monitoring: MonitorConfig,
    /// Optional visualization container.
    pub viz: Option<VizConfig>,
    /// Online user directives, delivered at the given virtual times.
    pub directives: Vec<(SimDuration, Directive)>,
    /// Fault injection for transactional trades: the n-th trades (0-based)
    /// listed here fail their control transaction and roll back.
    pub trade_faults: Vec<u32>,
    /// Declarative fault plan (node crashes, NIC degradation, message
    /// loss, container crashes/stalls). An empty plan leaves the run's
    /// event schedule bit-identical to a build without fault injection.
    pub faults: FaultPlan,
    /// Heartbeat-driven failure detection and recovery tunables (only
    /// active when `faults` is non-empty).
    pub recovery: RecoveryConfig,
    /// RNG seed.
    pub seed: u64,
    /// Which telemetry categories the run records (off by default;
    /// recording is schedule-neutral either way).
    pub telemetry: TelemetryConfig,
}

impl ExperimentConfig {
    /// Atom count for this configuration (Table II).
    pub fn atoms(&self) -> u64 {
        mdsim::atoms_for_nodes(self.sim_nodes)
    }

    /// Output bytes per step (Table II).
    pub fn step_bytes(&self) -> u64 {
        mdsim::output_bytes(self.atoms())
    }

    /// Builds the four container specs for this configuration, in
    /// pipeline order: Helper → Bonds → CSym (→ CNA after the branch).
    pub fn container_specs(&self) -> Vec<ContainerSpec> {
        specs_for(self.initial, self.queue_capacity, self.viz)
    }
    fn base(sim_nodes: u32, staging_nodes: u32, initial: Table1Names<u32>) -> ExperimentConfig {
        ExperimentConfig {
            sim_nodes,
            staging_nodes,
            cadence: SimDuration::from_secs(15),
            steps: 40,
            crack_at_step: None,
            initial,
            queue_capacity: 8,
            bandwidth_bps: 1_600_000_000,
            // Low end of the observed aprun range: resizes are visible but
            // recovery happens within a few output steps, as in Fig. 7.
            launch: LaunchModel::Fixed(SimDuration::from_secs(3)),
            policy: PolicyConfig::default(),
            sla: Sla::paper_default(),
            monitoring: MonitorConfig::default(),
            viz: None,
            directives: Vec::new(),
            trade_faults: Vec::new(),
            faults: FaultPlan::new(),
            recovery: RecoveryConfig::default(),
            seed: 2013,
            telemetry: TelemetryConfig::off(),
        }
    }

    /// Starts a validating builder from an explicit preset; override
    /// whatever the experiment needs and finish with
    /// [`ExperimentConfigBuilder::build`].
    ///
    /// (The old `ExperimentConfig::builder()`, which silently seeded from
    /// `fig7()`, is gone: spell the starting point out.)
    pub fn builder_from(preset: ExperimentConfig) -> ExperimentConfigBuilder {
        preset.to_builder()
    }

    /// Re-opens this configuration as a builder, so presets can be
    /// adjusted fluently and re-validated.
    pub fn to_builder(self) -> ExperimentConfigBuilder {
        ExperimentConfigBuilder { cfg: self }
    }

    /// Splits this single-tenant bundle into its machine half and its
    /// workload half — the inverse of what the presets glue together. The
    /// cluster's policy tick period inherits the workload's cadence, so a
    /// single-tenant [`Experiment`] schedules exactly the events the
    /// legacy engine did.
    pub fn split(self) -> (ClusterConfig, WorkloadConfig) {
        let cluster = ClusterConfig {
            sim_nodes: self.sim_nodes,
            staging_nodes: self.staging_nodes,
            bandwidth_bps: self.bandwidth_bps,
            launch: self.launch,
            policy: self.policy,
            monitoring: self.monitoring,
            recovery: self.recovery,
            admission: AdmissionControl::Reject,
            policy_tick_every: self.cadence,
            trade_faults: self.trade_faults,
            seed: self.seed,
            telemetry: self.telemetry,
        };
        let workload = WorkloadConfig {
            id: "t0".to_string(),
            sim_nodes: self.sim_nodes,
            cadence: self.cadence,
            steps: self.steps,
            crack_at_step: self.crack_at_step,
            initial: self.initial,
            queue_capacity: self.queue_capacity,
            sla: self.sla,
            viz: self.viz,
            directives: self.directives,
            faults: self.faults,
            weight: 1,
        };
        (cluster, workload)
    }

    /// Staging nodes held by containers that are active from the start
    /// (CNA's allocation is taken at activation time and is *not* held;
    /// an inactive Viz likewise waits for its directive).
    pub fn held_nodes(&self) -> u32 {
        self.container_specs()
            .iter()
            .filter(|s| s.starts_active)
            .map(|s| s.initial_nodes)
            .sum()
    }

    /// Fig. 7: 256 simulation + 13 staging nodes, no spares. Bonds just
    /// misses the cadence; the manager must steal a node from the
    /// over-provisioned Helper.
    pub fn fig7() -> ExperimentConfig {
        ExperimentConfig::base(
            256,
            13,
            // All 13 staging nodes are held (CNA's reserve comes from
            // CSym's nodes at branch time): no spares, as in the paper.
            Table1Names { helper: 8, bonds: 1, csym: 4, cna: 2 },
        )
    }

    /// Fig. 8: 512 simulation + 24 staging nodes, 4 spares. Bonds converges
    /// to the ideal rate after consuming the spares.
    pub fn fig8() -> ExperimentConfig {
        ExperimentConfig::base(
            512,
            24,
            // 20 held + 4 spare staging nodes, as the paper states.
            Table1Names { helper: 12, bonds: 2, csym: 6, cna: 4 },
        )
    }

    /// Fig. 9: 1024 simulation + 24 staging nodes, 4 spares. Resources are
    /// insufficient; the runtime takes Bonds (and its dependents) offline
    /// before the queues overflow.
    pub fn fig9() -> ExperimentConfig {
        ExperimentConfig::base(
            1024,
            24,
            Table1Names { helper: 12, bonds: 2, csym: 6, cna: 4 },
        )
    }

    /// Fig. 10 uses the Fig. 9 configuration (end-to-end latency view).
    pub fn fig10() -> ExperimentConfig {
        ExperimentConfig::fig9()
    }
}

/// The paper's four-stage pipeline (plus optional Viz) as container
/// specs, shared by the single-tenant [`ExperimentConfig`] and the
/// per-tenant [`WorkloadConfig`].
fn specs_for(
    initial: Table1Names<u32>,
    queue_capacity: usize,
    viz: Option<VizConfig>,
) -> Vec<ContainerSpec> {
    let models = default_models();
    let mut specs = vec![
        ContainerSpec {
            name: "Helper",
            model: ComputeModel::Tree,
            service: models.helper,
            initial_nodes: initial.helper,
            queue_capacity,
            essential: true, // the aggregation tree is the pipeline's intake
            depends_on: vec![],
            starts_active: true,
            output_ratio: 1.0,
        },
        ContainerSpec {
            name: "Bonds",
            model: ComputeModel::RoundRobin,
            service: models.bonds,
            initial_nodes: initial.bonds,
            queue_capacity,
            essential: false,
            depends_on: vec!["Helper"],
            starts_active: true,
            // Forwards the atom data it ingests plus the adjacency list.
            output_ratio: 1.5,
        },
        ContainerSpec {
            name: "CSym",
            model: ComputeModel::RoundRobin,
            service: models.csym,
            initial_nodes: initial.csym,
            queue_capacity,
            essential: false,
            depends_on: vec!["Bonds"],
            starts_active: true,
            output_ratio: 0.2, // per-atom scalar annotations
        },
        ContainerSpec {
            name: "CNA",
            model: ComputeModel::RoundRobin,
            service: models.cna,
            initial_nodes: initial.cna,
            queue_capacity,
            essential: false,
            depends_on: vec!["Bonds"],
            starts_active: false, // activated by the dynamic branch
            output_ratio: 0.2,
        },
    ];
    if let Some(viz) = viz {
        specs.push(ContainerSpec {
            name: "Viz",
            model: ComputeModel::RoundRobin,
            // Rendering is linear in the atom count and cheap relative
            // to the analytics.
            service: ServiceModel { coeff_s: 0.4, exponent: 1.0, parallel_efficiency: 0.9 },
            initial_nodes: viz.nodes,
            queue_capacity,
            essential: false,
            depends_on: vec!["Helper"],
            starts_active: viz.active_from_start,
            output_ratio: 0.0, // frames leave the machine
        });
    }
    specs
}

/// What the global manager does with a tenant whose initially-held
/// allocation does not fit the spare staging nodes at submission time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionControl {
    /// Reject the tenant outright: it never runs, and its
    /// [`TenantRun`](crate::TenantRun) reports the rejection.
    #[default]
    Reject,
    /// Queue the tenant: the global manager re-evaluates at every policy
    /// tick and admits it as soon as enough spare nodes free up.
    Queue,
}

/// Machine-level configuration: the simulated cluster every tenant
/// contends for. One of these per DES run; pair it with one
/// [`WorkloadConfig`] per tenant via [`Experiment::builder`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Simulation (compute) nodes on the machine. Tenant application
    /// partitions ([`WorkloadConfig::sim_nodes`]) must fit in here.
    pub sim_nodes: u32,
    /// Staging-area nodes shared by every tenant's containers.
    pub staging_nodes: u32,
    /// Interconnect bandwidth for bulk transfers.
    pub bandwidth_bps: u64,
    /// Launch model for new replicas during an increase.
    pub launch: LaunchModel,
    /// The global manager's management policy (cluster-wide: one manager
    /// arbitrates all tenants).
    pub policy: PolicyConfig,
    /// Monitoring layer configuration.
    pub monitoring: MonitorConfig,
    /// Heartbeat-driven failure detection and recovery tunables.
    pub recovery: RecoveryConfig,
    /// Admission control for tenants that do not fit at submission time.
    pub admission: AdmissionControl,
    /// Period of the global manager's policy evaluation. A single-tenant
    /// split inherits the workload's cadence here (the legacy engine
    /// evaluated once per output step).
    pub policy_tick_every: SimDuration,
    /// Fault injection for transactional trades: the n-th trades (0-based,
    /// counted cluster-wide) listed here fail their control transaction
    /// and roll back.
    pub trade_faults: Vec<u32>,
    /// RNG seed.
    pub seed: u64,
    /// Which telemetry categories the run records.
    pub telemetry: TelemetryConfig,
}

impl ClusterConfig {
    /// A cluster with the given node counts and the presets' defaults for
    /// everything else (15 s policy tick, paper bandwidth/launch models,
    /// admission control set to reject).
    pub fn new(sim_nodes: u32, staging_nodes: u32) -> ClusterConfig {
        ClusterConfig {
            sim_nodes,
            staging_nodes,
            bandwidth_bps: 1_600_000_000,
            launch: LaunchModel::Fixed(SimDuration::from_secs(3)),
            policy: PolicyConfig::default(),
            monitoring: MonitorConfig::default(),
            recovery: RecoveryConfig::default(),
            admission: AdmissionControl::Reject,
            policy_tick_every: SimDuration::from_secs(15),
            trade_faults: Vec::new(),
            seed: 2013,
            telemetry: TelemetryConfig::off(),
        }
    }
}

/// Per-tenant workload: one pipeline DAG with its own data rates, SLA,
/// initial allocation, directives, and fault exposure. N of these contend
/// for one [`ClusterConfig`].
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Tenant id, unique within an experiment — used in reports and as the
    /// telemetry track prefix (`<id>/...`) in multi-tenant runs.
    pub id: String,
    /// Simulation nodes of this tenant's application partition — sets the
    /// atom count per Table II and the Helper fan-in.
    pub sim_nodes: u32,
    /// Output cadence of this tenant's application.
    pub cadence: SimDuration,
    /// Output steps the tenant's application emits.
    pub steps: u64,
    /// Step at which the material cracks (activates the dynamic branch),
    /// if any.
    pub crack_at_step: Option<u64>,
    /// Initial node allocation per container.
    pub initial: Table1Names<u32>,
    /// Ingress queue capacity per container, in steps.
    pub queue_capacity: usize,
    /// The SLA the global manager enforces for this tenant.
    pub sla: Sla,
    /// Optional visualization container.
    pub viz: Option<VizConfig>,
    /// Online user directives, delivered at the given virtual times
    /// (relative to the tenant's admission).
    pub directives: Vec<(SimDuration, Directive)>,
    /// Tenant-scoped fault plan (crashes name this tenant's containers).
    pub faults: FaultPlan,
    /// Fair-share weight: this tenant's share of the staging area is
    /// `weight / Σ weights` over admitted tenants.
    pub weight: u32,
}

impl WorkloadConfig {
    /// A workload with the Fig. 7 pipeline shape (8/1/4/2 initial nodes,
    /// 15 s cadence, 40 steps) on the given application partition.
    pub fn new(id: impl Into<String>, sim_nodes: u32) -> WorkloadConfig {
        WorkloadConfig {
            id: id.into(),
            sim_nodes,
            cadence: SimDuration::from_secs(15),
            steps: 40,
            crack_at_step: None,
            initial: Table1Names { helper: 8, bonds: 1, csym: 4, cna: 2 },
            queue_capacity: 8,
            sla: Sla::paper_default(),
            viz: None,
            directives: Vec::new(),
            faults: FaultPlan::new(),
            weight: 1,
        }
    }

    /// Atom count for this workload's partition (Table II).
    pub fn atoms(&self) -> u64 {
        mdsim::atoms_for_nodes(self.sim_nodes)
    }

    /// Output bytes per step (Table II).
    pub fn step_bytes(&self) -> u64 {
        mdsim::output_bytes(self.atoms())
    }

    /// This workload's container specs in pipeline order.
    pub fn container_specs(&self) -> Vec<ContainerSpec> {
        specs_for(self.initial, self.queue_capacity, self.viz)
    }

    /// Staging nodes held by containers active from the start (the
    /// tenant's admission footprint).
    pub fn held_nodes(&self) -> u32 {
        self.container_specs()
            .iter()
            .filter(|s| s.starts_active)
            .map(|s| s.initial_nodes)
            .sum()
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.cadence.is_zero() {
            return Err(ConfigError::ZeroCadence);
        }
        if self.steps == 0 {
            return Err(ConfigError::ZeroSteps);
        }
        if self.weight == 0 {
            return Err(ConfigError::ZeroWeight);
        }
        Ok(())
    }
}

/// A validated multi-tenant experiment: one machine, N workloads.
///
/// Built by [`Experiment::builder`] (which validates the composition) or
/// [`Experiment::single`] (infallible sugar around a legacy
/// [`ExperimentConfig`]); run with [`Experiment::run`].
#[derive(Clone, Debug)]
pub struct Experiment {
    pub(crate) cluster: ClusterConfig,
    pub(crate) workloads: Vec<WorkloadConfig>,
}

impl Experiment {
    /// Starts an empty builder; add a cluster and at least one tenant.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder { cluster: None, workloads: Vec::new() }
    }

    /// Wraps a single-tenant configuration without further validation (the
    /// legacy engine accepted these configs directly; see
    /// [`ExperimentConfig::split`]).
    pub fn single(cfg: ExperimentConfig) -> Experiment {
        let (cluster, workload) = cfg.split();
        Experiment { cluster, workloads: vec![workload] }
    }

    /// The machine half.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The tenants, in submission order.
    pub fn workloads(&self) -> &[WorkloadConfig] {
        &self.workloads
    }
}

/// Validating composer of a [`ClusterConfig`] with N [`WorkloadConfig`]s.
///
/// ```
/// use iocontainers::{ClusterConfig, Experiment, WorkloadConfig};
///
/// let exp = Experiment::builder()
///     .cluster(ClusterConfig::new(1024, 32))
///     .tenant(WorkloadConfig::new("md-a", 256))
///     .tenant(WorkloadConfig::new("md-b", 256))
///     .build()
///     .expect("valid experiment");
/// assert_eq!(exp.workloads().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExperimentBuilder {
    cluster: Option<ClusterConfig>,
    workloads: Vec<WorkloadConfig>,
}

impl ExperimentBuilder {
    /// Sets the machine-level configuration.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Adds one tenant.
    pub fn tenant(mut self, workload: WorkloadConfig) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds many tenants at once.
    pub fn tenants(mut self, workloads: impl IntoIterator<Item = WorkloadConfig>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Validates the composition.
    ///
    /// Rejects a missing cluster, a zero-tenant run, duplicate tenant ids,
    /// degenerate per-workload parameters (zero cadence/steps/queue
    /// capacity/weight), a tenant whose held allocation could never fit
    /// the staging area even alone, a zero cluster bandwidth or policy
    /// tick, and compute partitions summing past the machine. Whether all
    /// tenants fit *together* is decided at run time by admission control
    /// ([`ClusterConfig::admission`]), not here — that is the contended
    /// case the experiment exists to study.
    pub fn build(self) -> Result<Experiment, Error> {
        let Some(cluster) = self.cluster else {
            return Err(Error::NoCluster);
        };
        if self.workloads.is_empty() {
            return Err(Error::NoTenants);
        }
        if cluster.bandwidth_bps == 0 {
            return Err(Error::Config(ConfigError::ZeroBandwidth));
        }
        if cluster.policy_tick_every.is_zero() {
            return Err(Error::Config(ConfigError::ZeroCadence));
        }
        let mut requested: u64 = 0;
        for (i, wl) in self.workloads.iter().enumerate() {
            if self.workloads[..i].iter().any(|w| w.id == wl.id) {
                return Err(Error::DuplicateTenant(wl.id.clone()));
            }
            if let Err(source) = wl.validate() {
                return Err(Error::Workload { tenant: wl.id.clone(), source });
            }
            let held = wl.held_nodes();
            if held > cluster.staging_nodes {
                return Err(Error::Workload {
                    tenant: wl.id.clone(),
                    source: ConfigError::Overcommitted {
                        staging_nodes: cluster.staging_nodes,
                        held,
                    },
                });
            }
            requested += wl.sim_nodes as u64;
        }
        if requested > cluster.sim_nodes as u64 {
            return Err(Error::ComputeOvercommitted { sim_nodes: cluster.sim_nodes, requested });
        }
        Ok(Experiment { cluster, workloads: self.workloads })
    }
}

/// Why a built configuration was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The initially-held allocations do not fit in the staging area.
    Overcommitted {
        /// Staging nodes available.
        staging_nodes: u32,
        /// Nodes held by containers active from the start.
        held: u32,
    },
    /// `queue_capacity` was zero (a container could never buffer a step).
    ZeroQueueCapacity,
    /// `cadence` was zero (the application would emit infinitely fast).
    ZeroCadence,
    /// `steps` was zero (the run would do nothing).
    ZeroSteps,
    /// `bandwidth_bps` was zero (every transfer would divide by zero).
    ZeroBandwidth,
    /// A workload's fair-share `weight` was zero (the tenant would own no
    /// slice of the machine).
    ZeroWeight,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Overcommitted { staging_nodes, held } => write!(
                f,
                "initial allocations hold {held} nodes but the staging area has only \
                 {staging_nodes}"
            ),
            ConfigError::ZeroQueueCapacity => write!(f, "queue_capacity must be positive"),
            ConfigError::ZeroCadence => write!(f, "output cadence must be nonzero"),
            ConfigError::ZeroSteps => write!(f, "steps must be nonzero"),
            ConfigError::ZeroBandwidth => write!(f, "bandwidth_bps must be positive"),
            ConfigError::ZeroWeight => write!(f, "fair-share weight must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validating constructor for [`ExperimentConfig`] — the one way
/// to assemble a run without spelling out every field positionally.
///
/// ```
/// use iocontainers::ExperimentConfig;
/// use simtel::TelemetryConfig;
///
/// let cfg = ExperimentConfig::fig8()
///     .to_builder()
///     .steps(12)
///     .telemetry(TelemetryConfig::all())
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.steps, 12);
/// ```
#[derive(Clone, Debug)]
pub struct ExperimentConfigBuilder {
    cfg: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Sets the simulation (compute) node count.
    pub fn sim_nodes(mut self, n: u32) -> Self {
        self.cfg.sim_nodes = n;
        self
    }

    /// Sets the staging-area node count.
    pub fn staging_nodes(mut self, n: u32) -> Self {
        self.cfg.staging_nodes = n;
        self
    }

    /// Sets the output cadence.
    pub fn cadence(mut self, cadence: SimDuration) -> Self {
        self.cfg.cadence = cadence;
        self
    }

    /// Sets the number of output steps.
    pub fn steps(mut self, steps: u64) -> Self {
        self.cfg.steps = steps;
        self
    }

    /// Makes the material crack (activating the dynamic branch) at `step`.
    pub fn crack_at_step(mut self, step: u64) -> Self {
        self.cfg.crack_at_step = Some(step);
        self
    }

    /// Sets the initial per-container node allocation.
    pub fn initial(mut self, initial: Table1Names<u32>) -> Self {
        self.cfg.initial = initial;
        self
    }

    /// Sets the per-container ingress queue capacity, in steps.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity;
        self
    }

    /// Sets the interconnect bandwidth for bulk transfers.
    pub fn bandwidth_bps(mut self, bps: u64) -> Self {
        self.cfg.bandwidth_bps = bps;
        self
    }

    /// Sets the launch model for new replicas.
    pub fn launch(mut self, launch: LaunchModel) -> Self {
        self.cfg.launch = launch;
        self
    }

    /// Sets the management policy.
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the SLA management enforces.
    pub fn sla(mut self, sla: Sla) -> Self {
        self.cfg.sla = sla;
        self
    }

    /// Sets the monitoring-layer configuration.
    pub fn monitoring(mut self, monitoring: MonitorConfig) -> Self {
        self.cfg.monitoring = monitoring;
        self
    }

    /// Adds the optional visualization container.
    pub fn viz(mut self, viz: VizConfig) -> Self {
        self.cfg.viz = Some(viz);
        self
    }

    /// Appends one online user directive at virtual time `at`.
    pub fn directive(mut self, at: SimDuration, directive: Directive) -> Self {
        self.cfg.directives.push((at, directive));
        self
    }

    /// Replaces the directive schedule wholesale.
    pub fn directives(mut self, directives: Vec<(SimDuration, Directive)>) -> Self {
        self.cfg.directives = directives;
        self
    }

    /// Sets which trades (0-based) fail their control transaction.
    pub fn trade_faults(mut self, faults: Vec<u32>) -> Self {
        self.cfg.trade_faults = faults;
        self
    }

    /// Sets the declarative fault plan for the run.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Sets the failure detection and recovery tunables.
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.cfg.recovery = recovery;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets which telemetry categories the run records.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// Rejects a staging area too small for the initially-*held*
    /// allocations (a container that starts inactive — CNA, or a Viz
    /// waiting on its directive — draws nodes at activation time, so its
    /// allocation is not counted), a zero queue capacity, a zero cadence,
    /// and a zero step count.
    pub fn build(self) -> Result<ExperimentConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if cfg.cadence.is_zero() {
            return Err(ConfigError::ZeroCadence);
        }
        if cfg.steps == 0 {
            return Err(ConfigError::ZeroSteps);
        }
        if cfg.bandwidth_bps == 0 {
            return Err(ConfigError::ZeroBandwidth);
        }
        let held = cfg.held_nodes();
        if held > cfg.staging_nodes {
            return Err(ConfigError::Overcommitted { staging_nodes: cfg.staging_nodes, held });
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_setups() {
        let f7 = ExperimentConfig::fig7();
        assert_eq!(f7.sim_nodes, 256);
        assert_eq!(f7.staging_nodes, 13);
        // No spares in the Fig. 7 setup (CNA's reserve is not held).
        assert_eq!(f7.initial.helper + f7.initial.bonds + f7.initial.csym, 13);

        let f8 = ExperimentConfig::fig8();
        assert_eq!(f8.staging_nodes, 24);
        // 4 spare staging nodes at the start, as the paper states.
        let held = f8.initial.helper + f8.initial.bonds + f8.initial.csym;
        assert_eq!(f8.staging_nodes - held, 4);
        assert_eq!(f8.sim_nodes, 512);

        assert_eq!(ExperimentConfig::fig9().sim_nodes, 1024);
        assert_eq!(ExperimentConfig::fig10().sim_nodes, 1024);
    }

    #[test]
    fn step_bytes_match_table2() {
        let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
        assert!((mib(ExperimentConfig::fig7().step_bytes()) - 67.0).abs() < 0.5);
        assert!((mib(ExperimentConfig::fig8().step_bytes()) - 134.6).abs() < 0.5);
        assert!((mib(ExperimentConfig::fig9().step_bytes()) - 269.2).abs() < 0.5);
    }

    #[test]
    fn specs_are_in_pipeline_order() {
        let specs = ExperimentConfig::fig7().container_specs();
        let names: Vec<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["Helper", "Bonds", "CSym", "CNA"]);
        assert!(specs[0].essential);
        assert!(!specs[3].starts_active);

        let mut with_viz = ExperimentConfig::fig7();
        with_viz.viz = Some(VizConfig { nodes: 3, active_from_start: true });
        let specs = with_viz.container_specs();
        assert_eq!(specs.len(), 5);
        assert_eq!(specs[4].name, "Viz");
        assert!(specs[4].starts_active);
    }

    #[test]
    fn all_presets_pass_builder_validation() {
        for preset in [
            ExperimentConfig::fig7(),
            ExperimentConfig::fig8(),
            ExperimentConfig::fig9(),
            ExperimentConfig::fig10(),
        ] {
            let staging = preset.staging_nodes;
            let cfg = preset.to_builder().build().expect("preset is valid");
            assert_eq!(cfg.staging_nodes, staging);
        }
    }

    #[test]
    fn builder_rejects_overcommitted_staging_area() {
        // Fig. 7 holds exactly 13 nodes; 12 staging nodes cannot fit them.
        let err = ExperimentConfig::builder_from(ExperimentConfig::fig7())
            .staging_nodes(12)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::Overcommitted { staging_nodes: 12, held: 13 });
    }

    #[test]
    fn inactive_containers_do_not_count_as_held() {
        // CNA (2 nodes, starts inactive) and an inactive Viz are not held;
        // an active Viz is.
        let base = ExperimentConfig::fig7();
        assert_eq!(base.held_nodes(), 13);
        let lazy_viz = base
            .clone()
            .to_builder()
            .viz(VizConfig { nodes: 5, active_from_start: false })
            .build()
            .expect("inactive viz holds nothing");
        assert_eq!(lazy_viz.held_nodes(), 13);
        let err = base
            .to_builder()
            .viz(VizConfig { nodes: 5, active_from_start: true })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::Overcommitted { staging_nodes: 13, held: 18 });
    }

    #[test]
    fn builder_rejects_degenerate_parameters() {
        let fig7 = || ExperimentConfig::builder_from(ExperimentConfig::fig7());
        assert_eq!(
            fig7().queue_capacity(0).build().unwrap_err(),
            ConfigError::ZeroQueueCapacity
        );
        assert_eq!(
            fig7().cadence(SimDuration::ZERO).build().unwrap_err(),
            ConfigError::ZeroCadence
        );
        assert_eq!(fig7().steps(0).build().unwrap_err(), ConfigError::ZeroSteps);
        assert_eq!(
            fig7().bandwidth_bps(0).build().unwrap_err(),
            ConfigError::ZeroBandwidth
        );
        assert!(ConfigError::ZeroCadence.to_string().contains("cadence"));
        assert!(ConfigError::ZeroBandwidth.to_string().contains("bandwidth"));
        assert!(ConfigError::ZeroWeight.to_string().contains("weight"));
    }

    #[test]
    fn split_preserves_the_bundle() {
        let (cluster, wl) = ExperimentConfig::fig8().split();
        assert_eq!(cluster.sim_nodes, 512);
        assert_eq!(cluster.staging_nodes, 24);
        // The legacy engine evaluated policy once per output step.
        assert_eq!(cluster.policy_tick_every, wl.cadence);
        assert_eq!(wl.sim_nodes, 512);
        assert_eq!(wl.steps, 40);
        assert_eq!(wl.held_nodes(), ExperimentConfig::fig8().held_nodes());
        assert_eq!(wl.step_bytes(), ExperimentConfig::fig8().step_bytes());
    }

    #[test]
    fn experiment_builder_validates_composition() {
        use crate::error::Error;
        // No cluster / no tenants.
        assert_eq!(Experiment::builder().build().unwrap_err(), Error::NoCluster);
        assert_eq!(
            Experiment::builder().cluster(ClusterConfig::new(512, 32)).build().unwrap_err(),
            Error::NoTenants
        );
        // Duplicate ids.
        let err = Experiment::builder()
            .cluster(ClusterConfig::new(1024, 64))
            .tenant(WorkloadConfig::new("a", 256))
            .tenant(WorkloadConfig::new("a", 256))
            .build()
            .unwrap_err();
        assert_eq!(err, Error::DuplicateTenant("a".to_string()));
        // A tenant that could never fit even alone.
        let err = Experiment::builder()
            .cluster(ClusterConfig::new(1024, 8))
            .tenant(WorkloadConfig::new("big", 256)) // holds 13 > 8
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Workload { ref tenant, source: ConfigError::Overcommitted { .. } }
                if tenant == "big"
        ));
        // Compute partitions past the machine.
        let err = Experiment::builder()
            .cluster(ClusterConfig::new(300, 64))
            .tenants([WorkloadConfig::new("a", 256), WorkloadConfig::new("b", 256)])
            .build()
            .unwrap_err();
        assert_eq!(err, Error::ComputeOvercommitted { sim_nodes: 300, requested: 512 });
        // Degenerate workload parameters surface with the tenant id.
        let mut wl = WorkloadConfig::new("w", 256);
        wl.weight = 0;
        let err = Experiment::builder()
            .cluster(ClusterConfig::new(512, 32))
            .tenant(wl)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            Error::Workload { tenant: "w".to_string(), source: ConfigError::ZeroWeight }
        );
        // A valid two-tenant composition builds.
        let exp = Experiment::builder()
            .cluster(ClusterConfig::new(1024, 64))
            .tenant(WorkloadConfig::new("a", 256))
            .tenant(WorkloadConfig::new("b", 512))
            .build()
            .expect("valid");
        assert_eq!(exp.cluster().staging_nodes, 64);
        assert_eq!(exp.workloads()[1].id, "b");
    }

    #[test]
    fn builder_round_trips_and_overrides() {
        let cfg = ExperimentConfig::fig8()
            .to_builder()
            .steps(12)
            .seed(7)
            .crack_at_step(5)
            .directive(SimDuration::from_secs(30), Directive::LaunchViz)
            .telemetry(TelemetryConfig::all())
            .faults(FaultPlan::new().crash_container(SimDuration::from_secs(60), "Bonds"))
            .build()
            .expect("valid");
        assert_eq!(cfg.sim_nodes, 512);
        assert_eq!(cfg.steps, 12);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.crack_at_step, Some(5));
        assert_eq!(cfg.directives, vec![(SimDuration::from_secs(30), Directive::LaunchViz)]);
        assert!(cfg.telemetry.container);
        assert_eq!(cfg.faults.len(), 1);
    }
}
