//! The global manager's management policy.
//!
//! The paper's "simple management policy": watch per-container latency;
//! when a container violates the SLA, ask its local manager what it needs
//! (resource units to sustain the cadence), satisfy the need from spare
//! staging nodes first, then by stealing from an over-provisioned
//! container *if that completes the remedy*, and as a last resort take the
//! bottleneck (and everything depending on it) offline before its queue
//! overflows and blocks the application.
//!
//! The decision function is pure — it maps a snapshot of container views
//! to a [`Decision`] — so every branch is unit-testable without a
//! simulation.

use sim_core::SimDuration;

use crate::container::ContainerId;
use crate::sla::Sla;

/// Tunables of the policy.
#[derive(Clone, Copy, Debug)]
pub struct PolicyConfig {
    /// Master switch (off = unmanaged baseline).
    pub enabled: bool,
    /// Samples in the bottleneck-detection window.
    pub window: usize,
    /// Minimum virtual time between management actions.
    pub cooldown: SimDuration,
    /// Queue fill fraction beyond which an unfixable bottleneck is taken
    /// offline (the "act before the pipeline blocks" trigger).
    pub offline_queue_frac: f64,
    /// Guard resource trades with a D2T control transaction: the trade
    /// either fully commits (donor decreased *and* recipient increased) or
    /// aborts with nothing moved — never the inconsistent in-between state
    /// the paper's Section III-A(5) warns about.
    pub transactional_trades: bool,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            enabled: true,
            window: 3,
            cooldown: SimDuration::from_secs(15),
            offline_queue_frac: 0.5,
            transactional_trades: true,
        }
    }
}

/// Heartbeat-driven failure detection and recovery tunables.
///
/// Local managers emit heartbeats over the control overlay; the global
/// manager declares a container failed after `miss_limit` consecutive
/// missed beats and then recovers it — restart on spare staging nodes
/// (bounded retries with virtual-time backoff), falling back to
/// generalized offline staging when no spares remain or the retry budget
/// is spent.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// Heartbeat period for every container's local manager.
    pub heartbeat_every: SimDuration,
    /// Consecutive missed heartbeats before a container is declared failed.
    pub miss_limit: u32,
    /// Restart attempts per container before falling back to offline
    /// staging.
    pub max_restarts: u32,
    /// Extra delay added per prior attempt before a restart completes
    /// (linear backoff in virtual time).
    pub restart_backoff: SimDuration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            heartbeat_every: SimDuration::from_secs(5),
            miss_limit: 3,
            max_restarts: 2,
            restart_backoff: SimDuration::from_secs(5),
        }
    }
}

/// The global manager's view of a container it has declared failed.
#[derive(Clone, Copy, Debug)]
pub struct FailureView {
    /// The failed container.
    pub id: ContainerId,
    /// Units needed to sustain the cadence (the restart target size).
    pub needed: u32,
    /// Restart attempts already spent on this container.
    pub restarts_so_far: u32,
}

/// A local manager's view of one container, as reported to the global
/// manager.
#[derive(Clone, Copy, Debug)]
pub struct ContainerView {
    /// The container.
    pub id: ContainerId,
    /// Accepting and processing steps.
    pub online: bool,
    /// Never taken offline by policy.
    pub essential: bool,
    /// Resource units currently held.
    pub units: u32,
    /// Local estimate: units needed to sustain the cadence.
    pub needed: u32,
    /// Local estimate: units it could give away and still sustain.
    pub spareable: u32,
    /// Current ingress queue depth.
    pub queue_len: usize,
    /// Ingress queue capacity.
    pub queue_capacity: usize,
    /// Average latency over the monitoring window.
    pub avg_latency: SimDuration,
    /// Samples available in the window.
    pub samples: usize,
}

/// What the global manager decided to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Nothing to do.
    None,
    /// Grow `target` using spare nodes and/or nodes stolen from a donor.
    Rebalance {
        /// The bottleneck container.
        target: ContainerId,
        /// Spare staging nodes to lease.
        lease_spare: u32,
        /// Donor container and node count, when stealing completes the
        /// remedy.
        steal: Option<(ContainerId, u32)>,
    },
    /// Take `target` offline (dependents cascade at execution time).
    Offline {
        /// The hopeless bottleneck.
        target: ContainerId,
    },
    /// Restart a failed container on spare staging nodes.
    Restart {
        /// The failed container.
        target: ContainerId,
        /// Spare staging nodes to lease for the restarted instance.
        lease_spare: u32,
    },
}

/// Evaluates the recovery policy for a container the failure detector has
/// declared dead: restart on spares while both the retry budget and the
/// spare pool allow it, otherwise fall back to generalized offline staging
/// (upstream output is redirected to disk with provenance — even an
/// essential container gets no better option once its nodes are gone).
pub fn decide_recovery(cfg: &RecoveryConfig, failed: &FailureView, spare: u32) -> Decision {
    if failed.restarts_so_far >= cfg.max_restarts || spare == 0 {
        return Decision::Offline { target: failed.id };
    }
    Decision::Restart { target: failed.id, lease_spare: failed.needed.max(1).min(spare) }
}

/// Evaluates the policy against the current container views.
pub fn decide(cfg: &PolicyConfig, sla: &Sla, views: &[ContainerView], spare: u32) -> Decision {
    if !cfg.enabled {
        return Decision::None;
    }

    // Bottleneck: the online container with the longest average latency,
    // with enough samples to trust the estimate.
    let Some(bottleneck) = views
        .iter()
        .filter(|v| v.online && v.samples >= cfg.window.min(2))
        .max_by(|a, b| a.avg_latency.cmp(&b.avg_latency))
    else {
        return Decision::None;
    };

    if !sla.container_violated(bottleneck.avg_latency) {
        return Decision::None;
    }

    let deficit = bottleneck.needed.saturating_sub(bottleneck.units);
    if deficit == 0 {
        // Correctly sized: the backlog is transient and will drain.
        return Decision::None;
    }

    let lease_spare = deficit.min(spare);
    let remaining = deficit - lease_spare;

    if remaining == 0 {
        return Decision::Rebalance { target: bottleneck.id, lease_spare, steal: None };
    }

    // Steal only when a single donor can complete the remedy — partially
    // harming a donor without fixing the bottleneck helps no one.
    let donor = views
        .iter()
        .filter(|v| v.online && v.id != bottleneck.id && v.spareable >= remaining)
        .max_by_key(|v| v.spareable);
    if let Some(donor) = donor {
        return Decision::Rebalance {
            target: bottleneck.id,
            lease_spare,
            steal: Some((donor.id, remaining)),
        };
    }

    if lease_spare > 0 {
        // Partial relief from spares while it lasts.
        return Decision::Rebalance { target: bottleneck.id, lease_spare, steal: None };
    }

    // No resources anywhere. Prune the bottleneck before its queue
    // overflows and blocks the application — unless it is essential.
    let fill = bottleneck.queue_len as f64 / bottleneck.queue_capacity.max(1) as f64;
    if !bottleneck.essential && fill >= cfg.offline_queue_frac {
        return Decision::Offline { target: bottleneck.id };
    }

    Decision::None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, units: u32, needed: u32, spareable: u32, avg_s: u64) -> ContainerView {
        ContainerView {
            id: ContainerId(id),
            online: true,
            essential: false,
            units,
            needed,
            spareable,
            queue_len: 2,
            queue_capacity: 8,
            avg_latency: SimDuration::from_secs(avg_s),
            samples: 3,
        }
    }

    fn sla() -> Sla {
        Sla::from_cadence(SimDuration::from_secs(15)) // violation above 30 s
    }

    #[test]
    fn healthy_pipeline_needs_nothing() {
        let views = [view(0, 8, 1, 7, 2), view(1, 2, 2, 0, 20)];
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &views, 4), Decision::None);
    }

    #[test]
    fn spares_are_preferred() {
        let views = [view(0, 8, 1, 7, 2), view(1, 2, 6, 0, 45)];
        assert_eq!(
            decide(&PolicyConfig::default(), &sla(), &views, 4),
            Decision::Rebalance { target: ContainerId(1), lease_spare: 4, steal: None }
        );
    }

    #[test]
    fn steal_completes_the_remedy() {
        // Fig. 7 shape: no spares, Bonds one short, Helper over-provisioned.
        let views = [view(0, 8, 1, 7, 2), view(1, 1, 2, 0, 45)];
        assert_eq!(
            decide(&PolicyConfig::default(), &sla(), &views, 0),
            Decision::Rebalance {
                target: ContainerId(1),
                lease_spare: 0,
                steal: Some((ContainerId(0), 1)),
            }
        );
    }

    #[test]
    fn no_partial_steal() {
        // Donor can spare 3, bottleneck needs 10 more: stealing would not
        // fix it, so with no spares the decision falls through to offline
        // (queue at 50%).
        let mut bott = view(1, 2, 12, 0, 60);
        bott.queue_len = 4;
        let views = [view(0, 4, 1, 3, 2), bott];
        assert_eq!(
            decide(&PolicyConfig::default(), &sla(), &views, 0),
            Decision::Offline { target: ContainerId(1) }
        );
    }

    #[test]
    fn partial_spares_before_offline() {
        let views = [view(0, 4, 1, 3, 2), view(1, 2, 12, 0, 60)];
        assert_eq!(
            decide(&PolicyConfig::default(), &sla(), &views, 4),
            Decision::Rebalance { target: ContainerId(1), lease_spare: 4, steal: None }
        );
    }

    #[test]
    fn offline_waits_for_queue_pressure() {
        let mut bott = view(1, 2, 12, 0, 60);
        bott.queue_len = 1; // 12.5% < 50%
        let views = [view(0, 2, 1, 1, 2), bott];
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &views, 0), Decision::None);
    }

    #[test]
    fn essential_containers_never_go_offline() {
        let mut bott = view(0, 1, 12, 0, 60);
        bott.essential = true;
        bott.queue_len = 8;
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &[bott], 0), Decision::None);
    }

    #[test]
    fn correctly_sized_transient_is_left_alone() {
        // Latency above SLA but units already match the need: backlog is
        // draining (e.g. right after a resize).
        let views = [view(1, 6, 6, 0, 45)];
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &views, 4), Decision::None);
    }

    #[test]
    fn disabled_policy_does_nothing() {
        let views = [view(1, 1, 6, 0, 100)];
        let cfg = PolicyConfig { enabled: false, ..PolicyConfig::default() };
        assert_eq!(decide(&cfg, &sla(), &views, 8), Decision::None);
    }

    #[test]
    fn recovery_restarts_on_spares_within_budget() {
        let cfg = RecoveryConfig::default();
        let failed = FailureView { id: ContainerId(1), needed: 2, restarts_so_far: 0 };
        assert_eq!(
            decide_recovery(&cfg, &failed, 4),
            Decision::Restart { target: ContainerId(1), lease_spare: 2 }
        );
        // Spares cap the lease.
        assert_eq!(
            decide_recovery(&cfg, &failed, 1),
            Decision::Restart { target: ContainerId(1), lease_spare: 1 }
        );
        // Zero-need containers still get one node back.
        let tiny = FailureView { needed: 0, ..failed };
        assert_eq!(
            decide_recovery(&cfg, &tiny, 4),
            Decision::Restart { target: ContainerId(1), lease_spare: 1 }
        );
    }

    #[test]
    fn recovery_falls_back_to_offline_staging() {
        let cfg = RecoveryConfig::default();
        // No spares left.
        let failed = FailureView { id: ContainerId(1), needed: 2, restarts_so_far: 0 };
        assert_eq!(decide_recovery(&cfg, &failed, 0), Decision::Offline { target: ContainerId(1) });
        // Retry budget spent.
        let spent = FailureView { restarts_so_far: cfg.max_restarts, ..failed };
        assert_eq!(decide_recovery(&cfg, &spent, 8), Decision::Offline { target: ContainerId(1) });
    }

    #[test]
    fn offline_ignores_inactive_containers() {
        let mut off = view(2, 0, 0, 0, 500);
        off.online = false;
        let views = [view(0, 8, 1, 7, 2), off];
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &views, 0), Decision::None);
    }
}
