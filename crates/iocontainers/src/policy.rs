//! The global manager's management policy.
//!
//! The paper's "simple management policy": watch per-container latency;
//! when a container violates the SLA, ask its local manager what it needs
//! (resource units to sustain the cadence), satisfy the need from spare
//! staging nodes first, then by stealing from an over-provisioned
//! container *if that completes the remedy*, and as a last resort take the
//! bottleneck (and everything depending on it) offline before its queue
//! overflows and blocks the application.
//!
//! The decision function is pure — it maps a snapshot of container views
//! to a [`Decision`] — so every branch is unit-testable without a
//! simulation.

use sim_core::SimDuration;

use crate::container::ContainerId;
use crate::sla::Sla;

/// Tunables of the policy.
#[derive(Clone, Copy, Debug)]
pub struct PolicyConfig {
    /// Master switch (off = unmanaged baseline).
    pub enabled: bool,
    /// Samples in the bottleneck-detection window.
    pub window: usize,
    /// Minimum virtual time between management actions.
    pub cooldown: SimDuration,
    /// Queue fill fraction beyond which an unfixable bottleneck is taken
    /// offline (the "act before the pipeline blocks" trigger).
    pub offline_queue_frac: f64,
    /// Guard resource trades with a D2T control transaction: the trade
    /// either fully commits (donor decreased *and* recipient increased) or
    /// aborts with nothing moved — never the inconsistent in-between state
    /// the paper's Section III-A(5) warns about.
    pub transactional_trades: bool,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            enabled: true,
            window: 3,
            cooldown: SimDuration::from_secs(15),
            offline_queue_frac: 0.5,
            transactional_trades: true,
        }
    }
}

/// Heartbeat-driven failure detection and recovery tunables.
///
/// Local managers emit heartbeats over the control overlay; the global
/// manager declares a container failed after `miss_limit` consecutive
/// missed beats and then recovers it — restart on spare staging nodes
/// (bounded retries with virtual-time backoff), falling back to
/// generalized offline staging when no spares remain or the retry budget
/// is spent.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// Heartbeat period for every container's local manager.
    pub heartbeat_every: SimDuration,
    /// Consecutive missed heartbeats before a container is declared failed.
    pub miss_limit: u32,
    /// Restart attempts per container before falling back to offline
    /// staging.
    pub max_restarts: u32,
    /// Extra delay added per prior attempt before a restart completes
    /// (linear backoff in virtual time).
    pub restart_backoff: SimDuration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            heartbeat_every: SimDuration::from_secs(5),
            miss_limit: 3,
            max_restarts: 2,
            restart_backoff: SimDuration::from_secs(5),
        }
    }
}

/// The global manager's view of a container it has declared failed.
#[derive(Clone, Copy, Debug)]
pub struct FailureView {
    /// The failed container.
    pub id: ContainerId,
    /// Units needed to sustain the cadence (the restart target size).
    pub needed: u32,
    /// Restart attempts already spent on this container.
    pub restarts_so_far: u32,
}

/// A local manager's view of one container, as reported to the global
/// manager.
#[derive(Clone, Copy, Debug)]
pub struct ContainerView {
    /// The container.
    pub id: ContainerId,
    /// Accepting and processing steps.
    pub online: bool,
    /// Never taken offline by policy.
    pub essential: bool,
    /// Resource units currently held.
    pub units: u32,
    /// Local estimate: units needed to sustain the cadence.
    pub needed: u32,
    /// Local estimate: units it could give away and still sustain.
    pub spareable: u32,
    /// Current ingress queue depth.
    pub queue_len: usize,
    /// Ingress queue capacity.
    pub queue_capacity: usize,
    /// Average latency over the monitoring window.
    pub avg_latency: SimDuration,
    /// Samples available in the window.
    pub samples: usize,
}

/// What the global manager decided to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Nothing to do.
    None,
    /// Grow `target` using spare nodes and/or nodes stolen from a donor.
    Rebalance {
        /// The bottleneck container.
        target: ContainerId,
        /// Spare staging nodes to lease.
        lease_spare: u32,
        /// Donor container and node count, when stealing completes the
        /// remedy.
        steal: Option<(ContainerId, u32)>,
    },
    /// Take `target` offline (dependents cascade at execution time).
    Offline {
        /// The hopeless bottleneck.
        target: ContainerId,
    },
    /// Restart a failed container on spare staging nodes.
    Restart {
        /// The failed container.
        target: ContainerId,
        /// Spare staging nodes to lease for the restarted instance.
        lease_spare: u32,
    },
}

/// Evaluates the recovery policy for a container the failure detector has
/// declared dead: restart on spares while both the retry budget and the
/// spare pool allow it, otherwise fall back to generalized offline staging
/// (upstream output is redirected to disk with provenance — even an
/// essential container gets no better option once its nodes are gone).
pub fn decide_recovery(cfg: &RecoveryConfig, failed: &FailureView, spare: u32) -> Decision {
    if failed.restarts_so_far >= cfg.max_restarts || spare == 0 {
        return Decision::Offline { target: failed.id };
    }
    Decision::Restart { target: failed.id, lease_spare: failed.needed.max(1).min(spare) }
}

/// Evaluates the policy against the current container views.
pub fn decide(cfg: &PolicyConfig, sla: &Sla, views: &[ContainerView], spare: u32) -> Decision {
    if !cfg.enabled {
        return Decision::None;
    }

    // Bottleneck: the online container with the longest average latency,
    // with enough samples to trust the estimate.
    let Some(bottleneck) = views
        .iter()
        .filter(|v| v.online && v.samples >= cfg.window.min(2))
        .max_by(|a, b| a.avg_latency.cmp(&b.avg_latency))
    else {
        return Decision::None;
    };

    if !sla.container_violated(bottleneck.avg_latency) {
        return Decision::None;
    }

    let deficit = bottleneck.needed.saturating_sub(bottleneck.units);
    if deficit == 0 {
        // Correctly sized: the backlog is transient and will drain.
        return Decision::None;
    }

    let lease_spare = deficit.min(spare);
    let remaining = deficit - lease_spare;

    if remaining == 0 {
        return Decision::Rebalance { target: bottleneck.id, lease_spare, steal: None };
    }

    // Steal only when a single donor can complete the remedy — partially
    // harming a donor without fixing the bottleneck helps no one.
    let donor = views
        .iter()
        .filter(|v| v.online && v.id != bottleneck.id && v.spareable >= remaining)
        .max_by_key(|v| v.spareable);
    if let Some(donor) = donor {
        return Decision::Rebalance {
            target: bottleneck.id,
            lease_spare,
            steal: Some((donor.id, remaining)),
        };
    }

    if lease_spare > 0 {
        // Partial relief from spares while it lasts.
        return Decision::Rebalance { target: bottleneck.id, lease_spare, steal: None };
    }

    // No resources anywhere. Prune the bottleneck before its queue
    // overflows and blocks the application — unless it is essential.
    let fill = bottleneck.queue_len as f64 / bottleneck.queue_capacity.max(1) as f64;
    if !bottleneck.essential && fill >= cfg.offline_queue_frac {
        return Decision::Offline { target: bottleneck.id };
    }

    Decision::None
}

/// One tenant's slice of the machine, as the cluster-level arbiter sees
/// it: the per-container views its local managers reported, its SLA, and
/// its fair-share position.
#[derive(Clone, Debug)]
pub struct TenantPolicyView {
    /// Tenant index (submission order).
    pub tenant: u32,
    /// The SLA this tenant is managed against.
    pub sla: Sla,
    /// The tenant's fair share of the staging area
    /// (`staging_nodes · weight / Σ weights` over admitted tenants).
    pub fair_share: u32,
    /// Staging nodes the tenant's containers currently hold.
    pub held: u32,
    /// Per-container local-manager views, in pipeline order.
    pub views: Vec<ContainerView>,
}

/// What the cluster-level arbiter decided for this policy round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterDecision {
    /// Nothing to do.
    None,
    /// Admit a queued tenant: enough spare nodes freed up for its held
    /// allocation. Admission outranks rebalancing — the machine fills
    /// itself before optimizing whoever is already on it.
    Admit {
        /// The tenant to admit (submission order index).
        tenant: u32,
    },
    /// Execute an ordinary within-tenant decision (spares, in-tenant
    /// steal, or offline) for the chosen tenant.
    Act {
        /// The tenant the decision belongs to.
        tenant: u32,
        /// The per-tenant policy's decision.
        decision: Decision,
    },
    /// Cross-tenant steal: no in-tenant remedy completes, but a container
    /// of another tenant underuses its allocation enough to cover the
    /// rest.
    CrossSteal {
        /// The bottleneck's tenant.
        tenant: u32,
        /// The bottleneck container.
        target: ContainerId,
        /// Spare staging nodes leased alongside the steal.
        lease_spare: u32,
        /// The donor's tenant.
        donor_tenant: u32,
        /// The donor container.
        donor: ContainerId,
        /// Nodes taken from the donor.
        take: u32,
    },
}

/// The bottleneck candidate of one tenant, per the same rules
/// [`decide`] applies: the online container with the longest trusted
/// average latency, if it violates the tenant's SLA with a positive unit
/// deficit.
fn tenant_candidate<'a>(
    cfg: &PolicyConfig,
    tv: &'a TenantPolicyView,
) -> Option<(&'a ContainerView, u32)> {
    let bottleneck = tv
        .views
        .iter()
        .filter(|v| v.online && v.samples >= cfg.window.min(2))
        .max_by(|a, b| a.avg_latency.cmp(&b.avg_latency))?;
    if !tv.sla.container_violated(bottleneck.avg_latency) {
        return None;
    }
    let deficit = bottleneck.needed.saturating_sub(bottleneck.units);
    (deficit > 0).then_some((bottleneck, deficit))
}

/// Evaluates the cluster-level policy: admission of queued tenants first,
/// then fair-share arbitration across violating tenants, then the chosen
/// tenant's within-tenant policy ([`decide`]), upgraded to a cross-tenant
/// steal when the in-tenant remedy is incomplete and another tenant
/// underuses its allocation.
///
/// `queued` lists waiting tenants as `(tenant, held_nodes)` in submission
/// order; `spare` is the free staging-node count. With a single admitted
/// tenant and nothing queued this reduces *exactly* to
/// `Act { tenant, decision: decide(...) }` — the property that keeps
/// single-tenant runs bit-identical to the legacy engine.
pub fn decide_cluster(
    cfg: &PolicyConfig,
    tenants: &[TenantPolicyView],
    queued: &[(u32, u32)],
    spare: u32,
) -> ClusterDecision {
    if !cfg.enabled {
        return ClusterDecision::None;
    }

    // Admission first, in submission order.
    for &(tenant, held) in queued {
        if held <= spare {
            return ClusterDecision::Admit { tenant };
        }
    }

    // Which tenants are violating with a real deficit? A single pass
    // tracks the count and the minimum, so the hot policy tick allocates
    // nothing. Serve the tenant furthest under its fair share first; the
    // fixed-point ratio keeps the ordering integer-deterministic, and the
    // strict `<` keeps the lowest index on ties (matching the old
    // `min_by_key` over `(ratio, i)`).
    let mut n_candidates = 0usize;
    let mut picked: Option<(u128, usize)> = None;
    for (i, tv) in tenants.iter().enumerate() {
        if tenant_candidate(cfg, tv).is_none() {
            continue;
        }
        n_candidates += 1;
        let ratio = (tv.held as u128 * 1_000_000) / tv.fair_share.max(1) as u128;
        if picked.is_none_or(|(best, _)| ratio < best) {
            picked = Some((ratio, i));
        }
    }
    let Some((_, pick)) = picked else {
        return ClusterDecision::None;
    };

    let tv = &tenants[pick];
    // Under contention, a tenant at or beyond its fair share must find
    // the nodes inside its own allocation (or another tenant's surplus);
    // uncontested, spares flow freely — which is also the single-tenant
    // legacy behaviour.
    let spare_cap = if n_candidates > 1 {
        spare.min(tv.fair_share.saturating_sub(tv.held))
    } else {
        spare
    };
    let decision = decide(cfg, &tv.sla, &tv.views, spare_cap);
    if let Decision::Rebalance { steal: Some(_), .. } = decision {
        return ClusterDecision::Act { tenant: tv.tenant, decision };
    }

    // `pick` came from the candidate set, so this is always Some; if the
    // invariant ever broke we degrade to the in-tenant decision rather
    // than panic.
    let Some((bottleneck, deficit)) = tenant_candidate(cfg, tv) else {
        return ClusterDecision::Act { tenant: tv.tenant, decision };
    };
    let lease_spare = deficit.min(spare_cap);
    let remaining = deficit - lease_spare;
    if remaining > 0 {
        // The in-tenant remedy is incomplete. A donor container in another
        // tenant whose surplus covers the rest completes it; prefer the
        // donor tenant furthest over its fair share, then the biggest
        // surplus, then the lowest container id.
        let donor = tenants
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != pick)
            .flat_map(|(j, dv)| {
                dv.views
                    .iter()
                    .filter(|v| v.online && v.spareable >= remaining)
                    .map(move |v| (j, v))
            })
            .max_by_key(|&(j, v)| {
                let dv = &tenants[j];
                (dv.held.saturating_sub(dv.fair_share), v.spareable, std::cmp::Reverse(v.id))
            });
        if let Some((j, v)) = donor {
            return ClusterDecision::CrossSteal {
                tenant: tv.tenant,
                target: bottleneck.id,
                lease_spare,
                donor_tenant: tenants[j].tenant,
                donor: v.id,
                take: remaining,
            };
        }
    }
    ClusterDecision::Act { tenant: tv.tenant, decision }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, units: u32, needed: u32, spareable: u32, avg_s: u64) -> ContainerView {
        ContainerView {
            id: ContainerId(id),
            online: true,
            essential: false,
            units,
            needed,
            spareable,
            queue_len: 2,
            queue_capacity: 8,
            avg_latency: SimDuration::from_secs(avg_s),
            samples: 3,
        }
    }

    fn sla() -> Sla {
        Sla::from_cadence(SimDuration::from_secs(15)) // violation above 30 s
    }

    #[test]
    fn healthy_pipeline_needs_nothing() {
        let views = [view(0, 8, 1, 7, 2), view(1, 2, 2, 0, 20)];
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &views, 4), Decision::None);
    }

    #[test]
    fn spares_are_preferred() {
        let views = [view(0, 8, 1, 7, 2), view(1, 2, 6, 0, 45)];
        assert_eq!(
            decide(&PolicyConfig::default(), &sla(), &views, 4),
            Decision::Rebalance { target: ContainerId(1), lease_spare: 4, steal: None }
        );
    }

    #[test]
    fn steal_completes_the_remedy() {
        // Fig. 7 shape: no spares, Bonds one short, Helper over-provisioned.
        let views = [view(0, 8, 1, 7, 2), view(1, 1, 2, 0, 45)];
        assert_eq!(
            decide(&PolicyConfig::default(), &sla(), &views, 0),
            Decision::Rebalance {
                target: ContainerId(1),
                lease_spare: 0,
                steal: Some((ContainerId(0), 1)),
            }
        );
    }

    #[test]
    fn no_partial_steal() {
        // Donor can spare 3, bottleneck needs 10 more: stealing would not
        // fix it, so with no spares the decision falls through to offline
        // (queue at 50%).
        let mut bott = view(1, 2, 12, 0, 60);
        bott.queue_len = 4;
        let views = [view(0, 4, 1, 3, 2), bott];
        assert_eq!(
            decide(&PolicyConfig::default(), &sla(), &views, 0),
            Decision::Offline { target: ContainerId(1) }
        );
    }

    #[test]
    fn partial_spares_before_offline() {
        let views = [view(0, 4, 1, 3, 2), view(1, 2, 12, 0, 60)];
        assert_eq!(
            decide(&PolicyConfig::default(), &sla(), &views, 4),
            Decision::Rebalance { target: ContainerId(1), lease_spare: 4, steal: None }
        );
    }

    #[test]
    fn offline_waits_for_queue_pressure() {
        let mut bott = view(1, 2, 12, 0, 60);
        bott.queue_len = 1; // 12.5% < 50%
        let views = [view(0, 2, 1, 1, 2), bott];
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &views, 0), Decision::None);
    }

    #[test]
    fn essential_containers_never_go_offline() {
        let mut bott = view(0, 1, 12, 0, 60);
        bott.essential = true;
        bott.queue_len = 8;
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &[bott], 0), Decision::None);
    }

    #[test]
    fn correctly_sized_transient_is_left_alone() {
        // Latency above SLA but units already match the need: backlog is
        // draining (e.g. right after a resize).
        let views = [view(1, 6, 6, 0, 45)];
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &views, 4), Decision::None);
    }

    #[test]
    fn disabled_policy_does_nothing() {
        let views = [view(1, 1, 6, 0, 100)];
        let cfg = PolicyConfig { enabled: false, ..PolicyConfig::default() };
        assert_eq!(decide(&cfg, &sla(), &views, 8), Decision::None);
    }

    #[test]
    fn recovery_restarts_on_spares_within_budget() {
        let cfg = RecoveryConfig::default();
        let failed = FailureView { id: ContainerId(1), needed: 2, restarts_so_far: 0 };
        assert_eq!(
            decide_recovery(&cfg, &failed, 4),
            Decision::Restart { target: ContainerId(1), lease_spare: 2 }
        );
        // Spares cap the lease.
        assert_eq!(
            decide_recovery(&cfg, &failed, 1),
            Decision::Restart { target: ContainerId(1), lease_spare: 1 }
        );
        // Zero-need containers still get one node back.
        let tiny = FailureView { needed: 0, ..failed };
        assert_eq!(
            decide_recovery(&cfg, &tiny, 4),
            Decision::Restart { target: ContainerId(1), lease_spare: 1 }
        );
    }

    #[test]
    fn recovery_falls_back_to_offline_staging() {
        let cfg = RecoveryConfig::default();
        // No spares left.
        let failed = FailureView { id: ContainerId(1), needed: 2, restarts_so_far: 0 };
        assert_eq!(decide_recovery(&cfg, &failed, 0), Decision::Offline { target: ContainerId(1) });
        // Retry budget spent.
        let spent = FailureView { restarts_so_far: cfg.max_restarts, ..failed };
        assert_eq!(decide_recovery(&cfg, &spent, 8), Decision::Offline { target: ContainerId(1) });
    }

    #[test]
    fn offline_ignores_inactive_containers() {
        let mut off = view(2, 0, 0, 0, 500);
        off.online = false;
        let views = [view(0, 8, 1, 7, 2), off];
        assert_eq!(decide(&PolicyConfig::default(), &sla(), &views, 0), Decision::None);
    }

    fn tenant(ix: u32, fair_share: u32, held: u32, views: Vec<ContainerView>) -> TenantPolicyView {
        TenantPolicyView { tenant: ix, sla: sla(), fair_share, held, views }
    }

    #[test]
    fn single_tenant_cluster_reduces_to_decide() {
        let cfg = PolicyConfig::default();
        for (views, spare) in [
            (vec![view(0, 8, 1, 7, 2), view(1, 2, 6, 0, 45)], 4u32), // spares
            (vec![view(0, 8, 1, 7, 2), view(1, 1, 2, 0, 45)], 0),    // in-tenant steal
            (vec![view(0, 8, 1, 7, 2), view(1, 2, 2, 0, 20)], 4),    // healthy
        ] {
            let expected = decide(&cfg, &sla(), &views, spare);
            let tv = tenant(0, 13, 13, views);
            let got = decide_cluster(&cfg, &[tv], &[], spare);
            match expected {
                Decision::None => assert_eq!(got, ClusterDecision::None),
                d => assert_eq!(got, ClusterDecision::Act { tenant: 0, decision: d }),
            }
        }
    }

    #[test]
    fn admission_outranks_rebalancing() {
        let cfg = PolicyConfig::default();
        let starving = tenant(0, 8, 2, vec![view(1, 2, 6, 0, 45)]);
        // Second queued tenant fits, first does not: submission order wins
        // among those that fit.
        let got = decide_cluster(&cfg, &[starving], &[(1, 9), (2, 4)], 6);
        assert_eq!(got, ClusterDecision::Admit { tenant: 2 });
    }

    #[test]
    fn fair_share_serves_the_most_under_share_tenant() {
        let cfg = PolicyConfig::default();
        // Both tenants violate and need 2 nodes; tenant 1 is far under its
        // share, tenant 0 is over.
        let t0 = tenant(0, 8, 12, vec![view(0, 2, 4, 0, 45)]);
        let t1 = tenant(1, 8, 3, vec![view(10, 2, 4, 0, 45)]);
        let got = decide_cluster(&cfg, &[t0, t1], &[], 4);
        assert_eq!(
            got,
            ClusterDecision::Act {
                tenant: 1,
                decision: Decision::Rebalance {
                    target: ContainerId(10),
                    lease_spare: 2,
                    steal: None
                },
            }
        );
    }

    #[test]
    fn contention_caps_spares_at_the_fair_share() {
        let cfg = PolicyConfig::default();
        // Tenant 0 is picked (more under share) but only 1 node under its
        // share: the lease is capped at 1 of the 4 spares, leaving nodes
        // for the other violating tenant's turn.
        let t0 = tenant(0, 8, 7, vec![view(0, 2, 5, 0, 45)]);
        let t1 = tenant(1, 8, 8, vec![view(10, 2, 5, 0, 45)]);
        let got = decide_cluster(&cfg, &[t0, t1], &[], 4);
        assert_eq!(
            got,
            ClusterDecision::Act {
                tenant: 0,
                decision: Decision::Rebalance {
                    target: ContainerId(0),
                    lease_spare: 1,
                    steal: None
                },
            }
        );
    }

    #[test]
    fn cross_tenant_steal_taps_an_underusing_tenant() {
        let cfg = PolicyConfig::default();
        // Tenant 0's bottleneck needs 2; no spares and no in-tenant donor.
        // Tenant 1 holds far more than its share and can spare 3.
        let t0 = tenant(0, 8, 3, vec![view(0, 1, 3, 0, 45)]);
        let t1 = tenant(1, 8, 13, vec![view(10, 13, 1, 3, 2)]);
        let got = decide_cluster(&cfg, &[t0, t1], &[], 0);
        assert_eq!(
            got,
            ClusterDecision::CrossSteal {
                tenant: 0,
                target: ContainerId(0),
                lease_spare: 0,
                donor_tenant: 1,
                donor: ContainerId(10),
                take: 2,
            }
        );
    }

    #[test]
    fn cross_steal_not_taken_when_in_tenant_remedy_completes() {
        let cfg = PolicyConfig::default();
        let t0 = tenant(0, 8, 9, vec![view(0, 8, 1, 7, 2), view(1, 1, 2, 0, 45)]);
        let t1 = tenant(1, 8, 7, vec![view(10, 7, 1, 6, 2)]);
        let got = decide_cluster(&cfg, &[t0, t1], &[], 0);
        assert_eq!(
            got,
            ClusterDecision::Act {
                tenant: 0,
                decision: Decision::Rebalance {
                    target: ContainerId(1),
                    lease_spare: 0,
                    steal: Some((ContainerId(0), 1)),
                },
            }
        );
    }

    #[test]
    fn disabled_policy_decides_nothing_cluster_wide() {
        let cfg = PolicyConfig { enabled: false, ..PolicyConfig::default() };
        let t0 = tenant(0, 8, 2, vec![view(0, 1, 6, 0, 100)]);
        assert_eq!(decide_cluster(&cfg, &[t0], &[(1, 2)], 8), ClusterDecision::None);
    }
}
