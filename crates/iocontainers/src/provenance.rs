//! Data-processing provenance.
//!
//! When management takes a container offline, the data it would have
//! processed is written to disk instead — *labeled with its data-processing
//! provenance*, so it is always possible to tell which analytics already
//! ran on a stored step and which must still be applied post-hoc. The
//! labels ride on the ADIOS attribute system.

use adios::{AttrValue, StepData};

/// Attribute key listing analytics that already processed the step.
pub const PROCESSED_BY: &str = "provenance.processed_by";
/// Attribute key listing analytics still owed to the step.
pub const PENDING_OPS: &str = "provenance.pending_ops";

/// Provenance of one stored step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Analytics that ran, in order.
    pub processed_by: Vec<String>,
    /// Analytics that must still run offline, in order.
    pub pending_ops: Vec<String>,
}

impl Provenance {
    /// Builds provenance from the online/offline split of a pipeline: the
    /// stages that ran before the cut, and the stages pruned after it.
    pub fn from_split(ran: &[&str], pruned: &[&str]) -> Provenance {
        Provenance {
            processed_by: ran.iter().map(|s| s.to_string()).collect(),
            pending_ops: pruned.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Stamps the provenance onto a step's attributes.
    pub fn stamp(&self, step: &mut StepData) {
        step.set_attr(PROCESSED_BY, AttrValue::Str(self.processed_by.join(",")));
        step.set_attr(PENDING_OPS, AttrValue::Str(self.pending_ops.join(",")));
    }

    /// Reads provenance back from a step's attributes.
    pub fn read(step: &StepData) -> Provenance {
        let list = |key: &str| -> Vec<String> {
            match step.attr(key) {
                Some(AttrValue::Str(s)) if !s.is_empty() => {
                    s.split(',').map(str::to_string).collect()
                }
                _ => Vec::new(),
            }
        };
        Provenance { processed_by: list(PROCESSED_BY), pending_ops: list(PENDING_OPS) }
    }

    /// Marks one pending operation as now performed (post-processing
    /// catch-up). Returns `false` if `op` was not the next pending op —
    /// analytics must be applied in pipeline order.
    pub fn complete(&mut self, op: &str) -> bool {
        if self.pending_ops.first().map(String::as_str) == Some(op) {
            self.pending_ops.remove(0);
            self.processed_by.push(op.to_string());
            true
        } else {
            false
        }
    }

    /// True when nothing is owed.
    pub fn fully_processed(&self) -> bool {
        self.pending_ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_read_round_trip() {
        let p = Provenance::from_split(&["Helper", "Bonds"], &["CSym", "CNA"]);
        let mut step = StepData::new(3);
        p.stamp(&mut step);
        let back = Provenance::read(&step);
        assert_eq!(back, p);
        assert!(!back.fully_processed());
    }

    #[test]
    fn empty_provenance_reads_empty() {
        let step = StepData::new(0);
        let p = Provenance::read(&step);
        assert!(p.processed_by.is_empty());
        assert!(p.pending_ops.is_empty());
        assert!(p.fully_processed());
    }

    #[test]
    fn complete_enforces_pipeline_order() {
        let mut p = Provenance::from_split(&["Helper"], &["Bonds", "CSym"]);
        assert!(!p.complete("CSym"), "CSym before Bonds must fail");
        assert!(p.complete("Bonds"));
        assert!(p.complete("CSym"));
        assert!(p.fully_processed());
        assert_eq!(p.processed_by, vec!["Helper", "Bonds", "CSym"]);
    }

    #[test]
    fn restamping_overwrites() {
        let mut step = StepData::new(0);
        Provenance::from_split(&["Helper"], &["Bonds"]).stamp(&mut step);
        let mut p = Provenance::read(&step);
        p.complete("Bonds");
        p.stamp(&mut step);
        let back = Provenance::read(&step);
        assert!(back.fully_processed());
        assert_eq!(back.processed_by, vec!["Helper", "Bonds"]);
    }
}
