//! Service-level agreements guiding container management.
//!
//! The paper's management actions are metric-driven: the simplest SLA is
//! "analytics must complete before the application's next output step"
//! (prevent blocking); others bound per-container latency or end-to-end
//! pipeline latency. [`Sla`] captures those bounds; the policy layer
//! evaluates them against monitoring data.

use sim_core::SimDuration;

/// The agreement a pipeline run is managed against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sla {
    /// The application's output cadence — the interval at which new steps
    /// arrive. A container sustaining less than one step per cadence is a
    /// bottleneck.
    pub output_cadence: SimDuration,
    /// Maximum acceptable per-container latency (entry → exit, including
    /// queue wait) before management intervenes.
    pub max_container_latency: SimDuration,
    /// Optional bound on end-to-end pipeline latency.
    pub max_end_to_end: Option<SimDuration>,
}

impl Sla {
    /// The paper's experimental setup: 15 s output cadence ("more
    /// frequently than normal, to show capabilities under stress") and a
    /// per-container bound of two cadences — enough queueing headroom that
    /// transient spikes do not trigger management, but sustained backlog
    /// does.
    pub fn paper_default() -> Sla {
        let cadence = SimDuration::from_secs(15);
        Sla {
            output_cadence: cadence,
            max_container_latency: cadence * 2,
            max_end_to_end: None,
        }
    }

    /// A cadence-derived SLA with the same 2× latency headroom.
    pub fn from_cadence(cadence: SimDuration) -> Sla {
        Sla { output_cadence: cadence, max_container_latency: cadence * 2, max_end_to_end: None }
    }

    /// True if the observed average container latency violates the SLA.
    pub fn container_violated(&self, avg_latency: SimDuration) -> bool {
        avg_latency > self.max_container_latency
    }

    /// True if the observed end-to-end latency violates the SLA.
    pub fn end_to_end_violated(&self, e2e: SimDuration) -> bool {
        self.max_end_to_end.map(|m| e2e > m).unwrap_or(false)
    }

    /// Summarizes a finished run against this SLA: how many of the
    /// `steps` emitted made it through end to end, how many of those kept
    /// inside the end-to-end bound (when one is set), and what fraction of
    /// container latency samples stayed under the per-container bound.
    pub fn attainment(
        &self,
        steps: u64,
        e2e_secs: impl Iterator<Item = f64>,
        latency_secs: impl Iterator<Item = f64>,
    ) -> SlaAttainment {
        let bound = self.max_end_to_end.map(|m| m.as_secs_f64());
        let (mut accounted, mut e2e_within) = (0u64, 0u64);
        for v in e2e_secs {
            accounted += 1;
            if bound.map(|b| v <= b).unwrap_or(true) {
                e2e_within += 1;
            }
        }
        let cap = self.max_container_latency.as_secs_f64();
        let (mut samples, mut samples_within) = (0u64, 0u64);
        for v in latency_secs {
            samples += 1;
            if v <= cap {
                samples_within += 1;
            }
        }
        SlaAttainment {
            steps,
            accounted,
            e2e_within,
            e2e_bounded: bound.is_some(),
            samples,
            samples_within,
        }
    }
}

/// Per-tenant SLA attainment over one finished run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlaAttainment {
    /// Output steps the application emitted.
    pub steps: u64,
    /// Steps that completed the full pipeline (rather than bypassing to
    /// disk or never draining).
    pub accounted: u64,
    /// Completed steps inside the end-to-end bound (all of them when the
    /// SLA sets no bound).
    pub e2e_within: u64,
    /// Whether the SLA actually bounds end-to-end latency.
    pub e2e_bounded: bool,
    /// Container latency samples observed.
    pub samples: u64,
    /// Samples at or under the per-container latency bound.
    pub samples_within: u64,
}

impl SlaAttainment {
    /// Fraction of emitted steps that completed end to end within bound.
    pub fn e2e_fraction(&self) -> f64 {
        if self.steps == 0 {
            return 1.0;
        }
        self.e2e_within as f64 / self.steps as f64
    }

    /// Fraction of emitted steps accounted for by pipeline completions.
    pub fn accounted_fraction(&self) -> f64 {
        if self.steps == 0 {
            return 1.0;
        }
        self.accounted as f64 / self.steps as f64
    }

    /// Fraction of latency samples inside the per-container bound
    /// (1.0 when nothing was sampled).
    pub fn container_fraction(&self) -> f64 {
        if self.samples == 0 {
            return 1.0;
        }
        self.samples_within as f64 / self.samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_fifteen_seconds() {
        let sla = Sla::paper_default();
        assert_eq!(sla.output_cadence, SimDuration::from_secs(15));
        assert_eq!(sla.max_container_latency, SimDuration::from_secs(30));
        assert_eq!(sla.max_end_to_end, None);
    }

    #[test]
    fn violation_checks() {
        let sla = Sla::from_cadence(SimDuration::from_secs(10));
        assert!(!sla.container_violated(SimDuration::from_secs(20)));
        assert!(sla.container_violated(SimDuration::from_secs(21)));
        assert!(!sla.end_to_end_violated(SimDuration::from_secs(1_000)));
        let strict = Sla { max_end_to_end: Some(SimDuration::from_secs(60)), ..sla };
        assert!(strict.end_to_end_violated(SimDuration::from_secs(61)));
    }

    #[test]
    fn attainment_counts_bounded_steps_and_samples() {
        let sla = Sla {
            max_end_to_end: Some(SimDuration::from_secs(60)),
            ..Sla::from_cadence(SimDuration::from_secs(10))
        };
        let att = sla.attainment(
            4,
            [30.0, 59.0, 61.0].into_iter(),
            [5.0, 20.0, 21.0, 19.0].into_iter(),
        );
        assert_eq!(att.accounted, 3);
        assert_eq!(att.e2e_within, 2);
        assert!(att.e2e_bounded);
        assert_eq!(att.samples_within, 3);
        assert!((att.e2e_fraction() - 0.5).abs() < 1e-12);
        assert!((att.accounted_fraction() - 0.75).abs() < 1e-12);
        assert!((att.container_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unbounded_e2e_counts_every_completion() {
        let sla = Sla::paper_default();
        let att = sla.attainment(2, [1e9, 2e9].into_iter(), std::iter::empty());
        assert_eq!(att.e2e_within, 2);
        assert!(!att.e2e_bounded);
        assert_eq!(att.container_fraction(), 1.0);
        let empty = sla.attainment(0, std::iter::empty(), std::iter::empty());
        assert_eq!(empty.e2e_fraction(), 1.0);
    }
}
