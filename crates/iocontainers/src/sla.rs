//! Service-level agreements guiding container management.
//!
//! The paper's management actions are metric-driven: the simplest SLA is
//! "analytics must complete before the application's next output step"
//! (prevent blocking); others bound per-container latency or end-to-end
//! pipeline latency. [`Sla`] captures those bounds; the policy layer
//! evaluates them against monitoring data.

use sim_core::SimDuration;

/// The agreement a pipeline run is managed against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sla {
    /// The application's output cadence — the interval at which new steps
    /// arrive. A container sustaining less than one step per cadence is a
    /// bottleneck.
    pub output_cadence: SimDuration,
    /// Maximum acceptable per-container latency (entry → exit, including
    /// queue wait) before management intervenes.
    pub max_container_latency: SimDuration,
    /// Optional bound on end-to-end pipeline latency.
    pub max_end_to_end: Option<SimDuration>,
}

impl Sla {
    /// The paper's experimental setup: 15 s output cadence ("more
    /// frequently than normal, to show capabilities under stress") and a
    /// per-container bound of two cadences — enough queueing headroom that
    /// transient spikes do not trigger management, but sustained backlog
    /// does.
    pub fn paper_default() -> Sla {
        let cadence = SimDuration::from_secs(15);
        Sla {
            output_cadence: cadence,
            max_container_latency: cadence * 2,
            max_end_to_end: None,
        }
    }

    /// A cadence-derived SLA with the same 2× latency headroom.
    pub fn from_cadence(cadence: SimDuration) -> Sla {
        Sla { output_cadence: cadence, max_container_latency: cadence * 2, max_end_to_end: None }
    }

    /// True if the observed average container latency violates the SLA.
    pub fn container_violated(&self, avg_latency: SimDuration) -> bool {
        avg_latency > self.max_container_latency
    }

    /// True if the observed end-to-end latency violates the SLA.
    pub fn end_to_end_violated(&self, e2e: SimDuration) -> bool {
        self.max_end_to_end.map(|m| e2e > m).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_fifteen_seconds() {
        let sla = Sla::paper_default();
        assert_eq!(sla.output_cadence, SimDuration::from_secs(15));
        assert_eq!(sla.max_container_latency, SimDuration::from_secs(30));
        assert_eq!(sla.max_end_to_end, None);
    }

    #[test]
    fn violation_checks() {
        let sla = Sla::from_cadence(SimDuration::from_secs(10));
        assert!(!sla.container_violated(SimDuration::from_secs(20)));
        assert!(sla.container_violated(SimDuration::from_secs(21)));
        assert!(!sla.end_to_end_violated(SimDuration::from_secs(1_000)));
        let strict = Sla { max_end_to_end: Some(SimDuration::from_secs(60)), ..sla };
        assert!(strict.end_to_end_violated(SimDuration::from_secs(61)));
    }
}
