//! The threaded container runtime: real kernels on real data.
//!
//! Where [`crate::run_pipeline`] reproduces the paper's cluster-scale
//! figures on simulated time, this runtime executes the actual pipeline
//! end to end on OS threads: a live [`mdsim::MdEngine`] produces atom
//! snapshots; each container is a pool of worker threads fed through a
//! DataTap staged channel; data moves as ADIOS step records (via
//! [`crate::codec`]); per-stage latency flows to a global-manager EVPath
//! overlay; and a manager thread implements the round-robin *increase*
//! operation for Bonds when its staging queue backs up. The CSym → CNA
//! dynamic branch fires from the data itself: CSym detecting the crack
//! retires and the router redirects subsequent steps to CNA.
//!
//! The Helper → Bonds edge rides the step-streaming engine
//! ([`stream::StreamEngine`]) rather than a raw staged channel: Helper is
//! a one-rank writer group sealing merged steps into a bounded log, the
//! Bonds worker pool shares one named cursor (handle clones divide the
//! stream), and the manager's *decrease* operation uses the engine's
//! typed pause protocol — pause, drain through the cursor, retire a
//! replica, resume — with aborted drains surfacing as errors instead of
//! success-shaped counts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use datatap::{channel, PauseAborted};
use evpath::{Action as EvAction, Event, Overlay};
use stream::{Attach, StreamConfig, StreamEngine};
use mdsim::{MdConfig, MdEngine};
use sim_core::stats::Welford;
use smartpointer::{split_snapshot, AggregationTree, Bonds, CSym, Cna};

use crate::codec;

/// Configuration of a threaded pipeline run.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// The MD workload.
    pub md: MdConfig,
    /// Output steps to produce.
    pub steps: u64,
    /// MD steps between outputs.
    pub md_steps_per_epoch: u64,
    /// Simulated writer ranks (Helper aggregates this many chunks/step).
    pub ranks: usize,
    /// Aggregation-tree fan-in.
    pub fan_in: usize,
    /// The Bonds kernel.
    pub bonds: Bonds,
    /// The CSym kernel.
    pub csym: CSym,
    /// The CNA kernel.
    pub cna: Cna,
    /// Staged-channel capacity in steps.
    pub queue_capacity: usize,
    /// Use the paper-faithful O(n²) Bonds kernel instead of the
    /// cell-list fast path (useful to stress the manager).
    pub bonds_use_n2: bool,
    /// Bonds round-robin workers at start.
    pub initial_bonds_workers: usize,
    /// Upper bound the manager may grow Bonds to.
    pub max_bonds_workers: usize,
    /// Enable the managing thread (increase-on-backlog).
    pub manage: bool,
    /// Enable the manager's decrease path: when the Bonds stream sits
    /// idle with more than one replica, pause the writer group, drain the
    /// log, retire a replica, and resume.
    pub decrease: bool,
    /// When the manager cannot grow Bonds further and the backlog
    /// persists, take Bonds offline and stage the remaining steps into a
    /// provenance-labeled BP container file in this directory.
    pub offline_dir: Option<std::path::PathBuf>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            md: MdConfig::default(),
            steps: 8,
            md_steps_per_epoch: 5,
            ranks: 4,
            fan_in: 2,
            bonds: Bonds::default(),
            csym: CSym::default(),
            cna: Cna::default(),
            queue_capacity: 4,
            bonds_use_n2: false,
            initial_bonds_workers: 1,
            max_bonds_workers: 4,
            manage: true,
            decrease: false,
            offline_dir: None,
        }
    }
}

impl ThreadedConfig {
    /// Sets the simpar worker-thread count on every kernel that has one
    /// (Bonds, CSym, CNA). Kernel outputs are bit-identical for any value
    /// (see `simpar`), so this only changes wall-clock behaviour.
    pub fn with_kernel_threads(mut self, threads: usize) -> Self {
        self.bonds.threads = threads;
        self.csym.threads = threads;
        self.cna.threads = threads;
        self
    }
}

/// A management action taken during a threaded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadedAction {
    /// The manager added a Bonds round-robin worker.
    IncreaseBonds {
        /// Worker count after the action.
        workers: usize,
    },
    /// The manager paused the stream, drained it, and retired a Bonds
    /// round-robin worker.
    DecreaseBonds {
        /// Worker count after the action.
        workers: usize,
    },
    /// CSym detected the break; CNA took over.
    Branch {
        /// The step at which the break was detected.
        at_step: u64,
    },
    /// The manager took Bonds offline; remaining steps go to disk with
    /// provenance.
    OfflineBonds {
        /// Steps Bonds had completed when pruned.
        completed: u64,
    },
}

/// One monitoring record delivered to the global-manager overlay.
#[derive(Clone, Copy, Debug)]
pub struct StageSample {
    /// Pipeline stage index (0 = Helper, 1 = Bonds, 2 = CSym, 3 = CNA).
    pub stage: usize,
    /// Step measured.
    pub step: u64,
    /// Real processing latency.
    pub latency: Duration,
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Steps the application emitted.
    pub steps_emitted: u64,
    /// Steps each stage completed: (Helper, Bonds, CSym, CNA).
    pub stage_steps: [u64; 4],
    /// Step at which the crack was detected, if it was.
    pub crack_detected_at: Option<u64>,
    /// Management actions, in order.
    pub actions: Vec<ThreadedAction>,
    /// Mean real latency per stage, seconds.
    pub mean_latency_s: [f64; 4],
    /// Monitoring events delivered to the global manager.
    pub monitor_events: u64,
    /// FCC fraction reported by CNA's last step, if CNA ran.
    pub last_fcc_fraction: Option<f64>,
    /// Steps written to disk with provenance after Bonds went offline.
    pub offline_steps: u64,
    /// The provenance-labeled container file, when the offline path fired.
    pub offline_path: Option<std::path::PathBuf>,
    /// Failures worker threads hit and survived (offline-staging I/O
    /// errors, leaked state). Empty on a clean run.
    pub errors: Vec<String>,
}

struct Shared {
    crack: AtomicBool,
    crack_step: AtomicU64,
    bonds_done: AtomicU64,
    bonds_offline: AtomicBool,
    offline_written: AtomicU64,
    router_done: AtomicBool,
    latency: [Mutex<Welford>; 4],
    actions: Mutex<Vec<ThreadedAction>>,
    last_fcc: Mutex<Option<f64>>,
    errors: Mutex<Vec<String>>,
}

const STAGE_NAMES: [&str; 4] = ["Helper", "Bonds", "CSym", "CNA"];

fn observe(shared: &Shared, monitor: &evpath::OverlaySender, sink: evpath::StoneId, sample: StageSample) {
    shared.latency[sample.stage].lock().unwrap().add(sample.latency.as_secs_f64());
    monitor.submit(sink, Event::new(sample));
}

/// Runs the full pipeline on real threads. Blocks until every stage
/// drains.
pub fn run_threaded(cfg: ThreadedConfig) -> ThreadedReport {
    assert!(cfg.initial_bonds_workers >= 1 && cfg.ranks >= 1 && cfg.steps >= 1);
    let shared = Arc::new(Shared {
        crack: AtomicBool::new(false),
        crack_step: AtomicU64::new(0),
        bonds_done: AtomicU64::new(0),
        bonds_offline: AtomicBool::new(false),
        offline_written: AtomicU64::new(0),
        router_done: AtomicBool::new(false),
        latency: [
            Mutex::new(Welford::new()),
            Mutex::new(Welford::new()),
            Mutex::new(Welford::new()),
            Mutex::new(Welford::new()),
        ],
        actions: Mutex::new(Vec::new()),
        last_fcc: Mutex::new(None),
        errors: Mutex::new(Vec::new()),
    });

    // Global-manager monitoring overlay: every stage reports here.
    let overlay = Overlay::new("global-manager");
    let events = Arc::new(AtomicU64::new(0));
    let ev2 = events.clone();
    let sink = overlay.add_stone(EvAction::Terminal(Box::new(move |_ev| {
        ev2.fetch_add(1, Ordering::Relaxed);
    })));
    let monitor = overlay.sender();

    // Staged channels between containers; the Helper → Bonds edge rides
    // the step-streaming engine (a one-rank writer group over a bounded
    // log) so the worker pool shares a named cursor and the manager can
    // use the typed pause protocol for the decrease operation.
    let (w_chunks, r_chunks) = channel(cfg.queue_capacity * cfg.ranks.max(1));
    let bonds_stream =
        StreamEngine::new(StreamConfig { writers: 1, retention: cfg.queue_capacity });
    let w_bonds = bonds_stream.writer(0);
    let r_bonds = bonds_stream
        .reader("bonds", Attach::Oldest, None)
        .expect("fresh engine has no cursor named 'bonds'");
    let (w_routed, r_routed) = channel(cfg.queue_capacity);
    let (w_csym, r_csym) = channel(cfg.queue_capacity);
    let (w_cna, r_cna) = channel(cfg.queue_capacity);
    let retire_tokens = Arc::new(AtomicU64::new(0));

    let offline_path: Arc<Mutex<Option<std::path::PathBuf>>> = Arc::new(Mutex::new(None));
    let steps = cfg.steps;
    std::thread::scope(|scope| {
        // --- Application (LAMMPS stand-in). -----------------------------
        {
            let cfg = cfg.clone();
            scope.spawn(move || {
                let mut md = MdEngine::new(cfg.md.clone());
                for _ in 0..cfg.steps {
                    let snap = md.run_epoch(cfg.md_steps_per_epoch);
                    for (rank, chunk) in
                        split_snapshot(&snap, cfg.ranks).into_iter().enumerate()
                    {
                        let mut step = codec::snapshot_to_step(&chunk);
                        step.set_attr("rank", adios::AttrValue::Int(rank as i64));
                        // Blocking write: a full staging buffer blocks the
                        // application, exactly as on the machine.
                        if w_chunks.write(step).is_err() {
                            return;
                        }
                    }
                }
            });
        }

        // --- Helper: the aggregation tree. -------------------------------
        {
            let cfg = cfg.clone();
            let shared = shared.clone();
            let monitor = monitor.clone();
            let w_bonds = w_bonds.clone();
            scope.spawn(move || {
                let tree = AggregationTree::new(cfg.fan_in.max(2));
                let mut done = 0u64;
                let mut pending: Vec<mdsim::Snapshot> = Vec::with_capacity(cfg.ranks);
                while done < cfg.steps {
                    let Some((_, step)) = r_chunks.pull() else { break };
                    let t0 = Instant::now();
                    if let Some(chunk) = codec::step_to_snapshot(&step) {
                        pending.push(chunk);
                    }
                    if pending.len() == cfg.ranks {
                        let merged = tree.aggregate(std::mem::take(&mut pending));
                        let out = codec::snapshot_to_step(&merged);
                        let step_ix = merged.step;
                        if w_bonds.write(out).is_err() {
                            break;
                        }
                        done += 1;
                        observe(
                            &shared,
                            &monitor,
                            sink,
                            StageSample { stage: 0, step: step_ix, latency: t0.elapsed() },
                        );
                    }
                }
            });
        }

        // --- Bonds: a growable round-robin worker pool. -------------------
        // `scope` can be captured by the manager thread so the increase
        // operation spawns real replica threads at runtime.
        let spawn_bonds_worker = {
            let cfg = cfg.clone();
            let shared = shared.clone();
            let monitor = monitor.clone();
            let r_bonds = r_bonds.clone();
            let w_routed = w_routed.clone();
            let retire_tokens = retire_tokens.clone();
            move || {
                let cfg = cfg.clone();
                let shared = shared.clone();
                let monitor = monitor.clone();
                let r_bonds = r_bonds.clone();
                let w_routed = w_routed.clone();
                let retire_tokens = retire_tokens.clone();
                scope.spawn(move || {
                    loop {
                        if shared.bonds_done.load(Ordering::Acquire)
                            + shared.offline_written.load(Ordering::Acquire)
                            >= cfg.steps
                            || shared.bonds_offline.load(Ordering::Acquire)
                        {
                            break;
                        }
                        // Decrease: a pending retire token means the
                        // manager paused and drained the stream so one
                        // replica can exit without stranding a step.
                        if retire_tokens
                            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                                t.checked_sub(1)
                            })
                            .is_ok()
                        {
                            break;
                        }
                        let Some((_, step)) =
                            r_bonds.pull_timeout(Duration::from_millis(20))
                        else {
                            continue;
                        };
                        let t0 = Instant::now();
                        let Some(snap) = codec::step_to_snapshot(&step) else { continue };
                        let out = if cfg.bonds_use_n2 {
                            cfg.bonds.compute_n2(&snap)
                        } else {
                            cfg.bonds.compute(&snap)
                        };
                        let encoded = codec::bonds_to_step(&out);
                        if w_routed.write(encoded).is_err() {
                            break;
                        }
                        shared.bonds_done.fetch_add(1, Ordering::AcqRel);
                        observe(
                            &shared,
                            &monitor,
                            sink,
                            StageSample { stage: 1, step: snap.step, latency: t0.elapsed() },
                        );
                    }
                });
            }
        };
        let worker_count = Arc::new(AtomicU64::new(0));
        for _ in 0..cfg.initial_bonds_workers {
            spawn_bonds_worker();
            worker_count.fetch_add(1, Ordering::Relaxed);
        }

        // --- Router: implements the dynamic branch. ----------------------
        {
            let shared = shared.clone();
            scope.spawn(move || {
                let mut routed = 0u64;
                while routed + shared.offline_written.load(Ordering::Acquire) < steps {
                    let Some((_, step)) = r_routed.pull_timeout(Duration::from_millis(20))
                    else {
                        continue;
                    };
                    let target =
                        if shared.crack.load(Ordering::Acquire) { &w_cna } else { &w_csym };
                    if target.write(step).is_err() {
                        break;
                    }
                    routed += 1;
                }
                shared.router_done.store(true, Ordering::Release);
            });
        }

        // --- CSym: detector; retires on break. ---------------------------
        {
            let cfg = cfg.clone();
            let shared = shared.clone();
            let monitor = monitor.clone();
            scope.spawn(move || {
                loop {
                    let Some((_, step)) = r_csym.pull_timeout(Duration::from_millis(20))
                    else {
                        if shared.router_done.load(Ordering::Acquire)
                            || shared.crack.load(Ordering::Acquire)
                        {
                            break;
                        }
                        continue;
                    };
                    let t0 = Instant::now();
                    let Some(bonds) = codec::step_to_bonds(&step) else { continue };
                    let out = cfg.csym.compute(&bonds);
                    observe(
                        &shared,
                        &monitor,
                        sink,
                        StageSample { stage: 2, step: out.step, latency: t0.elapsed() },
                    );
                    if out.break_detected {
                        // Dynamic branch: record, notify, retire.
                        shared.crack_step.store(out.step, Ordering::Release);
                        shared.crack.store(true, Ordering::Release);
                        shared
                            .actions
                            .lock()
                            .unwrap()
                            .push(ThreadedAction::Branch { at_step: out.step });
                        break;
                    }
                }
            });
        }

        // --- CNA: structural labeling after the branch. -------------------
        {
            let cfg = cfg.clone();
            let shared = shared.clone();
            let monitor = monitor.clone();
            scope.spawn(move || {
                loop {
                    let Some((_, step)) = r_cna.pull_timeout(Duration::from_millis(20))
                    else {
                        if shared.router_done.load(Ordering::Acquire) {
                            break;
                        }
                        continue;
                    };
                    let t0 = Instant::now();
                    let Some(bonds) = codec::step_to_bonds(&step) else { continue };
                    let out = cfg.cna.compute(&bonds);
                    *shared.last_fcc.lock().unwrap() = Some(out.fcc_fraction);
                    observe(
                        &shared,
                        &monitor,
                        sink,
                        StageSample { stage: 3, step: out.step, latency: t0.elapsed() },
                    );
                }
            });
        }

        // --- Offline drainer: stages leftover steps with provenance. ------
        if let Some(dir) = cfg.offline_dir.clone() {
            let cfg = cfg.clone();
            let shared = shared.clone();
            let r_drain = r_bonds.clone();
            let path_slot = offline_path.clone();
            scope.spawn(move || {
                // Wait for the offline signal (or completion).
                loop {
                    if shared.bonds_offline.load(Ordering::Acquire) {
                        break;
                    }
                    if shared.bonds_done.load(Ordering::Acquire) >= cfg.steps {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                // I/O failures here must not panic the scope — and must not
                // stop the drain either: the other stages terminate on the
                // `bonds_done + offline_written` counter, so a drainer that
                // exits early would leave Helper blocked on a full staging
                // queue forever. On error we record it, drop the writer, and
                // keep counting steps through so the run still completes.
                let record = |msg: String| shared.errors.lock().unwrap().push(msg);
                let path = dir.join("offline-staged.bp");
                let mut writer = match std::fs::create_dir_all(&dir)
                    .map_err(|e| format!("offline drainer: create {}: {e}", dir.display()))
                    .and_then(|()| {
                        adios::BpFileWriter::create(&path).map_err(|e| {
                            format!("offline drainer: create {}: {e}", path.display())
                        })
                    }) {
                    Ok(w) => Some(w),
                    Err(msg) => {
                        record(msg);
                        None
                    }
                };
                let prov = crate::provenance::Provenance::from_split(
                    &["Helper"],
                    &["Bonds", "CSym"],
                );
                while shared.bonds_done.load(Ordering::Acquire)
                    + shared.offline_written.load(Ordering::Acquire)
                    < cfg.steps
                {
                    let Some((_, mut step)) =
                        r_drain.pull_timeout(Duration::from_millis(20))
                    else {
                        continue;
                    };
                    prov.stamp(&mut step);
                    if let Some(w) = writer.as_mut() {
                        if let Err(e) = w.append("atoms", &step) {
                            record(format!("offline drainer: append step: {e}"));
                            writer = None;
                        }
                    }
                    shared.offline_written.fetch_add(1, Ordering::AcqRel);
                }
                if let Some(w) = writer {
                    match w.finalize() {
                        Ok(final_path) => *path_slot.lock().unwrap() = Some(final_path),
                        Err(e) => record(format!("offline drainer: finalize: {e}")),
                    }
                }
            });
        }

        // --- Manager: the increase operation on backlog. ------------------
        if cfg.manage {
            let cfg = cfg.clone();
            let shared = shared.clone();
            let worker_count = worker_count.clone();
            let r_stats = r_bonds.clone();
            let spawn_bonds_worker = spawn_bonds_worker.clone();
            let retire_tokens = retire_tokens.clone();
            let w_manage = w_bonds.clone();
            scope.spawn(move || {
                let mut saturated_checks = 0u32;
                let mut idle_checks = 0u32;
                loop {
                    if shared.bonds_done.load(Ordering::Acquire)
                        + shared.offline_written.load(Ordering::Acquire)
                        >= cfg.steps
                        || shared.bonds_offline.load(Ordering::Acquire)
                    {
                        break;
                    }
                    let queued = r_stats.queued();
                    let workers = worker_count.load(Ordering::Relaxed) as usize;
                    if queued > cfg.queue_capacity / 2 {
                        if workers < cfg.max_bonds_workers {
                            // The increase operation: spawn a round-robin
                            // replica on the shared staged channel.
                            spawn_bonds_worker();
                            worker_count.fetch_add(1, Ordering::Relaxed);
                            shared
                                .actions
                                .lock()
                                .unwrap()
                                .push(ThreadedAction::IncreaseBonds { workers: workers + 1 });
                        } else if cfg.offline_dir.is_some() {
                            saturated_checks += 1;
                            if saturated_checks >= 5 {
                                // No more resources: take Bonds offline and
                                // stage the remaining steps to disk with
                                // provenance, exactly as the 1024-node
                                // scenario does.
                                let done = shared.bonds_done.load(Ordering::Acquire);
                                shared.bonds_offline.store(true, Ordering::Release);
                                shared
                                    .actions
                                    .lock()
                                    .unwrap()
                                    .push(ThreadedAction::OfflineBonds { completed: done });
                                break;
                            }
                        }
                    } else {
                        saturated_checks = 0;
                        if cfg.decrease && queued == 0 && workers > 1 {
                            idle_checks += 1;
                            if idle_checks >= 5 {
                                idle_checks = 0;
                                // The decrease operation, on the paper's
                                // pause → drain → unlink → resume
                                // protocol. The typed pause outcome
                                // distinguishes a completed drain from an
                                // abort: only a clean drain retires a
                                // replica.
                                match w_manage.pause() {
                                    Ok(_drained) => {
                                        retire_tokens.fetch_add(1, Ordering::AcqRel);
                                        worker_count.fetch_sub(1, Ordering::Relaxed);
                                        shared.actions.lock().unwrap().push(
                                            ThreadedAction::DecreaseBonds {
                                                workers: workers - 1,
                                            },
                                        );
                                    }
                                    Err(PauseAborted::Failed(reason)) => {
                                        shared.errors.lock().unwrap().push(format!(
                                            "manager: decrease pause aborted: {reason}"
                                        ));
                                    }
                                    Err(PauseAborted::Closed { .. }) => {
                                        w_manage.resume();
                                        break;
                                    }
                                }
                                w_manage.resume();
                            }
                        } else {
                            idle_checks = 0;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
        }
    });

    overlay.flush();
    let monitor_events = events.load(Ordering::Relaxed);
    overlay.shutdown();

    // Read results through the shared handle rather than unwrapping the
    // Arc: every spawn joined at the end of the scope above, so nothing
    // races these reads — and a leaked clone degrades to a reported error
    // instead of a panic after an otherwise-successful run.
    let mean = |ix: usize| shared.latency[ix].lock().unwrap().mean();
    let stage_steps = [
        shared.latency[0].lock().unwrap().count(),
        shared.latency[1].lock().unwrap().count(),
        shared.latency[2].lock().unwrap().count(),
        shared.latency[3].lock().unwrap().count(),
    ];
    let final_offline_path = offline_path.lock().unwrap().take();
    let mean_latency_s = [mean(0), mean(1), mean(2), mean(3)];
    let crack_detected_at = shared
        .crack
        .load(Ordering::Acquire)
        .then(|| shared.crack_step.load(Ordering::Acquire));
    let last_fcc_fraction = *shared.last_fcc.lock().unwrap();
    let actions = std::mem::take(&mut *shared.actions.lock().unwrap());
    let mut errors = std::mem::take(&mut *shared.errors.lock().unwrap());
    if Arc::strong_count(&shared) != 1 {
        errors.push("a worker thread leaked a shared-state handle".to_string());
    }
    ThreadedReport {
        steps_emitted: cfg.steps,
        stage_steps,
        crack_detected_at,
        actions,
        mean_latency_s,
        monitor_events,
        last_fcc_fraction,
        offline_steps: shared.offline_written.load(Ordering::Acquire),
        offline_path: final_offline_path,
        errors,
    }
}

/// Stage display names, aligned with [`StageSample::stage`].
pub fn stage_names() -> [&'static str; 4] {
    STAGE_NAMES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_run_flows_through_csym() {
        let cfg = ThreadedConfig { steps: 4, manage: false, ..ThreadedConfig::default() };
        let report = run_threaded(cfg);
        assert_eq!(report.stage_steps[0], 4, "helper steps");
        assert_eq!(report.stage_steps[1], 4, "bonds steps");
        assert_eq!(report.stage_steps[2], 4, "csym sees all steps, no crack");
        assert_eq!(report.stage_steps[3], 0, "cna never activates");
        assert!(report.crack_detected_at.is_none());
        assert!(report.monitor_events >= 12);
    }

    #[test]
    fn fracture_run_branches_to_cna() {
        let md = MdConfig {
            temperature: 0.02,
            strain_per_step: 0.002,
            yield_strain: 0.03,
            ..MdConfig::default()
        };
        // Yield at 15 MD steps; 5 MD steps per output => crack around
        // output step 3.
        let cfg = ThreadedConfig { md, steps: 8, manage: false, ..ThreadedConfig::default() };
        let report = run_threaded(cfg);
        let crack = report.crack_detected_at.expect("crack must be detected");
        assert!((2..=5).contains(&crack), "crack at step {crack}");
        assert!(report.stage_steps[3] > 0, "cna must take over: {:?}", report.stage_steps);
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, ThreadedAction::Branch { .. })));
        // CNA labels the cracked crystal: fcc fraction below 1.
        let fcc = report.last_fcc_fraction.expect("cna ran");
        assert!(fcc < 1.0 && fcc > 0.3, "fcc fraction {fcc}");
    }

    #[test]
    fn manager_grows_bonds_under_backlog() {
        // One slow bonds worker (n² kernel on a larger crystal) with a
        // fast producer: the staging queue backs up and the manager adds
        // replicas.
        let cfg = ThreadedConfig {
            md: MdConfig { cells: (8, 8, 8), ..MdConfig::default() },
            steps: 10,
            md_steps_per_epoch: 1,
            bonds_use_n2: true,
            initial_bonds_workers: 1,
            max_bonds_workers: 4,
            queue_capacity: 4,
            manage: true,
            ..ThreadedConfig::default()
        };
        let report = run_threaded(cfg);
        assert_eq!(report.stage_steps[1], 10, "all steps processed");
        assert!(
            report.actions.iter().any(|a| matches!(a, ThreadedAction::IncreaseBonds { .. })),
            "manager should have increased bonds: {:?}",
            report.actions
        );
    }

    #[test]
    fn manager_decreases_idle_bonds() {
        // A slow producer (long MD epochs) in front of an over-provisioned
        // Bonds pool: the stream sits idle between steps, so the manager
        // pauses, drains, and retires replicas — and every step still
        // lands because the pause protocol only retires after a clean
        // drain.
        let cfg = ThreadedConfig {
            steps: 5,
            initial_bonds_workers: 3,
            max_bonds_workers: 3,
            queue_capacity: 4,
            manage: true,
            decrease: true,
            ..ThreadedConfig::default()
        };
        let report = run_threaded(cfg);
        assert_eq!(report.stage_steps[1], 5, "decrease must not lose steps");
        assert!(
            report.actions.iter().any(|a| matches!(a, ThreadedAction::DecreaseBonds { .. })),
            "manager should have retired an idle bonds replica: {:?}",
            report.actions
        );
        assert!(report.errors.is_empty(), "clean run: {:?}", report.errors);
    }

    #[test]
    fn stage_names_align() {
        assert_eq!(stage_names(), ["Helper", "Bonds", "CSym", "CNA"]);
    }
}

#[cfg(test)]
mod offline_tests {
    use super::*;
    use crate::provenance::Provenance;

    /// The threaded counterpart of the 1024-node scenario: the manager
    /// exhausts its replica budget, takes Bonds offline, and the leftover
    /// steps land in a provenance-labeled BP container that post-hoc
    /// analysis can replay.
    #[test]
    fn saturated_bonds_goes_offline_with_provenance() {
        let dir = std::env::temp_dir()
            .join(format!("ioc-threaded-offline-{}", std::process::id()));
        let cfg = ThreadedConfig {
            md: MdConfig { cells: (9, 9, 9), ..MdConfig::default() },
            steps: 12,
            md_steps_per_epoch: 1,
            bonds_use_n2: true,   // slow kernel
            initial_bonds_workers: 1,
            max_bonds_workers: 1, // no growth possible
            queue_capacity: 2,
            manage: true,
            offline_dir: Some(dir.clone()),
            ..ThreadedConfig::default()
        };
        let report = run_threaded(cfg);

        assert!(
            report.actions.iter().any(|a| matches!(a, ThreadedAction::OfflineBonds { .. })),
            "manager must prune bonds: {:?}",
            report.actions
        );
        assert!(report.offline_steps > 0, "steps must be staged to disk");
        assert_eq!(
            report.stage_steps[1] + report.offline_steps,
            12,
            "every step is either processed or staged"
        );

        // The container file is readable and provenance-complete.
        let path = report.offline_path.expect("offline container written");
        let mut reader = adios::BpFileReader::open(&path).expect("valid container");
        assert_eq!(reader.len() as u64, report.offline_steps);
        let step = reader.read_at(0).expect("readable step");
        let prov = Provenance::read(&step.data);
        assert_eq!(prov.processed_by, vec!["Helper"]);
        assert_eq!(prov.pending_ops, vec!["Bonds", "CSym"]);
        // And the staged atoms decode.
        assert!(crate::codec::step_to_snapshot(&step.data).is_some());
        assert!(report.errors.is_empty(), "clean run: {:?}", report.errors);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// An unwritable offline directory must not panic or hang the run: the
    /// drainer reports the failure, keeps counting steps through so every
    /// stage still terminates, and the report carries the error.
    #[test]
    fn unwritable_offline_dir_is_reported_not_fatal() {
        // A *file* where the directory should go makes create_dir_all fail
        // portably.
        let blocker = std::env::temp_dir()
            .join(format!("ioc-threaded-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"in the way").expect("test setup");
        let cfg = ThreadedConfig {
            md: MdConfig { cells: (9, 9, 9), ..MdConfig::default() },
            steps: 12,
            md_steps_per_epoch: 1,
            bonds_use_n2: true,
            initial_bonds_workers: 1,
            max_bonds_workers: 1,
            queue_capacity: 2,
            manage: true,
            offline_dir: Some(blocker.join("offline")),
            ..ThreadedConfig::default()
        };
        let report = run_threaded(cfg);
        assert!(
            report.actions.iter().any(|a| matches!(a, ThreadedAction::OfflineBonds { .. })),
            "manager still prunes bonds: {:?}",
            report.actions
        );
        assert!(
            report.errors.iter().any(|e| e.contains("offline drainer")),
            "the I/O failure surfaces in the report: {:?}",
            report.errors
        );
        assert!(report.offline_path.is_none(), "no container could be written");
        assert_eq!(
            report.stage_steps[1] + report.offline_steps,
            12,
            "the drain still completes so no stage deadlocks"
        );
        std::fs::remove_file(&blocker).ok();
    }

    /// With growth available, the same load is absorbed and nothing goes
    /// offline — management works before it prunes.
    #[test]
    fn growth_prevents_offline() {
        let dir = std::env::temp_dir()
            .join(format!("ioc-threaded-no-offline-{}", std::process::id()));
        let cfg = ThreadedConfig {
            md: MdConfig { cells: (8, 8, 8), ..MdConfig::default() },
            steps: 10,
            md_steps_per_epoch: 1,
            bonds_use_n2: true,
            initial_bonds_workers: 1,
            max_bonds_workers: 6,
            queue_capacity: 2,
            manage: true,
            offline_dir: Some(dir.clone()),
            ..ThreadedConfig::default()
        };
        let report = run_threaded(cfg);
        assert!(
            !report.actions.iter().any(|a| matches!(a, ThreadedAction::OfflineBonds { .. })),
            "growth should suffice: {:?}",
            report.actions
        );
        assert_eq!(report.stage_steps[1], 10);
        assert_eq!(report.offline_steps, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
