//! # simpar — deterministic fork/join data parallelism
//!
//! The analytics kernels (Bonds, CSym, CNA) and the MD force loop all
//! parallelize the same way: split a contiguous index range `0..n` into
//! one chunk per worker, let each worker produce output it exclusively
//! owns, and combine the per-chunk partials **in chunk order**. Because
//! the chunk decomposition is a pure function of `(n, threads)` and no
//! worker ever observes another worker's output, the combined result is
//! bit-identical for any thread count — the repo's determinism contract
//! (DESIGN.md §7) extends to the parallel kernels for free.
//!
//! Three entry points cover the kernels' shapes:
//!
//! * [`map_chunks`] — each chunk maps to an owned partial; partials come
//!   back as a `Vec` in chunk order (concatenate or fold as needed).
//! * [`chunked_map_reduce`] — [`map_chunks`] plus an in-order fold, for
//!   kernels that reduce into one accumulator (e.g. a histogram).
//! * [`map_slices`] — the output buffer already exists; each worker gets
//!   the disjoint sub-slice it owns plus its global offset (the MD force
//!   loop writes `sys.force` in place this way).
//!
//! All three run the work inline on the caller's thread when
//! `threads <= 1` (or when there is only one chunk), so the serial path
//! spawns nothing and stays simlint-clean by construction. Workers are
//! scoped (`std::thread::scope`): no detached threads, no 'static bounds,
//! and a worker panic propagates to the caller.

#![warn(missing_docs)]

use std::ops::Range;

/// The canonical chunk decomposition of `0..n` over `threads` workers:
/// `min(threads, n)` contiguous ranges, each of size `ceil(n / workers)`
/// except possibly the last. A pure function of `(n, threads)` — every
/// simpar entry point and every test agrees on these boundaries.
pub fn chunks(n: usize, threads: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);
    let chunk = n.div_ceil(workers);
    let mut out = Vec::with_capacity(workers);
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Runs `map` over each chunk of `0..n` and returns the per-chunk results
/// **in chunk order**. With `threads <= 1` (or a single chunk) the maps
/// run inline on the caller's thread; otherwise each chunk runs on its own
/// scoped thread. Either way the returned `Vec` is identical.
pub fn map_chunks<R, F>(n: usize, threads: usize, map: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunks(n, threads);
    if ranges.len() <= 1 || threads <= 1 {
        return ranges.into_iter().map(map).collect();
    }
    let map = &map;
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            ranges.into_iter().map(|r| scope.spawn(move || map(r))).collect();
        // Joining in spawn order IS chunk order: partials merge
        // deterministically no matter how the OS interleaved the workers.
        handles.into_iter().map(|h| h.join().expect("simpar worker panicked")).collect()
    })
}

/// [`map_chunks`] followed by an in-order fold of the partials into
/// `init`. The reduction runs on the caller's thread after every worker
/// has joined, so `reduce` needs no synchronization and observes partials
/// exactly in chunk order.
pub fn chunked_map_reduce<A, R, F, M>(n: usize, threads: usize, map: F, init: A, reduce: M) -> A
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
    M: FnMut(A, R) -> A,
{
    map_chunks(n, threads, map).into_iter().fold(init, reduce)
}

/// Splits `out` at the canonical chunk boundaries and runs
/// `map(chunk_range, sub_slice)` for each piece, returning the per-chunk
/// results in chunk order. Each worker exclusively owns its sub-slice, so
/// the writes are race-free by construction and the filled buffer is
/// bit-identical for any thread count.
pub fn map_slices<T, R, F>(out: &mut [T], threads: usize, map: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Range<usize>, &mut [T]) -> R + Sync,
{
    let n = out.len();
    let ranges = chunks(n, threads);
    if ranges.len() <= 1 || threads <= 1 {
        return ranges.into_iter().map(|r| map(r.clone(), &mut out[r])).collect();
    }
    let map = &map;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        let mut rest = out;
        for r in ranges {
            let (mine, tail) = rest.split_at_mut(r.len());
            rest = tail;
            handles.push(scope.spawn(move || map(r, mine)));
        }
        handles.into_iter().map(|h| h.join().expect("simpar worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_range_exactly_once() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 64, 2000] {
                let cs = chunks(n, threads);
                let mut expect = 0;
                for c in &cs {
                    assert_eq!(c.start, expect, "gap at n={n} threads={threads}");
                    assert!(c.end > c.start, "empty chunk at n={n} threads={threads}");
                    expect = c.end;
                }
                assert_eq!(expect, n, "coverage at n={n} threads={threads}");
                assert!(cs.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn map_chunks_partials_arrive_in_chunk_order() {
        for threads in [1usize, 2, 4, 16] {
            let parts = map_chunks(100, threads, |r| r.clone());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn results_are_identical_for_any_thread_count() {
        let work = |r: Range<usize>| -> Vec<u64> { r.map(|i| (i as u64).wrapping_mul(0x9E37)).collect() };
        let serial: Vec<u64> = map_chunks(257, 1, work).into_iter().flatten().collect();
        for threads in [2usize, 3, 8, 300] {
            let parallel: Vec<u64> = map_chunks(257, threads, work).into_iter().flatten().collect();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn chunked_map_reduce_folds_in_order() {
        // A deliberately non-commutative reduction: string concatenation
        // of per-chunk spans. Any out-of-order merge changes the result.
        let render = |r: Range<usize>| format!("[{}..{}]", r.start, r.end);
        let serial = chunked_map_reduce(10, 1, render, String::new(), |a, r| a + &r);
        assert_eq!(serial, "[0..10]");
        let parallel = chunked_map_reduce(10, 4, render, String::new(), |a, r| a + &r);
        assert_eq!(parallel, "[0..3][3..6][6..9][9..10]");
    }

    #[test]
    fn map_slices_fills_every_element_once() {
        for threads in [1usize, 2, 5, 33] {
            let mut out = vec![0u64; 97];
            let offsets = map_slices(&mut out, threads, |range, slice| {
                for (k, v) in slice.iter_mut().enumerate() {
                    *v = (range.start + k) as u64 + 1;
                }
                range.start
            });
            assert_eq!(out, (1..=97).collect::<Vec<u64>>(), "threads={threads}");
            // Offsets come back in chunk order.
            let mut sorted = offsets.clone();
            sorted.sort_unstable();
            assert_eq!(offsets, sorted);
        }
    }

    #[test]
    fn empty_input_spawns_nothing_and_returns_nothing() {
        assert!(chunks(0, 8).is_empty());
        assert!(map_chunks(0, 8, |r| r).is_empty());
        let mut empty: [u8; 0] = [];
        assert!(map_slices(&mut empty, 8, |_, _| ()).is_empty());
        assert_eq!(chunked_map_reduce(0, 8, |_| 1u64, 7u64, |a, b| a + b), 7);
    }

    #[test]
    fn more_threads_than_items_degrades_to_one_item_chunks() {
        let cs = chunks(3, 100);
        assert_eq!(cs, vec![0..1, 1..2, 2..3]);
    }
}
