//! I/O groups: declared variable schemas plus the attribute system.
//!
//! As in ADIOS, an application declares a *group* of variables once, then
//! writes values for those variables each output step. Attributes annotate a
//! group or variable with metadata; the container runtime uses them to record
//! data-processing provenance when analytics are taken offline (which
//! analysis operations already ran, and which still must be applied
//! post-hoc).

use std::collections::BTreeMap;
use std::fmt;

use crate::types::{DataType, Value};

/// An attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Text attribute.
    Str(String),
    /// Integer attribute.
    Int(i64),
    /// Floating-point attribute.
    Float(f64),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
        }
    }
}

/// Declaration of one variable in a group.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    /// Variable name, unique within the group.
    pub name: String,
    /// Element type.
    pub dtype: DataType,
}

/// A declared I/O group.
#[derive(Clone, Debug, Default)]
pub struct Group {
    name: String,
    vars: BTreeMap<String, VarDecl>,
    attrs: BTreeMap<String, AttrValue>,
}

impl Group {
    /// Creates an empty group.
    pub fn new(name: impl Into<String>) -> Group {
        Group { name: name.into(), vars: BTreeMap::new(), attrs: BTreeMap::new() }
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a variable; replaces any prior declaration of the same name.
    pub fn define_var(&mut self, name: impl Into<String>, dtype: DataType) -> &mut Self {
        let name = name.into();
        self.vars.insert(name.clone(), VarDecl { name, dtype });
        self
    }

    /// Looks up a variable declaration.
    pub fn var(&self, name: &str) -> Option<&VarDecl> {
        self.vars.get(name)
    }

    /// Iterates declared variables in name order.
    pub fn vars(&self) -> impl Iterator<Item = &VarDecl> {
        self.vars.values()
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Sets a group attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: AttrValue) -> &mut Self {
        self.attrs.insert(key.into(), value);
        self
    }

    /// Reads a group attribute.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.get(key)
    }

    /// Iterates attributes in key order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// The data written for one output step of a group: values for (a subset of)
/// its declared variables, plus step-scoped attributes.
#[derive(Clone, Debug, Default)]
pub struct StepData {
    step: u64,
    values: BTreeMap<String, Value>,
    attrs: BTreeMap<String, AttrValue>,
}

/// Errors raised when writing a step against a group schema.
#[derive(Clone, Debug, PartialEq)]
pub enum WriteError {
    /// The variable was never declared in the group.
    UndeclaredVar(String),
    /// The value's element type differs from the declaration.
    TypeMismatch {
        /// Variable name.
        var: String,
        /// Declared type.
        declared: DataType,
        /// Provided type.
        provided: DataType,
    },
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::UndeclaredVar(v) => write!(f, "variable '{v}' not declared in group"),
            WriteError::TypeMismatch { var, declared, provided } => {
                write!(f, "variable '{var}' declared {declared} but written as {provided}")
            }
        }
    }
}

impl std::error::Error for WriteError {}

impl StepData {
    /// Starts an empty step record.
    pub fn new(step: u64) -> StepData {
        StepData { step, values: BTreeMap::new(), attrs: BTreeMap::new() }
    }

    /// The output-step index.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Records a value for `var`, validated against the group schema.
    pub fn write(&mut self, group: &Group, var: &str, value: Value) -> Result<(), WriteError> {
        let decl =
            group.var(var).ok_or_else(|| WriteError::UndeclaredVar(var.to_string()))?;
        if decl.dtype != value.dtype() {
            return Err(WriteError::TypeMismatch {
                var: var.to_string(),
                declared: decl.dtype,
                provided: value.dtype(),
            });
        }
        self.values.insert(var.to_string(), value);
        Ok(())
    }

    /// Records a value without schema validation (for schemaless relays).
    pub fn write_unchecked(&mut self, var: impl Into<String>, value: Value) {
        self.values.insert(var.into(), value);
    }

    /// Reads a recorded value.
    pub fn value(&self, var: &str) -> Option<&Value> {
        self.values.get(var)
    }

    /// Iterates recorded values in name order.
    pub fn values(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sets a step attribute (e.g. provenance markers).
    pub fn set_attr(&mut self, key: impl Into<String>, value: AttrValue) {
        self.attrs.insert(key.into(), value);
    }

    /// Reads a step attribute.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.get(key)
    }

    /// Iterates step attributes in key order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total payload bytes across all recorded values.
    pub fn payload_bytes(&self) -> u64 {
        self.values.values().map(|v| v.byte_len() as u64).sum()
    }

    /// Appends `suffix` to a comma-separated list attribute (creating it if
    /// absent). This is the idiom the container runtime uses for its
    /// `processed_by` / `pending_ops` provenance chains.
    pub fn append_list_attr(&mut self, key: &str, suffix: &str) {
        let next = match self.attrs.get(key) {
            Some(AttrValue::Str(s)) if !s.is_empty() => format!("{s},{suffix}"),
            _ => suffix.to_string(),
        };
        self.attrs.insert(key.to_string(), AttrValue::Str(next));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Dims;

    fn atoms_group() -> Group {
        let mut g = Group::new("atoms");
        g.define_var("x", DataType::F64)
            .define_var("id", DataType::I64)
            .set_attr("units", AttrValue::Str("lj".into()));
        g
    }

    #[test]
    fn schema_validates_types() {
        let g = atoms_group();
        let mut step = StepData::new(0);
        step.write(&g, "x", Value::from_f64(&[1.0], Dims::local1d(1)).unwrap()).unwrap();
        let err = step
            .write(&g, "x", Value::from_i64(&[1], Dims::local1d(1)).unwrap())
            .unwrap_err();
        assert!(matches!(err, WriteError::TypeMismatch { .. }));
        let err = step
            .write(&g, "nope", Value::scalar_i64(0))
            .unwrap_err();
        assert_eq!(err, WriteError::UndeclaredVar("nope".into()));
    }

    #[test]
    fn group_attrs_are_readable() {
        let g = atoms_group();
        assert_eq!(g.attr("units"), Some(&AttrValue::Str("lj".into())));
        assert_eq!(g.var_count(), 2);
        assert_eq!(g.vars().count(), 2);
    }

    #[test]
    fn payload_bytes_sums_values() {
        let g = atoms_group();
        let mut step = StepData::new(3);
        step.write(&g, "x", Value::from_f64(&[1.0, 2.0], Dims::local1d(2)).unwrap()).unwrap();
        step.write(&g, "id", Value::from_i64(&[1, 2], Dims::local1d(2)).unwrap()).unwrap();
        assert_eq!(step.payload_bytes(), 32);
        assert_eq!(step.step(), 3);
    }

    #[test]
    fn provenance_list_attr_appends() {
        let mut step = StepData::new(0);
        step.append_list_attr("processed_by", "helper");
        step.append_list_attr("processed_by", "bonds");
        assert_eq!(step.attr("processed_by"), Some(&AttrValue::Str("helper,bonds".into())));
    }

    #[test]
    fn redefining_var_replaces() {
        let mut g = Group::new("g");
        g.define_var("v", DataType::F32);
        g.define_var("v", DataType::F64);
        assert_eq!(g.var("v").unwrap().dtype, DataType::F64);
        assert_eq!(g.var_count(), 1);
    }
}
