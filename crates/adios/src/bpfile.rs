//! Multi-step BP-lite container files.
//!
//! A run writes many output steps; storing one file per step (as
//! [`crate::FileMethod`] does) is simple but unkind to parallel file
//! systems, so — like the real BP format — a container file appends
//! framed step blobs and finishes with a footer index that lets readers
//! seek directly to any step without scanning. Layout:
//!
//! ```text
//! "BPC1" | frame* | index | index_offset:u64 | "BPC1"
//! frame  = len:u64 | bp-lite blob (self-describing, checksummed)
//! index  = count:u64 | (step:u64, offset:u64, len:u64)*
//! ```

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, Bytes};

use crate::bp::{self, BpStep};
use crate::group::{Group, StepData};
use crate::method::Method;

const MAGIC: &[u8; 4] = b"BPC1";

/// Errors reading a container file.
#[derive(Debug)]
pub enum BpFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a BP container (bad magic, truncated footer, bad index).
    Malformed(&'static str),
    /// A step blob failed to decode.
    Step(bp::BpError),
    /// The requested step is not present.
    NoSuchStep(u64),
}

impl std::fmt::Display for BpFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BpFileError::Io(e) => write!(f, "i/o error: {e}"),
            BpFileError::Malformed(what) => write!(f, "malformed container: {what}"),
            BpFileError::Step(e) => write!(f, "bad step blob: {e}"),
            BpFileError::NoSuchStep(s) => write!(f, "step {s} not in file"),
        }
    }
}

impl std::error::Error for BpFileError {}

impl From<std::io::Error> for BpFileError {
    fn from(e: std::io::Error) -> Self {
        BpFileError::Io(e)
    }
}

/// Appending writer for a container file.
pub struct BpFileWriter {
    file: File,
    path: PathBuf,
    index: Vec<(u64, u64, u64)>, // (step, offset, len)
    offset: u64,
}

impl BpFileWriter {
    /// Creates (truncates) a container file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<BpFileWriter> {
        let mut file = File::create(path.as_ref())?;
        file.write_all(MAGIC)?;
        Ok(BpFileWriter {
            file,
            path: path.as_ref().to_path_buf(),
            index: Vec::new(),
            offset: 4,
        })
    }

    /// The path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one step.
    pub fn append(&mut self, group_name: &str, step: &StepData) -> std::io::Result<()> {
        let blob = bp::encode(group_name, step);
        self.file.write_all(&(blob.len() as u64).to_le_bytes())?;
        self.file.write_all(&blob)?;
        self.index.push((step.step(), self.offset + 8, blob.len() as u64));
        self.offset += 8 + blob.len() as u64;
        Ok(())
    }

    /// Writes the footer index and closes the file.
    pub fn finalize(mut self) -> std::io::Result<PathBuf> {
        let index_offset = self.offset;
        self.file.write_all(&(self.index.len() as u64).to_le_bytes())?;
        for &(step, offset, len) in &self.index {
            self.file.write_all(&step.to_le_bytes())?;
            self.file.write_all(&offset.to_le_bytes())?;
            self.file.write_all(&len.to_le_bytes())?;
        }
        self.file.write_all(&index_offset.to_le_bytes())?;
        self.file.write_all(MAGIC)?;
        self.file.flush()?;
        Ok(self.path)
    }
}

/// Random-access reader over a finalized container file.
pub struct BpFileReader {
    file: File,
    index: Vec<(u64, u64, u64)>,
}

impl BpFileReader {
    /// Opens and validates a container file.
    pub fn open(path: impl AsRef<Path>) -> Result<BpFileReader, BpFileError> {
        let mut file = File::open(path)?;
        let total = file.seek(SeekFrom::End(0))?;
        if total < 4 + 8 + 8 + 4 {
            return Err(BpFileError::Malformed("file too short"));
        }

        let mut head = [0u8; 4];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head != MAGIC {
            return Err(BpFileError::Malformed("bad leading magic"));
        }

        let mut tail = [0u8; 12];
        file.seek(SeekFrom::End(-12))?;
        file.read_exact(&mut tail)?;
        if &tail[8..] != MAGIC {
            return Err(BpFileError::Malformed("bad trailing magic"));
        }
        let index_offset = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
        if index_offset >= total {
            return Err(BpFileError::Malformed("index offset out of range"));
        }

        file.seek(SeekFrom::Start(index_offset))?;
        let mut count_buf = [0u8; 8];
        file.read_exact(&mut count_buf)?;
        let count = u64::from_le_bytes(count_buf);
        let index_bytes = count
            .checked_mul(24)
            .ok_or(BpFileError::Malformed("index count overflow"))?;
        if index_offset + 8 + index_bytes + 12 != total {
            return Err(BpFileError::Malformed("index size mismatch"));
        }
        let mut raw = vec![0u8; index_bytes as usize];
        file.read_exact(&mut raw)?;
        let mut buf = Bytes::from(raw);
        let mut index = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let step = buf.get_u64_le();
            let offset = buf.get_u64_le();
            let len = buf.get_u64_le();
            if offset + len > total {
                return Err(BpFileError::Malformed("frame out of range"));
            }
            index.push((step, offset, len));
        }
        Ok(BpFileReader { file, index })
    }

    /// Number of steps stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the file stores no steps.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The stored step indices, in write order.
    pub fn steps(&self) -> impl Iterator<Item = u64> + '_ {
        self.index.iter().map(|&(s, _, _)| s)
    }

    /// Reads the `ix`-th stored step (by position, not step index).
    pub fn read_at(&mut self, ix: usize) -> Result<BpStep, BpFileError> {
        let &(_, offset, len) =
            self.index.get(ix).ok_or(BpFileError::Malformed("position out of range"))?;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut raw = vec![0u8; len as usize];
        self.file.read_exact(&mut raw)?;
        bp::decode(Bytes::from(raw)).map_err(BpFileError::Step)
    }

    /// Reads the stored step with output-step index `step`.
    pub fn read_step(&mut self, step: u64) -> Result<BpStep, BpFileError> {
        let ix = self
            .index
            .iter()
            .position(|&(s, _, _)| s == step)
            .ok_or(BpFileError::NoSuchStep(step))?;
        self.read_at(ix)
    }
}

/// A [`Method`] writing all steps of a group into one container file,
/// finalized on close.
pub struct BpFileMethod {
    writer: Option<BpFileWriter>,
}

impl BpFileMethod {
    /// Creates the method targeting `path`.
    pub fn new(path: impl AsRef<Path>) -> std::io::Result<BpFileMethod> {
        Ok(BpFileMethod { writer: Some(BpFileWriter::create(path)?) })
    }
}

impl Method for BpFileMethod {
    fn write_step(&mut self, group: &Group, step: &StepData) -> std::io::Result<u64> {
        let w = self
            .writer
            .as_mut()
            .ok_or_else(|| std::io::Error::other("container already finalized"))?;
        w.append(group.name(), step)?;
        Ok(step.payload_bytes())
    }

    fn close(&mut self) -> std::io::Result<()> {
        if let Some(w) = self.writer.take() {
            w.finalize()?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "BP"
    }
}

impl Drop for BpFileMethod {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Dims, Value};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bpfile-{}-{}", std::process::id(), name))
    }

    fn sample_step(ix: u64) -> (Group, StepData) {
        let mut g = Group::new("g");
        g.define_var("x", DataType::F64);
        let mut s = StepData::new(ix);
        let data = vec![ix as f64; 4];
        s.write(&g, "x", Value::from_f64(&data, Dims::local1d(4)).unwrap()).unwrap();
        (g, s)
    }

    #[test]
    fn write_then_random_access() {
        let path = tmp("roundtrip");
        let mut w = BpFileWriter::create(&path).unwrap();
        for ix in [3u64, 7, 11] {
            let (_, s) = sample_step(ix);
            w.append("g", &s).unwrap();
        }
        w.finalize().unwrap();

        let mut r = BpFileReader::open(&path).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.steps().collect::<Vec<_>>(), vec![3, 7, 11]);
        let s7 = r.read_step(7).unwrap();
        assert_eq!(s7.data.value("x").unwrap().as_f64().unwrap(), &[7.0; 4]);
        let s11 = r.read_at(2).unwrap();
        assert_eq!(s11.data.step(), 11);
        assert!(matches!(r.read_step(99), Err(BpFileError::NoSuchStep(99))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn method_finalizes_on_close() {
        let path = tmp("method");
        let (g, s) = sample_step(0);
        {
            let mut m = BpFileMethod::new(&path).unwrap();
            m.write_step(&g, &s).unwrap();
            m.close().unwrap();
        }
        let r = BpFileReader::open(&path).unwrap();
        assert_eq!(r.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("trunc");
        let mut w = BpFileWriter::create(&path).unwrap();
        let (_, s) = sample_step(0);
        w.append("g", &s).unwrap();
        w.finalize().unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [3usize, 10, full.len() - 5] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(BpFileReader::open(&path).is_err(), "cut at {cut} must fail");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_container_is_valid() {
        let path = tmp("empty");
        BpFileWriter::create(&path).unwrap().finalize().unwrap();
        let r = BpFileReader::open(&path).unwrap();
        assert!(r.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_step_detected_at_read() {
        let path = tmp("corrupt");
        let mut w = BpFileWriter::create(&path).unwrap();
        let (_, s) = sample_step(0);
        w.append("g", &s).unwrap();
        w.finalize().unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the frame payload.
        let mid = 40;
        raw[mid] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let mut r = BpFileReader::open(&path).unwrap();
        assert!(matches!(r.read_at(0), Err(BpFileError::Step(_))));
        std::fs::remove_file(&path).ok();
    }
}
