//! `bpls` — list the contents of BP-lite files (the ADIOS inspection tool).
//!
//! ```text
//! cargo run -p adios --bin bpls -- <file.bp> [<file.bp> ...]
//! ```
//!
//! Works on both single-step `.bp` blobs (written by `FileMethod`) and
//! multi-step container files (written by `BpFileMethod`).

use std::collections::BTreeMap;

use adios::bpfile::BpFileReader;
use adios::{AttrValue, StepData};

fn render_attr(attr: &AttrValue) -> String {
    match attr {
        AttrValue::Str(s) => format!("\"{s}\""),
        other => other.to_string(),
    }
}

/// Distinct values seen for each attribute key, with the steps carrying
/// them. Surfaces the provenance labels of a multi-step container without
/// reading every step entry.
type AttrTable = BTreeMap<String, BTreeMap<String, Vec<u64>>>;

fn collect_attrs(table: &mut AttrTable, data: &StepData) {
    for (key, attr) in data.attrs() {
        table
            .entry(key.to_string())
            .or_default()
            .entry(render_attr(attr))
            .or_default()
            .push(data.step());
    }
}

fn print_attr_table(table: &AttrTable) {
    if table.is_empty() {
        return;
    }
    println!("  attribute table:");
    let width = table.keys().map(String::len).max().unwrap_or(0);
    for (key, values) in table {
        if values.len() == 1 {
            let (value, steps) = values.iter().next().expect("non-empty by construction");
            println!("    {key:<width$}  = {value}  ({} step(s))", steps.len());
        } else {
            let total: usize = values.values().map(Vec::len).sum();
            println!("    {key:<width$}  : {} distinct values over {total} step(s)", values.len());
        }
    }
}

fn describe_step(indent: &str, group: &str, data: &StepData) {
    println!("{indent}step {:>6}  group '{group}'", data.step());
    for (name, value) in data.values() {
        let dims = value.dims();
        let shape = if dims.local.is_empty() {
            "scalar".to_string()
        } else if dims.global.is_empty() {
            format!("local[{}]", dims.local.iter().map(u64::to_string).collect::<Vec<_>>().join("x"))
        } else {
            format!(
                "global[{}] offset[{}]",
                dims.global.iter().map(u64::to_string).collect::<Vec<_>>().join("x"),
                dims.offset.iter().map(u64::to_string).collect::<Vec<_>>().join("x")
            )
        };
        println!(
            "{indent}  var  {:<20} {:<4} {:<28} {} bytes",
            name,
            value.dtype().to_string(),
            shape,
            value.byte_len()
        );
    }
    for (key, attr) in data.attrs() {
        let shown = match attr {
            AttrValue::Str(s) => format!("\"{s}\""),
            other => other.to_string(),
        };
        println!("{indent}  attr {key:<20} = {shown}");
    }
}

fn list_file(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("{path}:");
    // Try the container format first, then a single-step blob.
    match BpFileReader::open(path) {
        Ok(mut reader) => {
            println!("  BP container, {} step(s)", reader.len());
            let mut table = AttrTable::new();
            for ix in 0..reader.len() {
                let step = reader.read_at(ix)?;
                describe_step("  ", &step.group, &step.data);
                collect_attrs(&mut table, &step.data);
            }
            print_attr_table(&table);
            Ok(())
        }
        Err(_) => {
            let raw = std::fs::read(path)?;
            let step = adios::bp::decode(bytes::Bytes::from(raw))?;
            println!("  single-step BP blob");
            describe_step("  ", &step.group, &step.data);
            let mut table = AttrTable::new();
            collect_attrs(&mut table, &step.data);
            print_attr_table(&table);
            Ok(())
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: bpls <file.bp> [<file.bp> ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        if let Err(e) = list_file(path) {
            eprintln!("bpls: {path}: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
