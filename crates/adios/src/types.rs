//! Scalar types, array values, and dimension metadata.

use bytes::Bytes;
use std::fmt;

/// Element type of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    /// Unsigned 8-bit integer.
    U8,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl DataType {
    /// Size of one element in bytes.
    pub const fn size(self) -> usize {
        match self {
            DataType::U8 => 1,
            DataType::I32 | DataType::F32 => 4,
            DataType::I64 | DataType::F64 => 8,
        }
    }

    /// Stable wire tag for the BP-lite codec.
    pub(crate) const fn tag(self) -> u8 {
        match self {
            DataType::U8 => 0,
            DataType::I32 => 1,
            DataType::I64 => 2,
            DataType::F32 => 3,
            DataType::F64 => 4,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<DataType> {
        Some(match tag {
            0 => DataType::U8,
            1 => DataType::I32,
            2 => DataType::I64,
            3 => DataType::F32,
            4 => DataType::F64,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::U8 => "u8",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Dimension metadata for a distributed array, following ADIOS's
/// local/global/offset convention: each writer holds a `local` block placed
/// at `offset` within a `global` array.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Dims {
    /// Extent of this writer's block, per dimension.
    pub local: Vec<u64>,
    /// Extent of the global array, per dimension (empty for local-only vars).
    pub global: Vec<u64>,
    /// Placement of the local block in the global array.
    pub offset: Vec<u64>,
}

impl Dims {
    /// A scalar (rank-0) variable.
    pub fn scalar() -> Dims {
        Dims::default()
    }

    /// A purely local 1-D array of `n` elements.
    pub fn local1d(n: u64) -> Dims {
        Dims { local: vec![n], global: vec![], offset: vec![] }
    }

    /// A 1-D block of `n` elements at `offset` within a global array of
    /// `global` elements.
    pub fn global1d(n: u64, global: u64, offset: u64) -> Dims {
        Dims { local: vec![n], global: vec![global], offset: vec![offset] }
    }

    /// Number of elements in the local block (1 for scalars).
    pub fn local_elems(&self) -> u64 {
        self.local.iter().product()
    }
}

/// A typed, immutable array value (the payload bytes are shared, so passing
/// values between pipeline stages never copies the data).
#[derive(Clone, Debug, PartialEq)]
pub struct Value {
    dtype: DataType,
    dims: Dims,
    data: Bytes,
}

/// Errors constructing or viewing [`Value`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueError {
    /// Byte length is not `elems * dtype.size()`.
    LengthMismatch {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
    /// Requested a typed view with the wrong element type.
    TypeMismatch {
        /// The value's actual type.
        actual: DataType,
    },
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::LengthMismatch { expected, actual } => {
                write!(f, "payload is {actual} bytes, dims require {expected}")
            }
            ValueError::TypeMismatch { actual } => write!(f, "value holds {actual} elements"),
        }
    }
}

impl std::error::Error for ValueError {}

macro_rules! value_ctor {
    ($ctor:ident, $view:ident, $ty:ty, $dt:expr) => {
        /// Builds a value from a typed slice (copies once into shared bytes).
        pub fn $ctor(data: &[$ty], dims: Dims) -> Result<Value, ValueError> {
            let bytes: &[u8] = unsafe {
                std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data))
            };
            Value::from_bytes($dt, dims, Bytes::copy_from_slice(bytes))
        }

        /// Borrows the payload as a typed slice.
        pub fn $view(&self) -> Result<&[$ty], ValueError> {
            if self.dtype != $dt {
                return Err(ValueError::TypeMismatch { actual: self.dtype });
            }
            // Bytes does not guarantee alignment; element types here are
            // byte-serializable plain-old-data, and in practice allocations
            // are 8-aligned. Fall back to a checked cast.
            let ptr = self.data.as_ptr();
            assert_eq!(
                ptr.align_offset(std::mem::align_of::<$ty>()),
                0,
                "payload misaligned for {}",
                stringify!($ty)
            );
            Ok(unsafe {
                std::slice::from_raw_parts(
                    ptr as *const $ty,
                    self.data.len() / std::mem::size_of::<$ty>(),
                )
            })
        }
    };
}

/// Copies `src` into a fresh 8-aligned allocation exposed as [`Bytes`].
/// Needed because codec decoding yields views into the middle of a blob,
/// which are not aligned for multi-byte element types.
fn aligned_bytes(src: &[u8]) -> Bytes {
    struct Owner(Vec<u64>, usize);
    impl AsRef<[u8]> for Owner {
        fn as_ref(&self) -> &[u8] {
            // SAFETY: the Vec owns at least `self.1` initialized bytes.
            unsafe { std::slice::from_raw_parts(self.0.as_ptr() as *const u8, self.1) }
        }
    }
    let words = src.len().div_ceil(8);
    let mut v: Vec<u64> = vec![0; words];
    // SAFETY: the Vec's buffer holds `words * 8 >= src.len()` bytes.
    let dst = unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut u8, src.len()) };
    dst.copy_from_slice(src);
    Bytes::from_owner(Owner(v, src.len()))
}

impl Value {
    /// Builds a value directly from raw bytes, validating the length against
    /// the dimensions. Misaligned payloads (e.g. views into a decoded blob)
    /// are copied into an aligned allocation so typed views stay zero-cost.
    pub fn from_bytes(dtype: DataType, dims: Dims, data: Bytes) -> Result<Value, ValueError> {
        let expected = dims.local_elems() as usize * dtype.size();
        if expected != data.len() {
            return Err(ValueError::LengthMismatch { expected, actual: data.len() });
        }
        let data = if data.as_ptr().align_offset(dtype.size().min(8)) == 0 {
            data
        } else {
            aligned_bytes(&data)
        };
        Ok(Value { dtype, dims, data })
    }

    value_ctor!(from_u8, as_u8, u8, DataType::U8);
    value_ctor!(from_i32, as_i32, i32, DataType::I32);
    value_ctor!(from_i64, as_i64, i64, DataType::I64);
    value_ctor!(from_f32, as_f32, f32, DataType::F32);
    value_ctor!(from_f64, as_f64, f64, DataType::F64);

    /// A scalar f64 value.
    pub fn scalar_f64(v: f64) -> Value {
        Value::from_f64(&[v], Dims::scalar()).expect("scalar length always matches")
    }

    /// A scalar i64 value.
    pub fn scalar_i64(v: i64) -> Value {
        Value::from_i64(&[v], Dims::scalar()).expect("scalar length always matches")
    }

    /// Element type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Dimension metadata.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Raw payload (shared, zero-copy).
    pub fn bytes(&self) -> &Bytes {
        &self.data
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_typed_views() {
        let v = Value::from_f64(&[1.0, 2.0, 3.0], Dims::local1d(3)).unwrap();
        assert_eq!(v.as_f64().unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(v.dtype(), DataType::F64);
        assert_eq!(v.byte_len(), 24);
        assert!(matches!(v.as_i32(), Err(ValueError::TypeMismatch { .. })));
    }

    #[test]
    fn length_validation() {
        let err = Value::from_bytes(DataType::I32, Dims::local1d(3), Bytes::from_static(&[0; 8]))
            .unwrap_err();
        assert_eq!(err, ValueError::LengthMismatch { expected: 12, actual: 8 });
    }

    #[test]
    fn scalar_helpers() {
        assert_eq!(Value::scalar_f64(2.5).as_f64().unwrap(), &[2.5]);
        assert_eq!(Value::scalar_i64(-7).as_i64().unwrap(), &[-7]);
    }

    #[test]
    fn global_dims_describe_placement() {
        let d = Dims::global1d(100, 1000, 300);
        assert_eq!(d.local_elems(), 100);
        assert_eq!(d.global, vec![1000]);
        assert_eq!(d.offset, vec![300]);
    }

    #[test]
    fn dtype_tags_round_trip() {
        for dt in [DataType::U8, DataType::I32, DataType::I64, DataType::F32, DataType::F64] {
            assert_eq!(DataType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DataType::from_tag(99), None);
    }

    #[test]
    fn value_clone_shares_bytes() {
        let v = Value::from_u8(&[1, 2, 3, 4], Dims::local1d(4)).unwrap();
        let w = v.clone();
        assert_eq!(v.bytes().as_ptr(), w.bytes().as_ptr());
    }
}
