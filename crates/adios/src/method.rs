//! Transport methods: where an opened group's steps go.
//!
//! ADIOS's defining feature is that an application writes through one API
//! and the *method* bound to the group decides whether bytes go to a file, a
//! staging transport, or nowhere. Container management exploits exactly this
//! indirection: when a downstream container is taken offline, the upstream
//! component's output method is switched from staging to file (with
//! provenance attributes) without touching application code.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::bp;
use crate::group::{Group, StepData};

/// A destination for output steps.
pub trait Method: Send {
    /// Delivers one output step. Returns the number of bytes accepted.
    fn write_step(&mut self, group: &Group, step: &StepData) -> std::io::Result<u64>;

    /// Flushes and closes the destination.
    fn close(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Short name of the method, for diagnostics and provenance.
    fn name(&self) -> &'static str;
}

/// Discards all data (used to measure pure API overhead).
#[derive(Debug, Default)]
pub struct NullMethod {
    steps: u64,
}

impl NullMethod {
    /// Creates a new discarding method.
    pub fn new() -> Self {
        NullMethod::default()
    }

    /// Steps accepted so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl Method for NullMethod {
    fn write_step(&mut self, _group: &Group, step: &StepData) -> std::io::Result<u64> {
        self.steps += 1;
        Ok(step.payload_bytes())
    }

    fn name(&self) -> &'static str {
        "NULL"
    }
}

/// Writes each step as a BP-lite file `<dir>/<group>.<step>.bp`.
#[derive(Debug)]
pub struct FileMethod {
    dir: PathBuf,
    written: Vec<PathBuf>,
}

impl FileMethod {
    /// Creates the method, ensuring `dir` exists.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<FileMethod> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(FileMethod { dir: dir.as_ref().to_path_buf(), written: Vec::new() })
    }

    /// Paths of the files written so far, in order.
    pub fn written(&self) -> &[PathBuf] {
        &self.written
    }

    /// Reads a step file back.
    pub fn read_step(path: impl AsRef<Path>) -> std::io::Result<bp::BpStep> {
        let data = fs::read(path)?;
        bp::decode(bytes::Bytes::from(data))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl Method for FileMethod {
    fn write_step(&mut self, group: &Group, step: &StepData) -> std::io::Result<u64> {
        let blob = bp::encode(group.name(), step);
        let path = self.dir.join(format!("{}.{:06}.bp", group.name(), step.step()));
        let mut f = fs::File::create(&path)?;
        f.write_all(&blob)?;
        self.written.push(path);
        Ok(blob.len() as u64)
    }

    fn name(&self) -> &'static str {
        "POSIX"
    }
}

/// Keeps encoded steps in memory behind a shared handle — a stand-in for a
/// staging transport endpoint in threaded tests, and the reader side for
/// inspection.
#[derive(Clone, Debug, Default)]
pub struct MemSink {
    steps: Arc<Mutex<Vec<bytes::Bytes>>>,
}

impl MemSink {
    /// Creates an empty sink.
    pub fn new() -> MemSink {
        MemSink::default()
    }

    /// Number of steps captured.
    pub fn len(&self) -> usize {
        self.steps.lock().unwrap().len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the captured step at `ix`.
    pub fn decode(&self, ix: usize) -> Option<bp::BpStep> {
        let blob = self.steps.lock().unwrap().get(ix)?.clone();
        bp::decode(blob).ok()
    }
}

/// Writes encoded steps into a [`MemSink`].
#[derive(Debug)]
pub struct MemMethod {
    sink: MemSink,
}

impl MemMethod {
    /// Creates a method feeding `sink`.
    pub fn new(sink: MemSink) -> MemMethod {
        MemMethod { sink }
    }
}

impl Method for MemMethod {
    fn write_step(&mut self, group: &Group, step: &StepData) -> std::io::Result<u64> {
        let blob = bp::encode(group.name(), step);
        let n = blob.len() as u64;
        self.sink.steps.lock().unwrap().push(blob);
        Ok(n)
    }

    fn name(&self) -> &'static str {
        "MEM"
    }
}

/// An open output stream: a group bound to a swappable method.
///
/// The method can be replaced mid-run (the container runtime's
/// offline-switch); the swap takes effect at the next step boundary, exactly
/// as ADIOS method selection does.
pub struct Output {
    group: Group,
    method: Box<dyn Method>,
    steps_written: u64,
    bytes_written: u64,
}

impl Output {
    /// Opens an output for `group` using `method`.
    pub fn open(group: Group, method: Box<dyn Method>) -> Output {
        Output { group, method, steps_written: 0, bytes_written: 0 }
    }

    /// The bound group schema.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The current method's name.
    pub fn method_name(&self) -> &'static str {
        self.method.name()
    }

    /// Writes one step through the current method.
    pub fn write_step(&mut self, step: &StepData) -> std::io::Result<u64> {
        let n = self.method.write_step(&self.group, step)?;
        self.steps_written += 1;
        self.bytes_written += n;
        Ok(n)
    }

    /// Swaps the transport method, closing the old one. Returns the old
    /// method's name.
    pub fn switch_method(&mut self, mut method: Box<dyn Method>) -> std::io::Result<&'static str> {
        std::mem::swap(&mut self.method, &mut method);
        let mut old = method;
        old.close()?;
        Ok(old.name())
    }

    /// Steps written across all methods.
    pub fn steps_written(&self) -> u64 {
        self.steps_written
    }

    /// Bytes accepted across all methods.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Closes the output.
    pub fn close(mut self) -> std::io::Result<()> {
        self.method.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Dims, Value};

    fn group_and_step() -> (Group, StepData) {
        let mut g = Group::new("g");
        g.define_var("x", DataType::F64);
        let mut s = StepData::new(5);
        s.write(&g, "x", Value::from_f64(&[1.0, 2.0, 3.0], Dims::local1d(3)).unwrap()).unwrap();
        (g, s)
    }

    #[test]
    fn null_method_counts_steps() {
        let (g, s) = group_and_step();
        let mut m = NullMethod::new();
        assert_eq!(m.write_step(&g, &s).unwrap(), 24);
        assert_eq!(m.steps(), 1);
        assert_eq!(m.name(), "NULL");
    }

    #[test]
    fn file_method_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("adios-test-{}", std::process::id()));
        let (g, s) = group_and_step();
        let mut m = FileMethod::new(&dir).unwrap();
        m.write_step(&g, &s).unwrap();
        assert_eq!(m.written().len(), 1);
        let back = FileMethod::read_step(&m.written()[0]).unwrap();
        assert_eq!(back.group, "g");
        assert_eq!(back.data.value("x").unwrap().as_f64().unwrap(), &[1.0, 2.0, 3.0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_method_captures_steps() {
        let (g, s) = group_and_step();
        let sink = MemSink::new();
        let mut m = MemMethod::new(sink.clone());
        m.write_step(&g, &s).unwrap();
        assert_eq!(sink.len(), 1);
        let back = sink.decode(0).unwrap();
        assert_eq!(back.data.step(), 5);
    }

    #[test]
    fn output_switches_method_midstream() {
        let (g, s) = group_and_step();
        let sink = MemSink::new();
        let mut out = Output::open(g, Box::new(MemMethod::new(sink.clone())));
        out.write_step(&s).unwrap();
        assert_eq!(out.method_name(), "MEM");
        let old = out.switch_method(Box::new(NullMethod::new())).unwrap();
        assert_eq!(old, "MEM");
        out.write_step(&s).unwrap();
        assert_eq!(out.method_name(), "NULL");
        // The sink saw only the first step.
        assert_eq!(sink.len(), 1);
        assert_eq!(out.steps_written(), 2);
        out.close().unwrap();
    }
}
