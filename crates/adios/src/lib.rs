//! # adios — componentized I/O API with swappable transports
//!
//! A reimplementation of the slice of ADIOS the paper depends on: I/O
//! *groups* declare variable schemas once ([`Group`]); applications write
//! [`StepData`] records through an [`Output`] bound to a transport
//! [`Method`] (file, in-memory staging endpoint, or null); the *attribute
//! system* carries the data-processing provenance the container runtime
//! stamps on steps when analytics are moved offline; and the BP-lite codec
//! ([`bp`]) gives a self-describing, checksummed on-disk format.
//!
//! The crucial property — the one container management exploits — is that
//! the method bound to an output can be swapped mid-run without touching
//! the writer: [`Output::switch_method`].
//!
//! ## Example
//! ```
//! use adios::{AttrValue, DataType, Dims, Group, Output, MemMethod, MemSink, StepData, Value};
//!
//! let mut group = Group::new("atoms");
//! group.define_var("x", DataType::F64);
//!
//! let sink = MemSink::new();
//! let mut out = Output::open(group.clone(), Box::new(MemMethod::new(sink.clone())));
//!
//! let mut step = StepData::new(0);
//! step.write(&group, "x", Value::from_f64(&[0.0, 0.5], Dims::local1d(2)).unwrap()).unwrap();
//! step.set_attr("processed_by", AttrValue::Str("helper".into()));
//! out.write_step(&step).unwrap();
//!
//! let decoded = sink.decode(0).unwrap();
//! assert_eq!(decoded.data.value("x").unwrap().as_f64().unwrap(), &[0.0, 0.5]);
//! ```

#![warn(missing_docs)]

pub mod bp;
pub mod bpfile;
mod group;
mod method;
mod types;

pub use bpfile::{BpFileMethod, BpFileReader, BpFileWriter};
pub use group::{AttrValue, Group, StepData, VarDecl, WriteError};
pub use method::{FileMethod, MemMethod, MemSink, Method, NullMethod, Output};
pub use types::{DataType, Dims, Value, ValueError};
