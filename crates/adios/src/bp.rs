//! BP-lite: a self-describing binary codec for one output step.
//!
//! A miniature of the ADIOS BP format: magic + version header, group name,
//! step index, step attributes, then each variable with its name, element
//! type, local/global/offset dimensions, and payload, and finally an
//! additive checksum so truncation and corruption are detectable. All
//! integers are little-endian.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::group::{AttrValue, StepData};
use crate::types::{DataType, Dims, Value};

/// Magic bytes opening every BP-lite blob.
pub const MAGIC: &[u8; 4] = b"BPL1";

/// Decode failures.
#[derive(Clone, Debug, PartialEq)]
pub enum BpError {
    /// Blob does not start with [`MAGIC`].
    BadMagic,
    /// Blob ended before a field completed.
    Truncated,
    /// Unknown data-type tag.
    BadType(u8),
    /// Unknown attribute tag.
    BadAttr(u8),
    /// Variable payload length disagrees with its dimensions.
    BadValue(String),
    /// Checksum mismatch (corruption).
    Checksum {
        /// Checksum stored in the blob.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// A length or count field exceeds the remaining blob.
    BadLength,
    /// Name or attribute key is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for BpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BpError::BadMagic => write!(f, "not a BP-lite blob"),
            BpError::Truncated => write!(f, "blob truncated"),
            BpError::BadType(t) => write!(f, "unknown dtype tag {t}"),
            BpError::BadAttr(t) => write!(f, "unknown attribute tag {t}"),
            BpError::BadValue(v) => write!(f, "inconsistent payload for variable '{v}'"),
            BpError::Checksum { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            BpError::BadLength => write!(f, "length field exceeds blob"),
            BpError::BadUtf8 => write!(f, "invalid utf-8 in name"),
        }
    }
}

impl std::error::Error for BpError {}

/// A decoded BP-lite blob.
#[derive(Clone, Debug)]
pub struct BpStep {
    /// Name of the group that wrote the step.
    pub group: String,
    /// The step's variables and attributes.
    pub data: StepData,
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_attr(buf: &mut BytesMut, key: &str, value: &AttrValue) {
    put_str(buf, key);
    match value {
        AttrValue::Str(s) => {
            buf.put_u8(0);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        AttrValue::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        AttrValue::Float(x) => {
            buf.put_u8(2);
            buf.put_f64_le(*x);
        }
    }
}

fn put_dims(buf: &mut BytesMut, dims: &[u64]) {
    buf.put_u8(dims.len() as u8);
    for &d in dims {
        buf.put_u64_le(d);
    }
}

/// Fletcher-style additive checksum (fast, catches truncation/bit rot well
/// enough for a test substrate).
fn checksum(body: &[u8]) -> u64 {
    let mut a: u64 = 1;
    let mut b: u64 = 0;
    for &byte in body {
        a = a.wrapping_add(byte as u64);
        b = b.wrapping_add(a);
    }
    (b << 32) | (a & 0xffff_ffff)
}

/// Encodes one step into a self-describing blob.
pub fn encode(group_name: &str, step: &StepData) -> Bytes {
    let mut body = BytesMut::with_capacity(1024 + step.payload_bytes() as usize);
    put_str(&mut body, group_name);
    body.put_u64_le(step.step());

    let attrs: Vec<_> = step.attrs().collect();
    body.put_u32_le(attrs.len() as u32);
    for (k, v) in attrs {
        put_attr(&mut body, k, v);
    }

    let values: Vec<_> = step.values().collect();
    body.put_u32_le(values.len() as u32);
    for (name, value) in values {
        put_str(&mut body, name);
        body.put_u8(value.dtype().tag());
        put_dims(&mut body, &value.dims().local);
        put_dims(&mut body, &value.dims().global);
        put_dims(&mut body, &value.dims().offset);
        body.put_u64_le(value.byte_len() as u64);
        body.put_slice(value.bytes());
    }

    let mut out = BytesMut::with_capacity(body.len() + 12);
    out.put_slice(MAGIC);
    let sum = checksum(&body);
    out.put_u64_le(sum);
    out.extend_from_slice(&body);
    out.freeze()
}

struct Cursor {
    buf: Bytes,
}

impl Cursor {
    fn need(&self, n: usize) -> Result<(), BpError> {
        if self.buf.remaining() < n {
            Err(BpError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, BpError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, BpError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, BpError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, BpError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn i64(&mut self) -> Result<i64, BpError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    fn f64(&mut self) -> Result<f64, BpError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn bytes(&mut self, n: usize) -> Result<Bytes, BpError> {
        self.need(n)?;
        Ok(self.buf.split_to(n))
    }

    fn string(&mut self, n: usize) -> Result<String, BpError> {
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| BpError::BadUtf8)
    }

    fn short_str(&mut self) -> Result<String, BpError> {
        let n = self.u16()? as usize;
        self.string(n)
    }

    fn dims(&mut self) -> Result<Vec<u64>, BpError> {
        let rank = self.u8()? as usize;
        if rank > 8 {
            return Err(BpError::BadLength);
        }
        (0..rank).map(|_| self.u64()).collect()
    }

    fn attr(&mut self) -> Result<(String, AttrValue), BpError> {
        let key = self.short_str()?;
        let tag = self.u8()?;
        let value = match tag {
            0 => {
                let n = self.u32()? as usize;
                AttrValue::Str(self.string(n)?)
            }
            1 => AttrValue::Int(self.i64()?),
            2 => AttrValue::Float(self.f64()?),
            t => return Err(BpError::BadAttr(t)),
        };
        Ok((key, value))
    }
}

/// Decodes a blob produced by [`encode`], verifying magic and checksum.
pub fn decode(blob: Bytes) -> Result<BpStep, BpError> {
    let mut c = Cursor { buf: blob };
    let magic = c.bytes(4)?;
    if magic.as_ref() != MAGIC {
        return Err(BpError::BadMagic);
    }
    let stored = c.u64()?;
    let computed = checksum(&c.buf);
    if stored != computed {
        return Err(BpError::Checksum { stored, computed });
    }

    let group = c.short_str()?;
    let step_ix = c.u64()?;
    let mut data = StepData::new(step_ix);

    let attr_count = c.u32()?;
    for _ in 0..attr_count {
        let (k, v) = c.attr()?;
        data.set_attr(k, v);
    }

    let var_count = c.u32()?;
    for _ in 0..var_count {
        let name = c.short_str()?;
        let tag = c.u8()?;
        let dtype = DataType::from_tag(tag).ok_or(BpError::BadType(tag))?;
        let local = c.dims()?;
        let global = c.dims()?;
        let offset = c.dims()?;
        let len = c.u64()? as usize;
        let payload = c.bytes(len)?;
        let value = Value::from_bytes(dtype, Dims { local, global, offset }, payload)
            .map_err(|_| BpError::BadValue(name.clone()))?;
        data.write_unchecked(name, value);
    }

    Ok(BpStep { group, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::Group;

    fn sample_step() -> StepData {
        let mut g = Group::new("atoms");
        g.define_var("x", DataType::F64).define_var("type", DataType::I32);
        let mut s = StepData::new(17);
        s.write(&g, "x", Value::from_f64(&[1.5, -2.5], Dims::global1d(2, 10, 4)).unwrap())
            .unwrap();
        s.write(&g, "type", Value::from_i32(&[1, 2], Dims::local1d(2)).unwrap()).unwrap();
        s.set_attr("processed_by", AttrValue::Str("helper".into()));
        s.set_attr("epoch", AttrValue::Int(99));
        s.set_attr("temp", AttrValue::Float(0.5));
        s
    }

    #[test]
    fn round_trip_preserves_everything() {
        let step = sample_step();
        let blob = encode("atoms", &step);
        let out = decode(blob).unwrap();
        assert_eq!(out.group, "atoms");
        assert_eq!(out.data.step(), 17);
        assert_eq!(out.data.value("x").unwrap().as_f64().unwrap(), &[1.5, -2.5]);
        assert_eq!(out.data.value("x").unwrap().dims().offset, vec![4]);
        assert_eq!(out.data.value("type").unwrap().as_i32().unwrap(), &[1, 2]);
        assert_eq!(out.data.attr("processed_by"), Some(&AttrValue::Str("helper".into())));
        assert_eq!(out.data.attr("epoch"), Some(&AttrValue::Int(99)));
        assert_eq!(out.data.attr("temp"), Some(&AttrValue::Float(0.5)));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = encode("g", &StepData::new(0)).to_vec();
        blob[0] = b'X';
        match decode(Bytes::from(blob)) {
            Err(BpError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut blob = encode("atoms", &sample_step()).to_vec();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xff;
        match decode(Bytes::from(blob)) {
            Err(BpError::Checksum { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let blob = encode("atoms", &sample_step());
        // Any truncation either breaks the checksum or truncates a field.
        for cut in [3usize, 11, 20, blob.len() - 1] {
            let out = decode(blob.slice(..cut));
            assert!(out.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn empty_step_round_trips() {
        let blob = encode("empty", &StepData::new(0));
        let out = decode(blob).unwrap();
        assert_eq!(out.group, "empty");
        assert_eq!(out.data.values().count(), 0);
        assert_eq!(out.data.attrs().count(), 0);
    }
}
