//! # simtel — deterministic telemetry for the staging pipeline
//!
//! The paper's §III-E argument ("flexible monitoring") is that a staging
//! pipeline is only manageable if you can *see inside it*: per-container
//! latency, queue depth, link utilization, and the management actions the
//! control plane took. This crate is the one instrumentation surface the
//! whole workspace reports through:
//!
//! * [`Telemetry`] — a cheap-to-clone handle that records **spans** (a
//!   named interval on a track), **markers** (instant events, e.g. a
//!   management action), **counters** (monotonic totals) and **gauges**
//!   (time series). All timestamps are [`SimTime`](sim_core::SimTime) —
//!   never wall clock — so traces are bit-reproducible.
//! * [`TelemetryConfig`] — per-[`Category`] enable flags. A disabled
//!   handle (the default) is a no-op: every record call returns before
//!   touching any state, so instrumented code pays nothing when tracing
//!   is off.
//! * [`export`] — two exporters over an immutable [`Snapshot`]:
//!   Perfetto/Chrome-trace JSON (one track per container/NIC, instant
//!   events for management actions) and CSV time series for the figure
//!   harness.
//!
//! ## Schedule neutrality
//!
//! Recording **never** schedules, cancels, or re-times a DES event;
//! a `Telemetry` handle has no access to the kernel at all. Enabling
//! telemetry therefore cannot change the event order — the schedule-
//! invariance hash of a run is bitwise identical with telemetry fully on
//! or fully off (asserted by the workspace determinism tests).
//!
//! ```
//! use sim_core::SimTime;
//! use simtel::{Category, Telemetry, TelemetryConfig};
//!
//! let tel = Telemetry::new(TelemetryConfig::all());
//! let (t0, t1) = (SimTime::from_micros(5), SimTime::from_micros(9));
//! tel.span(Category::Container, "Helper", "step", t0, t1);
//! tel.count(Category::Net, "net.messages", 1);
//! let snap = tel.snapshot();
//! assert_eq!(snap.spans.len(), 1);
//! let json = simtel::export::chrome_trace_json(&snap);
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

#![warn(missing_docs)]

mod config;
pub mod export;
mod telemetry;

pub use config::{Category, TelemetryConfig};
pub use telemetry::{Marker, Snapshot, Span, Telemetry};
