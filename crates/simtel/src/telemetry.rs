//! The [`Telemetry`] recording handle and its immutable [`Snapshot`].

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sim_core::SimTime;

use crate::config::{Category, TelemetryConfig};

/// A named interval on a track (one track per container or NIC).
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// The track (Perfetto thread) the span is drawn on.
    pub track: String,
    /// The span's name.
    pub name: String,
    /// Start of the interval, in virtual time.
    pub start: SimTime,
    /// End of the interval, in virtual time (`>= start`).
    pub end: SimTime,
}

/// An instant event on a track (e.g. a management action).
#[derive(Clone, Debug, PartialEq)]
pub struct Marker {
    /// The track the marker is drawn on.
    pub track: String,
    /// The marker's name.
    pub name: String,
    /// When the event happened, in virtual time.
    pub at: SimTime,
}

/// Everything a [`Telemetry`] handle recorded, in deterministic order.
///
/// Spans sort by `(start, track, name, end)`, markers by
/// `(at, track, name)`; counters and series are ordered maps and every
/// series is sorted by timestamp. Two runs that record the same signals
/// produce byte-identical exports regardless of recording thread
/// interleaving (counter totals commute; per-thread signal sets must
/// themselves be deterministic, which the DES pipeline guarantees).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Recorded spans, sorted.
    pub spans: Vec<Span>,
    /// Recorded instant events, sorted.
    pub markers: Vec<Marker>,
    /// Monotonic counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge time series by name, each sorted by timestamp.
    pub series: BTreeMap<String, Vec<(SimTime, f64)>>,
}

impl Snapshot {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.markers.is_empty()
            && self.counters.is_empty()
            && self.series.is_empty()
    }
}

#[derive(Default)]
struct State {
    spans: Vec<Span>,
    markers: Vec<Marker>,
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<(SimTime, f64)>>,
}

struct Inner {
    config: TelemetryConfig,
    state: Mutex<State>,
}

/// A cheap-to-clone recording handle; clones share one signal store.
///
/// The default handle is **disabled**: every record call is a no-op that
/// returns before touching any state. An enabled handle is created with
/// [`Telemetry::new`] and records only the categories its
/// [`TelemetryConfig`] switched on.
///
/// Recording is thread-safe (the datatap and EVPath transports record
/// from worker threads) and never interacts with the DES kernel, so it
/// cannot perturb the event schedule.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A handle that records nothing (same as `Telemetry::default()`).
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A handle recording the categories enabled in `config`.
    ///
    /// If `config` enables nothing this returns the disabled handle, so
    /// callers can pass a config through unconditionally.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        if !config.any() {
            return Telemetry::disabled();
        }
        Telemetry { inner: Some(Arc::new(Inner { config, state: Mutex::new(State::default()) })) }
    }

    /// True if any category records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True if `category` records through this handle.
    pub fn enabled(&self, category: Category) -> bool {
        self.inner.as_ref().is_some_and(|i| i.config.enabled(category))
    }

    /// The active config (all-off for a disabled handle).
    pub fn config(&self) -> TelemetryConfig {
        self.inner.as_ref().map(|i| i.config).unwrap_or_default()
    }

    fn with_state(&self, category: Category, f: impl FnOnce(&mut State)) {
        if let Some(inner) = &self.inner {
            if inner.config.enabled(category) {
                f(&mut inner.state.lock());
            }
        }
    }

    /// Records an interval `[start, end]` named `name` on `track`.
    pub fn span(&self, category: Category, track: &str, name: &str, start: SimTime, end: SimTime) {
        debug_assert!(start <= end, "span ends before it starts: {start} > {end}");
        self.with_state(category, |s| {
            // simlint: allow(alloc-in-hot-path, the recorder owns its samples — every span keeps its own track/name strings by design)
            s.spans.push(Span { track: track.to_string(), name: name.to_string(), start, end });
        });
    }

    /// Records an instant event named `name` on `track` at `at`.
    pub fn mark(&self, category: Category, track: &str, name: &str, at: SimTime) {
        self.with_state(category, |s| {
            // simlint: allow(alloc-in-hot-path, the recorder owns its samples — every marker keeps its own track/name strings by design)
            s.markers.push(Marker { track: track.to_string(), name: name.to_string(), at });
        });
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn count(&self, category: Category, name: &str, delta: u64) {
        self.with_state(category, |s| {
            if let Some(c) = s.counters.get_mut(name) {
                *c += delta;
                return;
            }
            // simlint: allow(alloc-in-hot-path, first touch of a counter name; every later hit takes the get_mut fast path above)
            s.counters.insert(name.to_string(), delta);
        });
    }

    /// Appends `(at, value)` to the gauge time series `name`.
    pub fn gauge(&self, category: Category, name: &str, at: SimTime, value: f64) {
        self.with_state(category, |s| {
            if let Some(series) = s.series.get_mut(name) {
                series.push((at, value));
                return;
            }
            // simlint: allow(alloc-in-hot-path, first touch of a gauge name; every later sample takes the get_mut fast path above)
            s.series.insert(name.to_string(), vec![(at, value)]);
        });
    }

    /// The current total of counter `name` (0 if absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => inner.state.lock().counters.get(name).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// A copy of the gauge series `name` (empty if absent or disabled).
    pub fn series(&self, name: &str) -> Vec<(SimTime, f64)> {
        match &self.inner {
            Some(inner) => inner.state.lock().series.get(name).cloned().unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// An immutable, deterministically-ordered copy of everything
    /// recorded so far. Empty for a disabled handle.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else { return Snapshot::default() };
        let state = inner.state.lock();
        let mut spans = state.spans.clone();
        spans.sort_by(|a, b| {
            (a.start, &a.track, &a.name, a.end).cmp(&(b.start, &b.track, &b.name, b.end))
        });
        let mut markers = state.markers.clone();
        markers.sort_by(|a, b| (a.at, &a.track, &a.name).cmp(&(b.at, &b.track, &b.name)));
        let mut series = state.series.clone();
        for points in series.values_mut() {
            points.sort_by_key(|(at, _)| *at);
        }
        Snapshot { spans, markers, counters: state.counters.clone(), series }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        tel.span(Category::Container, "Helper", "step", SimTime::ZERO, SimTime::from_secs(1));
        tel.count(Category::Net, "net.messages", 3);
        tel.gauge(Category::Container, "q", SimTime::ZERO, 1.0);
        assert!(!tel.is_enabled());
        assert!(tel.snapshot().is_empty());
        assert_eq!(tel.counter("net.messages"), 0);
    }

    #[test]
    fn all_off_config_collapses_to_disabled() {
        assert!(!Telemetry::new(TelemetryConfig::off()).is_enabled());
        assert!(Telemetry::new(TelemetryConfig::all()).is_enabled());
    }

    #[test]
    fn disabled_categories_are_filtered() {
        let tel = Telemetry::new(TelemetryConfig { net: true, ..TelemetryConfig::off() });
        tel.count(Category::Net, "net.messages", 2);
        tel.count(Category::Overlay, "evpath.delivered", 5);
        assert_eq!(tel.counter("net.messages"), 2);
        assert_eq!(tel.counter("evpath.delivered"), 0);
        assert!(tel.enabled(Category::Net));
        assert!(!tel.enabled(Category::Overlay));
    }

    #[test]
    fn clones_share_the_store() {
        let tel = Telemetry::new(TelemetryConfig::all());
        let other = tel.clone();
        other.count(Category::Kernel, "events", 7);
        assert_eq!(tel.counter("events"), 7);
    }

    #[test]
    fn snapshot_orders_deterministically() {
        let tel = Telemetry::new(TelemetryConfig::all());
        let t = SimTime::from_micros;
        tel.span(Category::Container, "Bonds", "step", t(10), t(20));
        tel.span(Category::Container, "Helper", "step", t(5), t(9));
        tel.span(Category::Container, "Bonds", "step", t(5), t(8));
        tel.mark(Category::Management, "mgmt", "increase", t(15));
        tel.mark(Category::Management, "mgmt", "decrease", t(15));
        tel.gauge(Category::Container, "q", t(9), 2.0);
        tel.gauge(Category::Container, "q", t(3), 1.0);
        let snap = tel.snapshot();
        assert_eq!(snap.spans[0].track, "Bonds");
        assert_eq!(snap.spans[0].start, t(5));
        assert_eq!(snap.spans[1].track, "Helper");
        assert_eq!(snap.spans[2].start, t(10));
        assert_eq!(snap.markers[0].name, "decrease");
        assert_eq!(snap.series["q"], vec![(t(3), 1.0), (t(9), 2.0)]);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let tel = Telemetry::new(TelemetryConfig::all());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tel = tel.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        tel.count(Category::Transport, "datatap.announced", 1);
                    }
                });
            }
        });
        assert_eq!(tel.counter("datatap.announced"), 400);
    }
}
