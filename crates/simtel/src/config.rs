//! Per-category enable flags for the telemetry subsystem.

/// The instrumentation categories a [`TelemetryConfig`] can gate.
///
/// Categories follow the layers of the stack rather than signal kinds:
/// disabling `Net` silences the NIC spans *and* the byte counters, not
/// "all spans".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Kernel-level event accounting (per-label event counts).
    Kernel,
    /// simnet link/NIC activity: transfer spans, message/byte totals.
    Net,
    /// datatap transport: announce/pull totals, queue depth, pause/resume.
    Transport,
    /// EVPath overlay: stone dispatch and drop totals.
    Overlay,
    /// Container service: per-step spans, latency and queue-depth gauges.
    Container,
    /// Management protocol: policy rounds and resize/offline/trade actions.
    Management,
    /// SLA violations observed by the monitor.
    Sla,
    /// Fault injection and failure recovery: injected crashes/stalls/loss,
    /// heartbeat-miss detections, and restart actions (see `simfault`).
    Fault,
}

/// Which [`Category`]s a [`Telemetry`](crate::Telemetry) handle records.
///
/// The default is everything off — construction sites that do not opt in
/// get the no-op path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record [`Category::Kernel`] signals.
    pub kernel: bool,
    /// Record [`Category::Net`] signals.
    pub net: bool,
    /// Record [`Category::Transport`] signals.
    pub transport: bool,
    /// Record [`Category::Overlay`] signals.
    pub overlay: bool,
    /// Record [`Category::Container`] signals.
    pub container: bool,
    /// Record [`Category::Management`] signals.
    pub management: bool,
    /// Record [`Category::Sla`] signals.
    pub sla: bool,
    /// Record [`Category::Fault`] signals.
    pub fault: bool,
}

impl TelemetryConfig {
    /// Every category enabled.
    pub const fn all() -> TelemetryConfig {
        TelemetryConfig {
            kernel: true,
            net: true,
            transport: true,
            overlay: true,
            container: true,
            management: true,
            sla: true,
            fault: true,
        }
    }

    /// Every category disabled (the default; yields the no-op path).
    pub const fn off() -> TelemetryConfig {
        TelemetryConfig {
            kernel: false,
            net: false,
            transport: false,
            overlay: false,
            container: false,
            management: false,
            sla: false,
            fault: false,
        }
    }

    /// True if at least one category is enabled.
    pub const fn any(&self) -> bool {
        self.kernel
            || self.net
            || self.transport
            || self.overlay
            || self.container
            || self.management
            || self.sla
            || self.fault
    }

    /// Whether `category` is enabled.
    pub const fn enabled(&self, category: Category) -> bool {
        match category {
            Category::Kernel => self.kernel,
            Category::Net => self.net,
            Category::Transport => self.transport,
            Category::Overlay => self.overlay,
            Category::Container => self.container,
            Category::Management => self.management,
            Category::Sla => self.sla,
            Category::Fault => self.fault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let cfg = TelemetryConfig::default();
        assert_eq!(cfg, TelemetryConfig::off());
        assert!(!cfg.any());
    }

    #[test]
    fn all_enables_every_category() {
        let cfg = TelemetryConfig::all();
        for cat in [
            Category::Kernel,
            Category::Net,
            Category::Transport,
            Category::Overlay,
            Category::Container,
            Category::Management,
            Category::Sla,
            Category::Fault,
        ] {
            assert!(cfg.enabled(cat), "{cat:?} should be on");
        }
        assert!(cfg.any());
    }

    #[test]
    fn single_flag_gates_only_its_category() {
        let cfg = TelemetryConfig { sla: true, ..TelemetryConfig::off() };
        assert!(cfg.any());
        assert!(cfg.enabled(Category::Sla));
        assert!(!cfg.enabled(Category::Container));
    }
}
