//! Perfetto / Chrome-trace JSON export.
//!
//! Emits the classic `{"traceEvents": [...]}` JSON understood by
//! <https://ui.perfetto.dev> and `chrome://tracing`:
//!
//! * one **thread per track** (`ph:"M"` `thread_name` metadata), tracks
//!   numbered in sorted-name order so output is deterministic;
//! * spans as **complete events** (`ph:"X"`, `ts`/`dur` in microseconds);
//! * markers as **thread-scoped instants** (`ph:"i"`);
//! * gauge series as **counter events** (`ph:"C"`).
//!
//! Counter *totals* have no timeline position and are exported by the
//! CSV exporter instead.

use std::collections::BTreeMap;

use crate::telemetry::Snapshot;

use super::{fmt_f64, fmt_us, json_escape};

const PID: u32 = 1;

/// Renders `snapshot` as Chrome-trace JSON (see module docs).
pub fn chrome_trace_json(snapshot: &Snapshot) -> String {
    // Stable track -> tid assignment: sorted track names, numbered from 1.
    let mut tids: BTreeMap<&str, u32> = BTreeMap::new();
    for span in &snapshot.spans {
        tids.entry(&span.track).or_insert(0);
    }
    for marker in &snapshot.markers {
        tids.entry(&marker.track).or_insert(0);
    }
    for (i, tid) in tids.values_mut().enumerate() {
        *tid = i as u32 + 1;
    }

    let mut events: Vec<String> = Vec::new();
    for (track, tid) in &tids {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(track)
        ));
    }
    for span in &snapshot.spans {
        let tid = tids[span.track.as_str()];
        let dur = span.end.as_nanos() - span.start.as_nanos();
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"dur\":{}}}",
            json_escape(&span.name),
            fmt_us(span.start.as_nanos()),
            fmt_us(dur)
        ));
    }
    for marker in &snapshot.markers {
        let tid = tids[marker.track.as_str()];
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"s\":\"t\"}}",
            json_escape(&marker.name),
            fmt_us(marker.at.as_nanos())
        ));
    }
    for (name, points) in &snapshot.series {
        for (at, value) in points {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{PID},\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                json_escape(name),
                fmt_us(at.as_nanos()),
                fmt_f64(*value)
            ));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        out.push_str(event);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use sim_core::SimTime;

    use crate::{Category, Telemetry, TelemetryConfig};

    use super::*;

    #[test]
    fn tracks_number_in_sorted_order() {
        let tel = Telemetry::new(TelemetryConfig::all());
        let t = SimTime::from_micros;
        tel.span(Category::Container, "Zeta", "step", t(1), t(2));
        tel.span(Category::Container, "Alpha", "step", t(1), t(2));
        let json = chrome_trace_json(&tel.snapshot());
        let alpha = json.find("\"name\":\"Alpha\"").expect("Alpha metadata");
        let zeta = json.find("\"name\":\"Zeta\"").expect("Zeta metadata");
        assert!(alpha < zeta, "metadata must be in sorted track order");
        assert!(json.contains("\"tid\":1,\"args\":{\"name\":\"Alpha\"}"));
        assert!(json.contains("\"tid\":2,\"args\":{\"name\":\"Zeta\"}"));
    }

    #[test]
    fn empty_snapshot_is_valid_json_skeleton() {
        let json = chrome_trace_json(&Snapshot::default());
        assert_eq!(json, "{\"traceEvents\":[\n]}\n");
    }

    #[test]
    fn export_is_reproducible() {
        let build = || {
            let tel = Telemetry::new(TelemetryConfig::all());
            let t = SimTime::from_micros;
            tel.span(Category::Container, "Helper", "step", t(3), t(7));
            tel.mark(Category::Management, "mgmt", "increase Bonds", t(5));
            tel.gauge(Category::Container, "Helper.queue", t(4), 2.0);
            chrome_trace_json(&tel.snapshot())
        };
        assert_eq!(build(), build());
    }
}
