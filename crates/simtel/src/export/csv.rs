//! CSV export: time series for the figure harness, plus counter and
//! span tables for cross-checking.
//!
//! Fields never need quoting in practice (names are identifiers), but
//! any comma or quote in a name is escaped RFC-4180 style to keep the
//! output parseable.

use crate::telemetry::Snapshot;

use super::fmt_f64;

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Gauge series as `series,t_s,value` rows (sorted by series then time).
pub fn series_csv(snapshot: &Snapshot) -> String {
    let mut out = String::from("series,t_s,value\n");
    for (name, points) in &snapshot.series {
        for (at, value) in points {
            out.push_str(&format!(
                "{},{},{}\n",
                csv_field(name),
                fmt_f64(at.as_secs_f64()),
                fmt_f64(*value)
            ));
        }
    }
    out
}

/// Counter totals as `counter,total` rows (sorted by name).
pub fn counters_csv(snapshot: &Snapshot) -> String {
    let mut out = String::from("counter,total\n");
    for (name, total) in &snapshot.counters {
        out.push_str(&format!("{},{total}\n", csv_field(name)));
    }
    out
}

/// Spans as `track,name,start_s,end_s,duration_s` rows (snapshot order).
pub fn spans_csv(snapshot: &Snapshot) -> String {
    let mut out = String::from("track,name,start_s,end_s,duration_s\n");
    for span in &snapshot.spans {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            csv_field(&span.track),
            csv_field(&span.name),
            fmt_f64(span.start.as_secs_f64()),
            fmt_f64(span.end.as_secs_f64()),
            fmt_f64(span.end.since(span.start).as_secs_f64())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use sim_core::SimTime;

    use crate::{Category, Telemetry, TelemetryConfig};

    use super::*;

    #[test]
    fn series_rows_are_sorted_and_parseable() {
        let tel = Telemetry::new(TelemetryConfig::all());
        tel.gauge(Category::Container, "b.queue", SimTime::from_secs(2), 3.0);
        tel.gauge(Category::Container, "a.latency", SimTime::from_millis(500), 0.25);
        let csv = series_csv(&tel.snapshot());
        assert_eq!(csv, "series,t_s,value\na.latency,0.5,0.25\nb.queue,2,3\n");
    }

    #[test]
    fn counters_and_spans_render() {
        let tel = Telemetry::new(TelemetryConfig::all());
        tel.count(Category::Net, "net.bytes", 4096);
        tel.span(Category::Container, "Helper", "step", SimTime::ZERO, SimTime::from_secs(1));
        let snap = tel.snapshot();
        assert_eq!(counters_csv(&snap), "counter,total\nnet.bytes,4096\n");
        assert_eq!(
            spans_csv(&snap),
            "track,name,start_s,end_s,duration_s\nHelper,step,0,1,1\n"
        );
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
    }
}
