//! Exporters over a [`Snapshot`](crate::Snapshot).
//!
//! Both exporters are fully deterministic — stable track numbering,
//! ordered iteration, and fixed number formatting — so a trace exported
//! from the same snapshot is byte-identical across runs and platforms
//! (the Perfetto golden test relies on this).

mod csv;
mod perfetto;

pub use csv::{counters_csv, series_csv, spans_csv};
pub use perfetto::chrome_trace_json;

/// Formats `ns` nanoseconds as Chrome-trace microseconds, trimming
/// trailing zeros from the fractional part (`1500ns` → `"1.5"`).
pub(crate) fn fmt_us(ns: u64) -> String {
    let us = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        return us.to_string();
    }
    let mut s = format!("{us}.{frac:03}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

/// Formats an `f64` for JSON/CSV output. Integral values print without a
/// fractional part; everything else uses Rust's shortest round-trip
/// representation (deterministic across platforms).
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microsecond_formatting_trims_zeros() {
        assert_eq!(fmt_us(0), "0");
        assert_eq!(fmt_us(1_000), "1");
        assert_eq!(fmt_us(1_500), "1.5");
        assert_eq!(fmt_us(1_001), "1.001");
        assert_eq!(fmt_us(999), "0.999");
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-2.0), "-2");
        assert_eq!(fmt_f64(f64::NAN), "0");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
