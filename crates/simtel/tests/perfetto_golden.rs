//! Golden-file test for the Perfetto/Chrome-trace exporter.
//!
//! Builds the trace of a tiny two-container pipeline by hand — Helper
//! handing two steps to a slower Bonds, one SLA violation, one management
//! action, a queue-depth gauge — and byte-compares the exported JSON
//! against the checked-in golden file. Any change to the export format
//! shows up as a readable diff of that file.

use sim_core::SimTime;
use simtel::export::chrome_trace_json;
use simtel::{Category, Telemetry, TelemetryConfig};

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn two_container_trace() -> String {
    let tel = Telemetry::new(TelemetryConfig::all());
    // Helper is fast; Bonds falls behind and trips the SLA.
    tel.span(Category::Container, "Helper", "step", t(0), t(2));
    tel.span(Category::Container, "Helper", "step", t(15), t(17));
    tel.span(Category::Container, "Bonds", "step", t(2), t(21));
    tel.span(Category::Container, "Bonds", "step", t(21), t(52));
    tel.mark(Category::Sla, "Bonds", "sla.violation", t(52));
    tel.mark(Category::Management, "manager", "increase Bonds +1 (from spare pool)", t(60));
    tel.count(Category::Management, "manager.actions", 1);
    tel.gauge(Category::Container, "Bonds_queue", t(15), 1.0);
    tel.gauge(Category::Container, "Bonds_queue", t(21), 0.0);
    chrome_trace_json(&tel.snapshot())
}

const GOLDEN: &str = include_str!("golden/two_container.trace.json");

#[test]
fn two_container_trace_matches_golden() {
    assert_eq!(two_container_trace(), GOLDEN, "Perfetto export drifted from the golden file");
}

/// Regenerates the golden file after an intentional format change:
/// `cargo test -p simtel --test perfetto_golden -- --ignored`
#[test]
#[ignore = "writes tests/golden/two_container.trace.json"]
fn regenerate_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/two_container.trace.json");
    std::fs::write(path, two_container_trace()).expect("write golden file");
}
