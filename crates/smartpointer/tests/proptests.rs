//! Property tests of the analytics kernels on randomized atom
//! configurations.

use std::sync::Arc;

use proptest::prelude::*;
use smartpointer::{
    split_snapshot, AggregationTree, Bonds, FragmentFinder,
};

/// A random snapshot of up to `n` atoms in a periodic box.
fn arb_snapshot(max_atoms: usize) -> impl Strategy<Value = mdsim::Snapshot> {
    (
        1usize..=max_atoms,
        8.0f64..20.0,
        any::<u64>(),
    )
        .prop_flat_map(|(n, box_len, _seed)| {
            proptest::collection::vec((0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0), n).prop_map(
                move |coords| mdsim::Snapshot {
                    step: 0,
                    md_step: 0,
                    box_len: [box_len, box_len, box_len],
                    ids: Arc::new((0..coords.len() as u64).collect()),
                    pos: Arc::new(
                        coords
                            .iter()
                            .map(|&(x, y, z)| {
                                [
                                    x * box_len as f32,
                                    y * box_len as f32,
                                    z * box_len as f32,
                                ]
                            })
                            .collect(),
                    ),
                    strain: 0.0,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cell-list kernel must agree with the literal O(n²) kernel on
    /// any configuration.
    #[test]
    fn bonds_kernels_agree_on_random_configs(snap in arb_snapshot(60)) {
        let k = Bonds { cutoff: 1.4, threads: 1 };
        let fast = k.compute(&snap);
        let slow = k.compute_n2(&snap);
        let sorted = |adj: &smartpointer::Adjacency| -> Vec<Vec<u32>> {
            (0..adj.len())
                .map(|i| {
                    let mut v = adj.neighbors(i).to_vec();
                    v.sort_unstable();
                    v
                })
                .collect()
        };
        prop_assert_eq!(sorted(&fast.adjacency), sorted(&slow.adjacency));
    }

    /// Adjacency is always symmetric and never self-referential.
    #[test]
    fn adjacency_is_symmetric_and_irreflexive(snap in arb_snapshot(60)) {
        let out = Bonds { cutoff: 1.4, threads: 2 }.compute(&snap);
        let adj = &out.adjacency;
        for i in 0..adj.len() {
            for &j in adj.neighbors(i) {
                prop_assert_ne!(i as u32, j, "self-bond at {}", i);
                prop_assert!(adj.bonded(j as usize, i as u32), "asymmetric {i}-{j}");
            }
        }
    }

    /// Fragment labels always partition the atoms: labels are dense,
    /// sizes sum to the atom count, and bonded atoms share a label.
    #[test]
    fn fragments_partition_the_atoms(snap in arb_snapshot(60)) {
        let bonds = Bonds { cutoff: 1.4, threads: 1 }.compute(&snap);
        let frags = FragmentFinder.compute(&bonds);
        prop_assert_eq!(frags.labels.len(), snap.atom_count());
        let total: u32 = frags.sizes.iter().sum();
        prop_assert_eq!(total as usize, snap.atom_count());
        for i in 0..bonds.adjacency.len() {
            for &j in bonds.adjacency.neighbors(i) {
                prop_assert_eq!(frags.labels[i], frags.labels[j as usize]);
            }
        }
        for &l in &frags.labels {
            prop_assert!((l as usize) < frags.count());
        }
    }

    /// Splitting and re-aggregating a snapshot is the identity for any
    /// part count and fan-in.
    #[test]
    fn helper_tree_is_lossless(
        snap in arb_snapshot(80),
        parts in 1usize..12,
        fan_in in 2usize..6
    ) {
        let chunks = split_snapshot(&snap, parts);
        let merged = AggregationTree::new(fan_in).aggregate(chunks);
        prop_assert_eq!(&*merged.ids, &*snap.ids);
        prop_assert_eq!(&*merged.pos, &*snap.pos);
    }
}
