//! CSym: the central-symmetry calculation.
//!
//! The centro-symmetry parameter (CSP) measures how far an atom's
//! neighborhood departs from an inversion-symmetric (perfect bulk)
//! environment: ~0 in pristine FCC, large at surfaces and crack faces.
//! CSym reads the atom data plus one reference adjacency from Bonds, and is
//! the detector whose "break detected" verdict triggers the pipeline's
//! dynamic branch (retiring itself and activating CNA). O(n) given the
//! adjacency.

use crate::bonds::BondsOutput;

/// Per-atom CSP values plus the break verdict.
#[derive(Clone, Debug)]
pub struct CSymOutput {
    /// The step analyzed.
    pub step: u64,
    /// CSP per atom.
    pub csp: Vec<f32>,
    /// Largest CSP observed.
    pub max_csp: f32,
    /// Fraction of atoms whose CSP exceeds the defect threshold.
    pub defective_fraction: f64,
    /// True when the defective fraction passes the break threshold —
    /// i.e. a bond break / crack has been detected.
    pub break_detected: bool,
}

/// The CSym analysis kernel.
#[derive(Clone, Copy, Debug)]
pub struct CSym {
    /// Number of neighbors forming the symmetric shell (12 for FCC).
    pub shell: usize,
    /// CSP above which an atom counts as defective.
    pub defect_threshold: f32,
    /// Defective fraction above which a break is declared.
    pub break_fraction: f64,
    /// Worker threads for the per-atom loop (1 = serial).
    pub threads: usize,
}

impl Default for CSym {
    fn default() -> Self {
        CSym { shell: 12, defect_threshold: 0.5, break_fraction: 0.01, threads: 1 }
    }
}

impl CSym {
    /// Computes CSP for every atom from the Bonds adjacency. Each simpar
    /// chunk owns its CSP slice (and reuses its own neighbor scratch), and
    /// slices concatenate in chunk order, so the per-atom values are
    /// bit-identical for any thread count.
    pub fn compute(&self, input: &BondsOutput) -> CSymOutput {
        let snap = &input.snapshot;
        let adj = &input.adjacency;
        let n = snap.atom_count();

        let csp: Vec<f32> = simpar::chunked_map_reduce(
            n,
            self.threads,
            |range| {
                let mut part = Vec::with_capacity(range.len());
                let mut vectors: Vec<[f64; 3]> = Vec::with_capacity(self.shell);
                let mut neigh: Vec<(f64, u32)> = Vec::with_capacity(2 * self.shell);
                for i in range {
                    vectors.clear();
                    neigh.clear();
                    neigh.extend(
                        adj.neighbors(i).iter().map(|&j| (snap.dist2(i, j as usize), j)),
                    );
                    // Atoms that lost neighbors (crack faces) have high CSP
                    // by construction: missing shell members contribute as
                    // unpaired.
                    neigh.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
                    neigh.truncate(self.shell);
                    for &(_, j) in &neigh {
                        vectors.push(snap.min_image(i, j as usize));
                    }
                    part.push(Self::centro_symmetry(&vectors, self.shell) as f32);
                }
                part
            },
            Vec::with_capacity(n),
            |mut acc: Vec<f32>, part| {
                acc.extend(part);
                acc
            },
        );

        let max_csp = csp.iter().copied().fold(0.0f32, f32::max);
        let defective = csp.iter().filter(|&&c| c > self.defect_threshold).count();
        let defective_fraction = if n == 0 { 0.0 } else { defective as f64 / n as f64 };
        CSymOutput {
            step: snap.step,
            csp,
            max_csp,
            defective_fraction,
            break_detected: defective_fraction > self.break_fraction,
        }
    }

    /// Greedy CSP: repeatedly pair the two remaining neighbor vectors whose
    /// sum has the smallest norm and accumulate |ri + rj|². Unfilled shell
    /// slots (missing neighbors) are charged as unpaired vectors.
    fn centro_symmetry(vectors: &[[f64; 3]], shell: usize) -> f64 {
        // Note the displacement here points from neighbor j to atom i; the
        // sign convention cancels in |ri + rj|².
        let mut remaining: Vec<[f64; 3]> = vectors.to_vec();
        let mut total = 0.0;
        while remaining.len() >= 2 {
            let mut best = (0usize, 1usize, f64::INFINITY);
            for a in 0..remaining.len() {
                for b in (a + 1)..remaining.len() {
                    let s = [
                        remaining[a][0] + remaining[b][0],
                        remaining[a][1] + remaining[b][1],
                        remaining[a][2] + remaining[b][2],
                    ];
                    let norm2 = s[0] * s[0] + s[1] * s[1] + s[2] * s[2];
                    if norm2 < best.2 {
                        best = (a, b, norm2);
                    }
                }
            }
            total += best.2;
            // Remove the larger index first so the smaller stays valid.
            remaining.swap_remove(best.1);
            remaining.swap_remove(best.0);
        }
        // Leftover odd vector and missing shell slots count fully.
        for v in &remaining {
            total += v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
        }
        let missing = shell.saturating_sub(vectors.len());
        if missing > 0 && !vectors.is_empty() {
            // Charge each missing slot at the mean neighbor distance².
            let mean_r2 = vectors
                .iter()
                .map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
                .sum::<f64>()
                / vectors.len() as f64;
            total += missing as f64 * mean_r2;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bonds::Bonds;
    use mdsim::{MdConfig, MdEngine};

    #[test]
    fn pristine_crystal_has_low_csp() {
        let cfg = MdConfig { temperature: 0.02, ..MdConfig::default() };
        let snap = MdEngine::new(cfg).run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = CSym::default().compute(&bonds);
        assert!(!out.break_detected, "pristine crystal flagged broken");
        assert!(out.defective_fraction < 0.005, "fraction {}", out.defective_fraction);
    }

    #[test]
    fn crack_is_detected() {
        let cfg = MdConfig {
            temperature: 0.02,
            strain_per_step: 0.005,
            yield_strain: 0.02,
            ..MdConfig::default()
        };
        let mut md = MdEngine::new(cfg);
        md.run(10);
        assert!(md.cracked());
        let snap = md.run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = CSym::default().compute(&bonds);
        assert!(out.break_detected, "crack not detected (frac {})", out.defective_fraction);
        assert!(out.max_csp > CSym::default().defect_threshold);
    }

    #[test]
    fn perfect_inversion_pairs_give_zero() {
        // Six ± unit vectors: a perfectly centro-symmetric shell.
        let vs = [
            [1.0, 0.0, 0.0],
            [-1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.0, 0.0, -1.0],
        ];
        assert!(CSym::centro_symmetry(&vs, 6) < 1e-12);
    }

    #[test]
    fn missing_neighbors_raise_csp() {
        let full = [
            [1.0, 0.0, 0.0],
            [-1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, -1.0, 0.0],
        ];
        let half = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
        let c_full = CSym::centro_symmetry(&full, 4);
        let c_half = CSym::centro_symmetry(&half, 4);
        assert!(c_half > c_full + 1.0, "missing shell must cost: {c_half} vs {c_full}");
    }

    /// CSP values are bit-identical (f32 bit patterns) for any thread
    /// count, on a snapshot with real crack faces.
    #[test]
    fn parallel_csym_is_bit_identical() {
        let cfg = MdConfig {
            temperature: 0.02,
            strain_per_step: 0.005,
            yield_strain: 0.02,
            ..MdConfig::default()
        };
        let mut md = MdEngine::new(cfg);
        md.run(10);
        let snap = md.run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let serial = CSym { threads: 1, ..CSym::default() }.compute(&bonds);
        for threads in [2usize, 3, 8] {
            let parallel = CSym { threads, ..CSym::default() }.compute(&bonds);
            let a: Vec<u32> = serial.csp.iter().map(|c| c.to_bits()).collect();
            let b: Vec<u32> = parallel.csp.iter().map(|c| c.to_bits()).collect();
            assert_eq!(a, b, "threads={threads}");
            assert_eq!(serial.break_detected, parallel.break_detected);
            assert_eq!(serial.max_csp.to_bits(), parallel.max_csp.to_bits());
        }
    }

    #[test]
    fn output_has_one_value_per_atom() {
        let snap = MdEngine::new(MdConfig::default()).run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = CSym::default().compute(&bonds);
        assert_eq!(out.csp.len(), snap.atom_count());
        assert_eq!(out.step, snap.step);
    }
}
