//! Fragment detection and tracking.
//!
//! The paper's future-work use case: the CTH shock-physics pipeline turns
//! raw atomic data into *material fragments* and tracks them as they
//! evolve, "opening new opportunities for understanding the physics at
//! work". The kernel is connected-component analysis over the bonded
//! adjacency: each component is a fragment; tracking matches fragments
//! across steps by shared atom ids.

// Maps whose iteration order reaches results (majority votes, split
// events) are BTreeMaps; lookup-only maps stay hashed.
use std::collections::{BTreeMap, HashMap};

use crate::bonds::BondsOutput;

/// Connected-component labeling of one step.
#[derive(Clone, Debug)]
pub struct Fragments {
    /// The step analyzed.
    pub step: u64,
    /// Fragment label per atom (0-based, dense).
    pub labels: Vec<u32>,
    /// Atom count per fragment, indexed by label.
    pub sizes: Vec<u32>,
}

impl Fragments {
    /// Number of fragments found.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// The label of the largest fragment.
    pub fn largest(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .map(|(ix, _)| ix as u32)
    }
}

/// The fragment-detection kernel: union-find over bonded pairs.
#[derive(Clone, Copy, Debug, Default)]
pub struct FragmentFinder;

impl FragmentFinder {
    /// Labels the connected components of the bonded adjacency.
    pub fn compute(&self, input: &BondsOutput) -> Fragments {
        let adj = &input.adjacency;
        let n = adj.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                // Path halving.
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }

        for i in 0..n {
            for &j in adj.neighbors(i) {
                let (a, b) = (find(&mut parent, i as u32), find(&mut parent, j));
                if a != b {
                    parent[a.max(b) as usize] = a.min(b);
                }
            }
        }

        // Dense relabeling + sizes.
        let mut dense: HashMap<u32, u32> = HashMap::new();
        let mut labels = Vec::with_capacity(n);
        let mut sizes: Vec<u32> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i as u32);
            let next = sizes.len() as u32;
            let label = *dense.entry(root).or_insert_with(|| {
                sizes.push(0);
                next
            });
            sizes[label as usize] += 1;
            labels.push(label);
        }

        Fragments { step: input.snapshot.step, labels, sizes }
    }
}

/// Tracks fragments across steps by atom membership overlap, assigning
/// stable identities so science users can follow a fragment through time.
#[derive(Clone, Debug, Default)]
pub struct FragmentTracker {
    next_id: u64,
    /// Stable id of the fragment each atom belonged to at the last step.
    by_atom: HashMap<u64, u64>,
    history: Vec<TrackEvent>,
}

/// An event observed while tracking fragments between steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrackEvent {
    /// A new fragment appeared.
    Born {
        /// Stable id assigned.
        id: u64,
        /// Step of first observation.
        step: u64,
        /// Atom count.
        size: u32,
    },
    /// A fragment split into several (e.g. the crack event).
    Split {
        /// The parent fragment.
        parent: u64,
        /// The child fragment ids.
        children: Vec<u64>,
        /// Step at which the split was observed.
        step: u64,
    },
}

impl FragmentTracker {
    /// Creates an empty tracker.
    pub fn new() -> FragmentTracker {
        FragmentTracker::default()
    }

    /// Observed track events so far.
    pub fn events(&self) -> &[TrackEvent] {
        &self.history
    }

    /// Absorbs one step's fragments, matching them to prior identities by
    /// majority atom overlap. Returns the stable id per fragment label.
    pub fn observe(&mut self, snap_ids: &[u64], frags: &Fragments) -> Vec<u64> {
        assert_eq!(snap_ids.len(), frags.labels.len(), "one label per atom");

        // Count, per fragment label, how many atoms came from each prior id.
        let mut votes: Vec<BTreeMap<u64, u32>> = vec![BTreeMap::new(); frags.count()];
        for (atom, &label) in snap_ids.iter().zip(&frags.labels) {
            if let Some(&prev) = self.by_atom.get(atom) {
                *votes[label as usize].entry(prev).or_insert(0) += 1;
            }
        }

        // Majority vote; fragments with no inherited atoms are born fresh.
        let mut assigned: Vec<u64> = Vec::with_capacity(frags.count());
        let mut children_of: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (label, vote) in votes.iter().enumerate() {
            let winner = vote.iter().max_by_key(|&(_, &c)| c).map(|(&id, _)| id);
            let id = match winner {
                Some(parent) => {
                    let id = if children_of.contains_key(&parent) {
                        // The parent already claimed by another child:
                        // this is a split — mint a new id.
                        let id = self.next_id;
                        self.next_id += 1;
                        id
                    } else {
                        parent
                    };
                    children_of.entry(parent).or_default().push(id);
                    id
                }
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.history.push(TrackEvent::Born {
                        id,
                        step: frags.step,
                        size: frags.sizes[label],
                    });
                    id
                }
            };
            assigned.push(id);
        }

        for (parent, children) in children_of {
            if children.len() > 1 {
                self.history.push(TrackEvent::Split { parent, children, step: frags.step });
            }
        }

        // Update atom membership for the next step.
        self.by_atom = snap_ids
            .iter()
            .zip(&frags.labels)
            .map(|(&atom, &label)| (atom, assigned[label as usize]))
            .collect();
        assigned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bonds::Bonds;
    use mdsim::{MdConfig, MdEngine};

    #[test]
    fn pristine_crystal_is_one_fragment() {
        let snap = MdEngine::new(MdConfig::default()).run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let frags = FragmentFinder.compute(&bonds);
        assert_eq!(frags.count(), 1);
        assert_eq!(frags.sizes[0] as usize, snap.atom_count());
        assert_eq!(frags.largest(), Some(0));
    }

    #[test]
    fn crack_splits_the_sample_in_two() {
        let cfg = MdConfig {
            temperature: 0.02,
            strain_per_step: 0.005,
            yield_strain: 0.02,
            ..MdConfig::default()
        };
        let mut md = MdEngine::new(cfg);
        md.run(10);
        assert!(md.cracked());
        let snap = md.run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let frags = FragmentFinder.compute(&bonds);
        assert_eq!(frags.count(), 2, "the planar crack must yield two fragments");
        let total: u32 = frags.sizes.iter().sum();
        assert_eq!(total as usize, snap.atom_count());
        // Both halves are substantial.
        assert!(frags.sizes.iter().all(|&s| s as usize > snap.atom_count() / 4));
    }

    #[test]
    fn tracker_reports_birth_then_split() {
        let cfg = MdConfig {
            temperature: 0.02,
            strain_per_step: 0.005,
            yield_strain: 0.06,
            ..MdConfig::default()
        };
        let mut md = MdEngine::new(cfg);
        let mut tracker = FragmentTracker::new();

        // Step 0: intact.
        let snap0 = md.run_epoch(2);
        let f0 = FragmentFinder.compute(&Bonds::default().compute(&snap0));
        let ids0 = tracker.observe(&snap0.ids, &f0);
        assert_eq!(ids0.len(), 1);
        assert!(matches!(tracker.events()[0], TrackEvent::Born { id: 0, .. }));

        // Later: cracked.
        md.run(15);
        assert!(md.cracked());
        let snap1 = md.run_epoch(1);
        let f1 = FragmentFinder.compute(&Bonds::default().compute(&snap1));
        let ids1 = tracker.observe(&snap1.ids, &f1);
        assert_eq!(ids1.len(), 2);
        // One child keeps the parent identity, the other is fresh.
        assert!(ids1.contains(&0));
        assert!(tracker.events().iter().any(
            |e| matches!(e, TrackEvent::Split { parent: 0, children, .. } if children.len() == 2)
        ));
    }

    #[test]
    fn tracker_keeps_identity_when_nothing_changes() {
        let snap = MdEngine::new(MdConfig::default()).run_epoch(1);
        let frags = FragmentFinder.compute(&Bonds::default().compute(&snap));
        let mut tracker = FragmentTracker::new();
        let a = tracker.observe(&snap.ids, &frags);
        let b = tracker.observe(&snap.ids, &frags);
        assert_eq!(a, b, "stable fragments keep their ids");
        assert_eq!(tracker.events().len(), 1, "only the initial birth");
    }

    #[test]
    fn isolated_atoms_form_singleton_fragments() {
        use std::sync::Arc;
        // Three atoms far apart.
        let snap = mdsim::Snapshot {
            step: 0,
            md_step: 0,
            box_len: [100.0, 100.0, 100.0],
            ids: Arc::new(vec![10, 20, 30]),
            pos: Arc::new(vec![[0.0; 3], [50.0, 0.0, 0.0], [0.0, 50.0, 0.0]]),
            strain: 0.0,
        };
        let bonds = Bonds::default().compute(&snap);
        let frags = FragmentFinder.compute(&bonds);
        assert_eq!(frags.count(), 3);
        assert!(frags.sizes.iter().all(|&s| s == 1));
    }
}
