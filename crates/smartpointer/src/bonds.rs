//! Bonds: neighbor detection producing the atomic adjacency list.
//!
//! Determines which atom pairs are currently bonded (within the bonding
//! cutoff) and emits both the ingested atom data and an adjacency list —
//! the two outputs the paper describes. The reference kernel is the
//! paper's O(n²) all-pairs scan; a cell-list kernel provides the fast path
//! for the `Parallel` compute model, and both produce identical adjacency.

use std::sync::Arc;

use mdsim::{CellList, Snapshot, System};

/// Compressed sparse-row adjacency over atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Adjacency {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Adjacency {
    /// Builds from per-atom neighbor lists.
    pub fn from_lists(lists: &[Vec<u32>]) -> Adjacency {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for l in lists {
            neighbors.extend_from_slice(l);
            offsets.push(neighbors.len() as u32);
        }
        Adjacency { offsets, neighbors }
    }

    /// Number of atoms covered.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True for an empty adjacency.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The neighbors of atom `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Total number of directed edges (2× bond count).
    pub fn edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// True if atoms `i` and `j` are bonded.
    pub fn bonded(&self, i: usize, j: u32) -> bool {
        self.neighbors(i).contains(&j)
    }

    /// Mean neighbors per atom.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.edge_count() as f64 / self.len() as f64
        }
    }
}

/// Output of the Bonds component: the ingested atoms plus their adjacency.
#[derive(Clone, Debug)]
pub struct BondsOutput {
    /// The atom data passed through.
    pub snapshot: Snapshot,
    /// The bonded-pair adjacency.
    pub adjacency: Arc<Adjacency>,
    /// Bonding cutoff used.
    pub cutoff: f64,
}

/// The Bonds analysis kernel.
#[derive(Clone, Copy, Debug)]
pub struct Bonds {
    /// Bonding cutoff distance.
    pub cutoff: f64,
    /// Worker threads for the cell-list kernel (1 = serial).
    pub threads: usize,
}

impl Default for Bonds {
    fn default() -> Self {
        // First-neighbor distance in the FCC LJ crystal is a/√2 ≈ 1.12; a
        // cutoff of 1.4 captures first neighbors only.
        Bonds { cutoff: 1.4, threads: 1 }
    }
}

impl Bonds {
    /// The paper-faithful O(n²) all-pairs kernel.
    pub fn compute_n2(&self, snap: &Snapshot) -> BondsOutput {
        let n = snap.atom_count();
        let c2 = self.cutoff * self.cutoff;
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if snap.dist2(i, j) < c2 {
                    lists[i].push(j as u32);
                    lists[j].push(i as u32);
                }
            }
        }
        BondsOutput {
            snapshot: snap.clone(),
            adjacency: Arc::new(Adjacency::from_lists(&lists)),
            cutoff: self.cutoff,
        }
    }

    /// Cell-list kernel (same result, near-linear time), optionally
    /// thread-parallel over atoms.
    pub fn compute(&self, snap: &Snapshot) -> BondsOutput {
        let n = snap.atom_count();
        // Reuse mdsim's cell list by viewing the snapshot as a System.
        let sys = System {
            ids: Vec::new(),
            pos: snap.pos.iter().map(|p| [p[0] as f64, p[1] as f64, p[2] as f64]).collect(),
            vel: Vec::new(),
            force: Vec::new(),
            box_len: snap.box_len,
        };
        let cells = CellList::build(&sys, self.cutoff.max(1e-6));
        let c2 = self.cutoff * self.cutoff;

        let compute_range = |range: std::ops::Range<usize>| -> Vec<Vec<u32>> {
            let mut lists = Vec::with_capacity(range.len());
            for i in range {
                let mut l = Vec::new();
                cells.for_neighbors(&sys.pos[i], sys.box_len, |j| {
                    if j as usize != i && snap.dist2(i, j as usize) < c2 {
                        l.push(j);
                    }
                });
                l.sort_unstable();
                lists.push(l);
            }
            lists
        };

        // Per-atom neighbor lists are owned by their chunk and concatenate
        // in chunk order, so the adjacency is bit-identical for any thread
        // count.
        let lists: Vec<Vec<u32>> = simpar::chunked_map_reduce(
            n,
            self.threads,
            compute_range,
            Vec::with_capacity(n),
            |mut acc: Vec<Vec<u32>>, part| {
                acc.extend(part);
                acc
            },
        );

        BondsOutput {
            snapshot: snap.clone(),
            adjacency: Arc::new(Adjacency::from_lists(&lists)),
            cutoff: self.cutoff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::{MdConfig, MdEngine};

    fn snapshot() -> Snapshot {
        MdEngine::new(MdConfig::default()).run_epoch(1)
    }

    fn sorted(adj: &Adjacency) -> Vec<Vec<u32>> {
        (0..adj.len())
            .map(|i| {
                let mut v = adj.neighbors(i).to_vec();
                v.sort_unstable();
                v
            })
            .collect()
    }

    #[test]
    fn n2_and_cell_list_agree() {
        let snap = snapshot();
        let b = Bonds::default();
        let a = b.compute_n2(&snap);
        let c = b.compute(&snap);
        assert_eq!(sorted(&a.adjacency), sorted(&c.adjacency));
    }

    #[test]
    fn parallel_matches_serial() {
        let snap = snapshot();
        let serial = Bonds { threads: 1, ..Bonds::default() }.compute(&snap);
        let parallel = Bonds { threads: 4, ..Bonds::default() }.compute(&snap);
        assert_eq!(*serial.adjacency, *parallel.adjacency);
    }

    #[test]
    fn fcc_crystal_has_twelve_neighbors() {
        let snap = snapshot();
        let out = Bonds::default().compute(&snap);
        // Thermal noise can perturb a few atoms; the mean must be ~12.
        let mean = out.adjacency.mean_degree();
        assert!((mean - 12.0).abs() < 0.5, "FCC mean degree {mean}");
    }

    #[test]
    fn adjacency_is_symmetric() {
        let snap = snapshot();
        let out = Bonds::default().compute(&snap);
        let adj = &out.adjacency;
        for i in 0..adj.len() {
            for &j in adj.neighbors(i) {
                assert!(adj.bonded(j as usize, i as u32), "asymmetric edge {i}-{j}");
            }
        }
    }

    #[test]
    fn crack_removes_bonds() {
        let cfg = MdConfig { strain_per_step: 0.005, yield_strain: 0.02, ..MdConfig::default() };
        let mut md = MdEngine::new(cfg);
        let before = Bonds::default().compute(&md.run_epoch(1));
        md.run(10); // crosses the yield strain
        assert!(md.cracked());
        let after = Bonds::default().compute(&md.run_epoch(1));
        assert!(
            after.adjacency.edge_count() < before.adjacency.edge_count(),
            "crack must break bonds: {} -> {}",
            before.adjacency.edge_count(),
            after.adjacency.edge_count()
        );
    }

    #[test]
    fn csr_round_trip() {
        let lists = vec![vec![1, 2], vec![0], vec![0], vec![]];
        let adj = Adjacency::from_lists(&lists);
        assert_eq!(adj.len(), 4);
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert_eq!(adj.neighbors(3), &[] as &[u32]);
        assert_eq!(adj.edge_count(), 4);
        assert!(adj.bonded(1, 0));
        assert!(!adj.bonded(3, 0));
    }
}
