//! Component metadata and the paper's Table I.

use std::fmt;

/// Asymptotic complexity class of an analysis action (Table I, col. 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Complexity {
    /// O(n).
    Linear,
    /// O(n²).
    Quadratic,
    /// O(n³).
    Cubic,
}

impl Complexity {
    /// The exponent of the dominant term.
    pub fn exponent(self) -> u32 {
        match self {
            Complexity::Linear => 1,
            Complexity::Quadratic => 2,
            Complexity::Cubic => 3,
        }
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::Linear => write!(f, "O(n)"),
            Complexity::Quadratic => write!(f, "O(n^2)"),
            Complexity::Cubic => write!(f, "O(n^3)"),
        }
    }
}

/// How a component uses the cores/nodes its container provides (Table I,
/// col. 2). The model determines how a container resize is realized:
/// round-robin components gain replicas cheaply, parallel (MPI-style)
/// components require teardown and relaunch, trees re-balance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ComputeModel {
    /// Single instance, one step at a time.
    Serial,
    /// Replicas fed alternating time steps — adds throughput, not per-step
    /// speed.
    RoundRobin,
    /// Data-parallel ranks cooperating on one step — adds per-step speed,
    /// but resizing requires relaunch (MPI semantics).
    Parallel,
    /// Fan-in aggregation tree (the LAMMPS Helper).
    Tree,
}

impl fmt::Display for ComputeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComputeModel::Serial => "Serial",
            ComputeModel::RoundRobin => "RR",
            ComputeModel::Parallel => "Parallel",
            ComputeModel::Tree => "Tree",
        };
        f.write_str(s)
    }
}

/// One row of Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Characteristics {
    /// Component name.
    pub name: &'static str,
    /// Runtime complexity in the atom count.
    pub complexity: Complexity,
    /// Compute models the component supports.
    pub models: &'static [ComputeModel],
    /// Whether the component participates in dynamic pipeline branching.
    pub dynamic_branching: bool,
}

/// A record with one field per SmartPointer component, used to attach
/// per-component data (cost models, allocations, results) by name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Table1Names<T> {
    /// The LAMMPS Helper aggregation tree.
    pub helper: T,
    /// The Bonds neighbor detector.
    pub bonds: T,
    /// The CSym central-symmetry detector.
    pub csym: T,
    /// The CNA structural labeler.
    pub cna: T,
}

impl<T> Table1Names<T> {
    /// Looks a field up by component name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&T> {
        match name.to_ascii_lowercase().as_str() {
            "helper" => Some(&self.helper),
            "bonds" => Some(&self.bonds),
            "csym" => Some(&self.csym),
            "cna" => Some(&self.cna),
            _ => None,
        }
    }

    /// Iterates `(name, value)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &T)> {
        [
            ("Helper", &self.helper),
            ("Bonds", &self.bonds),
            ("CSym", &self.csym),
            ("CNA", &self.cna),
        ]
        .into_iter()
    }
}

/// The four SmartPointer actions exactly as Table I characterizes them.
pub fn table1() -> [Characteristics; 4] {
    use ComputeModel::*;
    [
        Characteristics {
            name: "Helper",
            complexity: Complexity::Linear,
            models: &[Tree],
            dynamic_branching: false,
        },
        Characteristics {
            name: "Bonds",
            complexity: Complexity::Quadratic,
            models: &[Serial, RoundRobin, Parallel],
            dynamic_branching: true,
        },
        Characteristics {
            name: "CSym",
            complexity: Complexity::Linear,
            models: &[Serial, RoundRobin],
            dynamic_branching: false,
        },
        Characteristics {
            name: "CNA",
            complexity: Complexity::Cubic,
            models: &[Serial, RoundRobin],
            dynamic_branching: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t[0].name, "Helper");
        assert_eq!(t[0].complexity, Complexity::Linear);
        assert_eq!(t[0].models, &[ComputeModel::Tree]);
        assert!(!t[0].dynamic_branching);

        assert_eq!(t[1].name, "Bonds");
        assert_eq!(t[1].complexity, Complexity::Quadratic);
        assert!(t[1].dynamic_branching);
        assert_eq!(t[1].models.len(), 3);

        assert_eq!(t[2].name, "CSym");
        assert_eq!(t[2].complexity, Complexity::Linear);

        assert_eq!(t[3].name, "CNA");
        assert_eq!(t[3].complexity, Complexity::Cubic);
        assert_eq!(t[3].models, &[ComputeModel::Serial, ComputeModel::RoundRobin]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Complexity::Quadratic.to_string(), "O(n^2)");
        assert_eq!(ComputeModel::RoundRobin.to_string(), "RR");
        assert_eq!(Complexity::Cubic.exponent(), 3);
    }
}
