//! CNA: common neighbor analysis.
//!
//! Performs the "extensive structural labeling of the atomic environment"
//! the paper describes: every bonded pair is classified by the (ncn, nb,
//! lcb) signature — number of common neighbors, bonds among them, and the
//! longest bond chain — and atoms are labeled FCC / HCP / other from their
//! pair signatures. This is the pipeline's most expensive stage (the
//! paper's O(n³) row in Table I): the chain search over each pair's common
//! neighborhood dominates.

// BTreeMap so the public histogram iterates in a stable order.
use std::collections::BTreeMap;

use crate::bonds::{Adjacency, BondsOutput};

/// CNA pair signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Signature {
    /// Number of common neighbors of the pair.
    pub ncn: u8,
    /// Number of bonds among those common neighbors.
    pub nb: u8,
    /// Length of the longest bond chain among them.
    pub lcb: u8,
}

/// Structural label assigned to an atom.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Structure {
    /// Face-centred cubic environment (12 × (4,2,1) pairs).
    Fcc,
    /// Hexagonal close-packed environment (6 × (4,2,1) + 6 × (4,2,2)).
    Hcp,
    /// Anything else: surfaces, crack faces, defects.
    Other,
}

/// Output of the CNA component.
#[derive(Clone, Debug)]
pub struct CnaOutput {
    /// Step analyzed.
    pub step: u64,
    /// Per-atom structural label.
    pub labels: Vec<Structure>,
    /// Histogram of pair signatures.
    pub signature_counts: BTreeMap<Signature, u64>,
    /// Fraction of atoms labeled FCC.
    pub fcc_fraction: f64,
}

/// The CNA analysis kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cna;

impl Cna {
    /// Runs CNA over the Bonds output.
    pub fn compute(&self, input: &BondsOutput) -> CnaOutput {
        let adj = &input.adjacency;
        let n = adj.len();
        let mut labels = Vec::with_capacity(n);
        let mut signature_counts: BTreeMap<Signature, u64> = BTreeMap::new();

        for i in 0..n {
            let mut sigs: Vec<Signature> = Vec::with_capacity(adj.neighbors(i).len());
            for &j in adj.neighbors(i) {
                let sig = Self::pair_signature(adj, i, j as usize);
                *signature_counts.entry(sig).or_insert(0) += 1;
                sigs.push(sig);
            }
            labels.push(Self::classify(&sigs));
        }

        let fcc = labels.iter().filter(|&&l| l == Structure::Fcc).count();
        let fcc_fraction = if n == 0 { 0.0 } else { fcc as f64 / n as f64 };
        CnaOutput { step: input.snapshot.step, labels, signature_counts, fcc_fraction }
    }

    /// Computes the (ncn, nb, lcb) signature of the bonded pair (i, j).
    fn pair_signature(adj: &Adjacency, i: usize, j: usize) -> Signature {
        // Common neighbors of i and j (both lists are sorted).
        let (a, b) = (adj.neighbors(i), adj.neighbors(j));
        let mut common: Vec<u32> = Vec::with_capacity(8);
        let (mut x, mut y) = (0usize, 0usize);
        while x < a.len() && y < b.len() {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    common.push(a[x]);
                    x += 1;
                    y += 1;
                }
            }
        }

        // Bonds among the common neighbors.
        let m = common.len();
        let mut edges: Vec<(u8, u8)> = Vec::new();
        for p in 0..m {
            for q in (p + 1)..m {
                if adj.bonded(common[p] as usize, common[q]) {
                    edges.push((p as u8, q as u8));
                }
            }
        }

        let lcb = Self::longest_chain(m, &edges);
        Signature { ncn: m as u8, nb: edges.len() as u8, lcb }
    }

    /// Longest simple path (in edges) in the small common-neighbor graph,
    /// found by DFS — the graphs have at most a handful of vertices.
    fn longest_chain(m: usize, edges: &[(u8, u8)]) -> u8 {
        if edges.is_empty() {
            return 0;
        }
        let mut adj: Vec<Vec<u8>> = vec![Vec::new(); m];
        for &(a, b) in edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        fn dfs(adj: &[Vec<u8>], v: u8, visited: &mut u32) -> u8 {
            let mut best = 0;
            *visited |= 1 << v;
            for &w in &adj[v as usize] {
                if *visited & (1 << w) == 0 {
                    best = best.max(1 + dfs(adj, w, visited));
                }
            }
            *visited &= !(1 << v);
            best
        }
        let mut best = 0;
        let mut visited = 0u32;
        for v in 0..m as u8 {
            best = best.max(dfs(&adj, v, &mut visited));
        }
        best
    }

    /// Classifies an atom from its pair signatures.
    fn classify(sigs: &[Signature]) -> Structure {
        if sigs.len() != 12 {
            return Structure::Other;
        }
        let s421 = Signature { ncn: 4, nb: 2, lcb: 1 };
        let s422 = Signature { ncn: 4, nb: 2, lcb: 2 };
        let n421 = sigs.iter().filter(|&&s| s == s421).count();
        let n422 = sigs.iter().filter(|&&s| s == s422).count();
        if n421 == 12 {
            Structure::Fcc
        } else if n421 == 6 && n422 == 6 {
            Structure::Hcp
        } else {
            Structure::Other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bonds::Bonds;
    use mdsim::{MdConfig, MdEngine};

    #[test]
    fn cold_crystal_is_mostly_fcc() {
        let cfg = MdConfig { temperature: 0.01, ..MdConfig::default() };
        let snap = MdEngine::new(cfg).run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = Cna.compute(&bonds);
        assert!(out.fcc_fraction > 0.9, "fcc fraction {}", out.fcc_fraction);
        // The dominant signature must be (4,2,1).
        let (&top, _) =
            out.signature_counts.iter().max_by_key(|&(_, &c)| c).expect("nonempty");
        assert_eq!(top, Signature { ncn: 4, nb: 2, lcb: 1 });
    }

    #[test]
    fn cracked_crystal_gains_other_labels() {
        let cfg = MdConfig {
            temperature: 0.01,
            strain_per_step: 0.005,
            yield_strain: 0.02,
            ..MdConfig::default()
        };
        let mut md = MdEngine::new(cfg);
        md.run(10);
        assert!(md.cracked());
        let snap = md.run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = Cna.compute(&bonds);
        let other = out.labels.iter().filter(|&&l| l == Structure::Other).count();
        assert!(other > 0, "crack faces must be labeled Other");
        assert!(out.fcc_fraction < 1.0);
    }

    #[test]
    fn longest_chain_on_known_graphs() {
        // Path 0-1-2: longest chain 2 edges.
        assert_eq!(Cna::longest_chain(3, &[(0, 1), (1, 2)]), 2);
        // Triangle: longest simple path 2 edges.
        assert_eq!(Cna::longest_chain(3, &[(0, 1), (1, 2), (0, 2)]), 2);
        // Two disjoint edges: 1.
        assert_eq!(Cna::longest_chain(4, &[(0, 1), (2, 3)]), 1);
        // Empty: 0.
        assert_eq!(Cna::longest_chain(2, &[]), 0);
    }

    #[test]
    fn classify_requires_full_shell() {
        let s421 = Signature { ncn: 4, nb: 2, lcb: 1 };
        assert_eq!(Cna::classify(&[s421; 12]), Structure::Fcc);
        assert_eq!(Cna::classify(&[s421; 11]), Structure::Other);
        let s422 = Signature { ncn: 4, nb: 2, lcb: 2 };
        let mut hcp = vec![s421; 6];
        hcp.extend(vec![s422; 6]);
        assert_eq!(Cna::classify(&hcp), Structure::Hcp);
    }

    #[test]
    fn labels_cover_every_atom() {
        let snap = MdEngine::new(MdConfig::default()).run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = Cna.compute(&bonds);
        assert_eq!(out.labels.len(), snap.atom_count());
        assert_eq!(out.step, snap.step);
    }
}
