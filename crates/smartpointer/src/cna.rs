//! CNA: common neighbor analysis.
//!
//! Performs the "extensive structural labeling of the atomic environment"
//! the paper describes: every bonded pair is classified by the (ncn, nb,
//! lcb) signature — number of common neighbors, bonds among them, and the
//! longest bond chain — and atoms are labeled FCC / HCP / other from their
//! pair signatures. This is the pipeline's most expensive stage (the
//! paper's O(n³) row in Table I): the chain search over each pair's common
//! neighborhood dominates.
//!
//! The hot loop is allocation-free: each worker chunk owns one
//! [`CnaScratch`] (a reusable common-neighbor buffer plus a fixed-size
//! bitmask adjacency for the chain search) and one fixed-capacity
//! [`SigAccum`] signature accumulator, so classifying a pair touches no
//! allocator and no shared map. Chunks run under `simpar` and their
//! partials merge in chunk order into the stable public `BTreeMap`, so the
//! output is bit-identical for any `threads` value.

// BTreeMap so the public histogram iterates in a stable order.
use std::collections::BTreeMap;

use crate::bonds::{Adjacency, BondsOutput};

/// CNA pair signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Signature {
    /// Number of common neighbors of the pair.
    pub ncn: u8,
    /// Number of bonds among those common neighbors.
    pub nb: u8,
    /// Length of the longest bond chain among them.
    pub lcb: u8,
}

/// Structural label assigned to an atom.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Structure {
    /// Face-centred cubic environment (12 × (4,2,1) pairs).
    Fcc,
    /// Hexagonal close-packed environment (6 × (4,2,1) + 6 × (4,2,2)).
    Hcp,
    /// Anything else: surfaces, crack faces, defects.
    Other,
}

/// Output of the CNA component.
#[derive(Clone, Debug)]
pub struct CnaOutput {
    /// Step analyzed.
    pub step: u64,
    /// Per-atom structural label.
    pub labels: Vec<Structure>,
    /// Histogram of pair signatures.
    pub signature_counts: BTreeMap<Signature, u64>,
    /// Fraction of atoms labeled FCC.
    pub fcc_fraction: f64,
}

/// The chain search tracks common neighbors in `u32` bitmasks; pairs with
/// more common neighbors than bits exist only in degenerate inputs (a
/// physical shell holds ≤ 12), and excess neighbors are truncated.
const MAX_COMMON: usize = 32;

/// Reusable per-worker scratch for [`Cna::pair_signature`]: the merged
/// common-neighbor list and the bitmask adjacency of the chain search.
/// One instance serves every pair a chunk classifies; `pair_signature`
/// re-initializes exactly the state it reads, so no information leaks
/// from one pair to the next (asserted by the stale-scratch regression
/// test below).
#[derive(Debug)]
struct CnaScratch {
    /// Common neighbors of the current pair (truncated to [`MAX_COMMON`]).
    common: Vec<u32>,
    /// `adj_bits[p]` = bitmask of common-neighbor indices bonded to `p`.
    adj_bits: [u32; MAX_COMMON],
}

impl CnaScratch {
    fn new() -> CnaScratch {
        CnaScratch { common: Vec::with_capacity(MAX_COMMON), adj_bits: [0; MAX_COMMON] }
    }
}

/// Fixed-capacity signature histogram for one worker chunk: a sorted
/// small-vec of `(Signature, count)`, allocated once per chunk and folded
/// into the global `BTreeMap` only at merge time. Real snapshots produce
/// well under a dozen distinct signatures, so the sorted linear insert is
/// cheaper than a map entry per bonded pair.
#[derive(Debug)]
struct SigAccum {
    entries: Vec<(Signature, u64)>,
}

impl SigAccum {
    fn new() -> SigAccum {
        SigAccum { entries: Vec::with_capacity(32) }
    }

    #[inline]
    fn add(&mut self, sig: Signature) {
        match self.entries.binary_search_by(|(s, _)| s.cmp(&sig)) {
            Ok(ix) => self.entries[ix].1 += 1,
            Err(ix) => self.entries.insert(ix, (sig, 1)),
        }
    }

    fn fold_into(self, map: &mut BTreeMap<Signature, u64>) {
        for (sig, count) in self.entries {
            *map.entry(sig).or_insert(0) += count;
        }
    }
}

/// The CNA analysis kernel.
#[derive(Clone, Copy, Debug)]
pub struct Cna {
    /// Worker threads for the per-atom labeling loop (1 = serial).
    pub threads: usize,
}

impl Default for Cna {
    fn default() -> Self {
        Cna { threads: 1 }
    }
}

impl Cna {
    /// Runs CNA over the Bonds output.
    pub fn compute(&self, input: &BondsOutput) -> CnaOutput {
        let adj = &input.adjacency;
        let n = adj.len();

        // Each chunk owns its label slice and signature accumulator; both
        // merge in chunk order, so any thread count produces the same
        // labels, the same histogram, and the same fcc_fraction bits.
        let parts = simpar::map_chunks(n, self.threads, |range| {
            let mut scratch = CnaScratch::new();
            let mut sigs = SigAccum::new();
            let mut labels = Vec::with_capacity(range.len());
            let mut pair_sigs: Vec<Signature> = Vec::with_capacity(16);
            for i in range {
                pair_sigs.clear();
                for &j in adj.neighbors(i) {
                    let sig = Self::pair_signature_with(adj, i, j as usize, &mut scratch);
                    sigs.add(sig);
                    pair_sigs.push(sig);
                }
                labels.push(Self::classify(&pair_sigs));
            }
            (labels, sigs)
        });

        let mut labels = Vec::with_capacity(n);
        let mut signature_counts: BTreeMap<Signature, u64> = BTreeMap::new();
        for (chunk_labels, sigs) in parts {
            labels.extend(chunk_labels);
            sigs.fold_into(&mut signature_counts);
        }

        let fcc = labels.iter().filter(|&&l| l == Structure::Fcc).count();
        let fcc_fraction = if n == 0 { 0.0 } else { fcc as f64 / n as f64 };
        CnaOutput { step: input.snapshot.step, labels, signature_counts, fcc_fraction }
    }

    /// Computes the (ncn, nb, lcb) signature of the bonded pair (i, j)
    /// using caller-owned scratch; allocates nothing.
    fn pair_signature_with(
        adj: &Adjacency,
        i: usize,
        j: usize,
        scratch: &mut CnaScratch,
    ) -> Signature {
        // Common neighbors of i and j (both lists are sorted).
        let (a, b) = (adj.neighbors(i), adj.neighbors(j));
        scratch.common.clear();
        let (mut x, mut y) = (0usize, 0usize);
        while x < a.len() && y < b.len() && scratch.common.len() < MAX_COMMON {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    scratch.common.push(a[x]);
                    x += 1;
                    y += 1;
                }
            }
        }

        // Bonds among the common neighbors, as bitmask adjacency. The
        // whole live region 0..m is zeroed before any bit is set, so state
        // left by the previous pair cannot leak into the chain search.
        let m = scratch.common.len();
        scratch.adj_bits[..m].fill(0);
        let mut nb = 0u8;
        for p in 0..m {
            for q in (p + 1)..m {
                if adj.bonded(scratch.common[p] as usize, scratch.common[q]) {
                    scratch.adj_bits[p] |= 1 << q;
                    scratch.adj_bits[q] |= 1 << p;
                    nb += 1;
                }
            }
        }

        let lcb = Self::longest_chain_bits(m, &scratch.adj_bits);
        Signature { ncn: m as u8, nb, lcb }
    }

    /// Longest simple path (in edges) in the small common-neighbor graph,
    /// found by DFS over bitmask adjacency — the graphs have at most a
    /// handful of vertices and the search allocates nothing.
    fn longest_chain_bits(m: usize, adj_bits: &[u32; MAX_COMMON]) -> u8 {
        fn dfs(adj_bits: &[u32; MAX_COMMON], v: usize, visited: &mut u32) -> u8 {
            let mut best = 0;
            *visited |= 1 << v;
            let mut rest = adj_bits[v] & !*visited;
            while rest != 0 {
                let w = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                best = best.max(1 + dfs(adj_bits, w, visited));
            }
            *visited &= !(1 << v);
            best
        }
        let mut best = 0;
        let mut visited = 0u32;
        for v in 0..m {
            if adj_bits[v] != 0 {
                best = best.max(dfs(adj_bits, v, &mut visited));
            }
        }
        best
    }

    /// Longest simple path (in edges) given an explicit edge list — the
    /// reference form used by tests and exploratory code; the hot loop
    /// uses [`Self::longest_chain_bits`] directly.
    #[doc(hidden)]
    pub fn longest_chain(m: usize, edges: &[(u8, u8)]) -> u8 {
        let mut adj_bits = [0u32; MAX_COMMON];
        for &(a, b) in edges {
            adj_bits[a as usize] |= 1 << b;
            adj_bits[b as usize] |= 1 << a;
        }
        Self::longest_chain_bits(m.min(MAX_COMMON), &adj_bits)
    }

    /// Classifies an atom from its pair signatures.
    fn classify(sigs: &[Signature]) -> Structure {
        if sigs.len() != 12 {
            return Structure::Other;
        }
        let s421 = Signature { ncn: 4, nb: 2, lcb: 1 };
        let s422 = Signature { ncn: 4, nb: 2, lcb: 2 };
        let n421 = sigs.iter().filter(|&&s| s == s421).count();
        let n422 = sigs.iter().filter(|&&s| s == s422).count();
        if n421 == 12 {
            Structure::Fcc
        } else if n421 == 6 && n422 == 6 {
            Structure::Hcp
        } else {
            Structure::Other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bonds::{Adjacency, Bonds};
    use mdsim::{MdConfig, MdEngine};

    #[test]
    fn cold_crystal_is_mostly_fcc() {
        let cfg = MdConfig { temperature: 0.01, ..MdConfig::default() };
        let snap = MdEngine::new(cfg).run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = Cna::default().compute(&bonds);
        assert!(out.fcc_fraction > 0.9, "fcc fraction {}", out.fcc_fraction);
        // The dominant signature must be (4,2,1).
        let (&top, _) =
            out.signature_counts.iter().max_by_key(|&(_, &c)| c).expect("nonempty");
        assert_eq!(top, Signature { ncn: 4, nb: 2, lcb: 1 });
    }

    #[test]
    fn cracked_crystal_gains_other_labels() {
        let cfg = MdConfig {
            temperature: 0.01,
            strain_per_step: 0.005,
            yield_strain: 0.02,
            ..MdConfig::default()
        };
        let mut md = MdEngine::new(cfg);
        md.run(10);
        assert!(md.cracked());
        let snap = md.run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = Cna::default().compute(&bonds);
        let other = out.labels.iter().filter(|&&l| l == Structure::Other).count();
        assert!(other > 0, "crack faces must be labeled Other");
        assert!(out.fcc_fraction < 1.0);
    }

    #[test]
    fn longest_chain_on_known_graphs() {
        // Path 0-1-2: longest chain 2 edges.
        assert_eq!(Cna::longest_chain(3, &[(0, 1), (1, 2)]), 2);
        // Triangle: longest simple path 2 edges.
        assert_eq!(Cna::longest_chain(3, &[(0, 1), (1, 2), (0, 2)]), 2);
        // Two disjoint edges: 1.
        assert_eq!(Cna::longest_chain(4, &[(0, 1), (2, 3)]), 1);
        // Empty: 0.
        assert_eq!(Cna::longest_chain(2, &[]), 0);
        // 5-cycle: longest simple path 4 edges.
        assert_eq!(Cna::longest_chain(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]), 4);
    }

    #[test]
    fn classify_requires_full_shell() {
        let s421 = Signature { ncn: 4, nb: 2, lcb: 1 };
        assert_eq!(Cna::classify(&[s421; 12]), Structure::Fcc);
        assert_eq!(Cna::classify(&[s421; 11]), Structure::Other);
        let s422 = Signature { ncn: 4, nb: 2, lcb: 2 };
        let mut hcp = vec![s421; 6];
        hcp.extend(vec![s422; 6]);
        assert_eq!(Cna::classify(&hcp), Structure::Hcp);
    }

    #[test]
    fn labels_cover_every_atom() {
        let snap = MdEngine::new(MdConfig::default()).run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let out = Cna::default().compute(&bonds);
        assert_eq!(out.labels.len(), snap.atom_count());
        assert_eq!(out.step, snap.step);
    }

    /// The classic stale-scratch bug: after classifying a pair with a rich
    /// common neighborhood, a pair with a *disjoint* (and smaller)
    /// neighborhood must see none of the previous pair's state. Atoms
    /// 0..=5 form a bonded clique-ish cluster; atoms 6..=8 a separate
    /// triangle sharing no atoms with it. Signatures computed through one
    /// reused scratch must equal signatures computed through fresh scratch.
    #[test]
    fn scratch_reuse_does_not_leak_between_pairs() {
        let lists: Vec<Vec<u32>> = vec![
            vec![1, 2, 3, 4, 5], // 0: bonded to the whole first cluster
            vec![0, 2, 3, 4, 5],
            vec![0, 1, 3],
            vec![0, 1, 2],
            vec![0, 1, 5],
            vec![0, 1, 4],
            vec![7, 8], // 6: disjoint triangle
            vec![6, 8],
            vec![6, 7],
        ];
        let adj = Adjacency::from_lists(&lists);

        // Visit a "rich" pair first so the scratch carries a large common
        // neighborhood and dense adj_bits, then a disjoint "poor" pair.
        let pairs = [(0usize, 1usize), (6, 7), (0, 2), (7, 8), (1, 4), (8, 6)];
        let mut reused = CnaScratch::new();
        for &(i, j) in &pairs {
            let with_reuse = Cna::pair_signature_with(&adj, i, j, &mut reused);
            let fresh = Cna::pair_signature_with(&adj, i, j, &mut CnaScratch::new());
            assert_eq!(with_reuse, fresh, "stale scratch leaked into pair ({i},{j})");
        }

        // And the exact expected values for the disjoint triangle: (6,7)
        // share only atom 8, which has no bonds among "them" (a single
        // common neighbor has no pairs).
        let sig = Cna::pair_signature_with(&adj, 6, 7, &mut reused);
        assert_eq!(sig, Signature { ncn: 1, nb: 0, lcb: 0 });
    }

    /// Labels, histogram, and the fcc_fraction bit pattern are identical
    /// for any thread count.
    #[test]
    fn parallel_cna_is_bit_identical() {
        let cfg = MdConfig {
            temperature: 0.02,
            strain_per_step: 0.005,
            yield_strain: 0.02,
            ..MdConfig::default()
        };
        let mut md = MdEngine::new(cfg);
        md.run(10); // crosses the yield strain: crack faces present
        let snap = md.run_epoch(1);
        let bonds = Bonds::default().compute(&snap);
        let serial = Cna { threads: 1 }.compute(&bonds);
        for threads in [2usize, 3, 8] {
            let parallel = Cna { threads }.compute(&bonds);
            assert_eq!(serial.labels, parallel.labels, "threads={threads}");
            assert_eq!(serial.signature_counts, parallel.signature_counts);
            assert_eq!(
                serial.fcc_fraction.to_bits(),
                parallel.fcc_fraction.to_bits(),
                "threads={threads}"
            );
        }
    }
}
