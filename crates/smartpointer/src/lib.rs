//! # smartpointer — the analytics toolkit
//!
//! A reimplementation of the SmartPointer analysis actions the paper runs
//! inside I/O containers, with the exact characteristics of its Table I:
//!
//! | Component | Complexity | Compute model        | Dynamic branching |
//! |-----------|-----------|----------------------|-------------------|
//! | Helper    | O(n)      | Tree                 | no                |
//! | Bonds     | O(n²)     | Serial, RR, Parallel | yes               |
//! | CSym      | O(n)      | Serial, RR           | no                |
//! | CNA       | O(n³)     | Serial, RR           | no                |
//!
//! All four are *real* kernels operating on [`mdsim::Snapshot`] atom data:
//! the aggregation tree merges rank chunks, Bonds builds the bonded-pair
//! adjacency, CSym computes centro-symmetry and detects crack formation
//! (the event that triggers the pipeline's dynamic branch), and CNA labels
//! atomic environments FCC/HCP/other. [`cost`] supplies the calibrated
//! service-time models the discrete-event experiments charge at paper
//! scale.
//!
//! Bonds, CSym and CNA each carry a `threads` knob and parallelize over
//! atoms via `simpar`'s deterministic chunking: per-chunk outputs merge in
//! chunk order, so adjacency, CSP values, labels and signature histograms
//! are bit-identical for every thread count.
//!
//! ## Example
//! ```
//! use mdsim::{MdConfig, MdEngine};
//! use smartpointer::{AggregationTree, Bonds, CSym, Cna, split_snapshot};
//!
//! let mut md = MdEngine::new(MdConfig::default());
//! let snap = md.run_epoch(2);
//!
//! // Helper: aggregate the per-rank chunks.
//! let merged = AggregationTree::new(4).aggregate(split_snapshot(&snap, 8));
//! // Bonds -> CSym -> CNA.
//! let bonds = Bonds::default().compute(&merged);
//! let csym = CSym::default().compute(&bonds);
//! assert!(!csym.break_detected); // pristine crystal
//! let cna = Cna::default().compute(&bonds);
//! assert!(cna.fcc_fraction > 0.9);
//! ```

#![warn(missing_docs)]

mod bonds;
mod cna;
mod component;
pub mod cost;
mod csym;
pub mod fragments;
mod helper;
pub mod rdf;

pub use bonds::{Adjacency, Bonds, BondsOutput};
pub use cna::{Cna, CnaOutput, Signature, Structure};
pub use component::{table1, Characteristics, Complexity, ComputeModel, Table1Names};
pub use cost::{default_models, ServiceModel};
pub use csym::{CSym, CSymOutput};
pub use fragments::{FragmentFinder, FragmentTracker, Fragments, TrackEvent};
pub use helper::{split_snapshot, AggregationTree};
pub use rdf::{Rdf, RdfOutput};
