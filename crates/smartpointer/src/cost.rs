//! Calibrated service-time models for the discrete-event experiments.
//!
//! The paper-scale runs (8.8M–35.3M atoms) cannot execute the real kernels
//! inside a unit-test-speed simulation, so the DES charges each component a
//! service time from these models. The shapes follow Table I's complexity
//! column; the coefficients are chosen so the three Table II configurations
//! reproduce the paper's qualitative outcomes:
//!
//! * 256 sim nodes: Bonds (≈19 s/step) just misses the 15 s cadence on one
//!   replica and converges after stealing one node from Helper (Fig. 7);
//! * 512 sim nodes: Bonds (≈78 s/step) converges only after consuming the
//!   4 spare staging nodes (Fig. 8);
//! * 1024 sim nodes: Bonds (≈311 s/step) cannot converge within the
//!   staging area and is taken offline together with its dependents
//!   (Fig. 9/10). CSym (≈28 s/step) also exceeds the cadence here.

use sim_core::SimDuration;

use crate::component::{ComputeModel, Table1Names};

/// Service-time model: `t(n) = coeff_s · (n/1e6)^exponent` seconds.
#[derive(Clone, Copy, Debug)]
pub struct ServiceModel {
    /// Seconds per (million atoms)^exponent.
    pub coeff_s: f64,
    /// Complexity exponent (Table I).
    pub exponent: f64,
    /// Fraction of ideal speedup retained per extra rank under the
    /// `Parallel` compute model (1.0 = perfect scaling).
    pub parallel_efficiency: f64,
}

impl ServiceModel {
    /// Service time for one step on a single instance.
    pub fn step_time(&self, atoms: u64) -> SimDuration {
        let x = atoms as f64 / 1e6;
        SimDuration::from_secs_f64(self.coeff_s * x.powf(self.exponent))
    }

    /// Service time for one step given `units` resource units under the
    /// given compute model:
    /// * `Serial` — per-step time is the single-instance time;
    /// * `RoundRobin` — replicas alternate steps: per-step time unchanged
    ///   (throughput scales instead);
    /// * `Parallel`/`Tree` — ranks (or tree levels) cooperate on one step:
    ///   time divides by the effective speedup `1 + eff·(units-1)`.
    pub fn step_time_with(&self, atoms: u64, model: ComputeModel, units: u32) -> SimDuration {
        let base = self.step_time(atoms);
        match model {
            ComputeModel::Serial | ComputeModel::RoundRobin => base,
            ComputeModel::Parallel | ComputeModel::Tree => {
                let units = units.max(1) as f64;
                let speedup = 1.0 + self.parallel_efficiency * (units - 1.0);
                base.mul_f64(1.0 / speedup)
            }
        }
    }

    /// Sustained throughput in steps/second given `units` resource units.
    /// Round-robin replication multiplies throughput; parallel ranks divide
    /// per-step time.
    pub fn throughput(&self, atoms: u64, model: ComputeModel, units: u32) -> f64 {
        let units = units.max(1);
        match model {
            ComputeModel::RoundRobin => {
                units as f64 / self.step_time(atoms).as_secs_f64().max(1e-12)
            }
            _ => 1.0 / self.step_time_with(atoms, model, units).as_secs_f64().max(1e-12),
        }
    }

    /// Resource units needed to sustain one step every `cadence`.
    pub fn units_to_sustain(
        &self,
        atoms: u64,
        model: ComputeModel,
        cadence: SimDuration,
    ) -> u32 {
        let need = self.step_time(atoms).as_secs_f64() / cadence.as_secs_f64();
        match model {
            ComputeModel::RoundRobin => need.ceil().max(1.0) as u32,
            ComputeModel::Parallel | ComputeModel::Tree => {
                if need <= 1.0 {
                    1
                } else {
                    (((need - 1.0) / self.parallel_efficiency) + 1.0).ceil() as u32
                }
            }
            ComputeModel::Serial => 1, // serial cannot be helped by more units
        }
    }
}

/// Default calibrated models for the four SmartPointer components.
pub fn default_models() -> Table1Names<ServiceModel> {
    Table1Names {
        helper: ServiceModel { coeff_s: 0.35, exponent: 1.0, parallel_efficiency: 0.9 },
        bonds: ServiceModel { coeff_s: 0.25, exponent: 2.0, parallel_efficiency: 0.85 },
        csym: ServiceModel { coeff_s: 0.8, exponent: 1.0, parallel_efficiency: 0.9 },
        cna: ServiceModel { coeff_s: 0.02, exponent: 3.0, parallel_efficiency: 0.8 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::atoms_for_nodes;

    const CADENCE: SimDuration = SimDuration::from_secs(15);

    #[test]
    fn bonds_misses_cadence_at_256_on_one_replica() {
        let m = default_models().bonds;
        let atoms = atoms_for_nodes(256);
        let t = m.step_time(atoms);
        assert!(t > CADENCE, "bonds at 256 must exceed cadence: {t}");
        assert!(t < CADENCE * 2, "but only just: {t}");
        assert_eq!(m.units_to_sustain(atoms, ComputeModel::RoundRobin, CADENCE), 2);
    }

    #[test]
    fn bonds_needs_spares_at_512() {
        let m = default_models().bonds;
        let atoms = atoms_for_nodes(512);
        let needed = m.units_to_sustain(atoms, ComputeModel::RoundRobin, CADENCE);
        assert!((5..=7).contains(&needed), "512-node bonds needs ~6 replicas, got {needed}");
    }

    #[test]
    fn bonds_cannot_converge_at_1024() {
        let m = default_models().bonds;
        let atoms = atoms_for_nodes(1024);
        let needed = m.units_to_sustain(atoms, ComputeModel::RoundRobin, CADENCE);
        assert!(needed > 20, "1024-node bonds must be hopeless, got {needed}");
    }

    #[test]
    fn csym_fits_at_512_but_not_1024() {
        let m = default_models().csym;
        assert!(m.step_time(atoms_for_nodes(512)) < CADENCE);
        assert!(m.step_time(atoms_for_nodes(1024)) > CADENCE);
    }

    #[test]
    fn helper_is_overprovisioned_everywhere() {
        let m = default_models().helper;
        for nodes in [256, 512, 1024] {
            let t = m.step_time(atoms_for_nodes(nodes));
            assert!(t < CADENCE, "helper at {nodes}: {t}");
        }
    }

    #[test]
    fn round_robin_multiplies_throughput_not_speed() {
        let m = default_models().bonds;
        let atoms = atoms_for_nodes(256);
        let t1 = m.step_time_with(atoms, ComputeModel::RoundRobin, 1);
        let t4 = m.step_time_with(atoms, ComputeModel::RoundRobin, 4);
        assert_eq!(t1, t4, "RR must not change per-step time");
        let th1 = m.throughput(atoms, ComputeModel::RoundRobin, 1);
        let th4 = m.throughput(atoms, ComputeModel::RoundRobin, 4);
        assert!((th4 / th1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_divides_step_time() {
        let m = default_models().bonds;
        let atoms = atoms_for_nodes(256);
        let t1 = m.step_time_with(atoms, ComputeModel::Parallel, 1);
        let t4 = m.step_time_with(atoms, ComputeModel::Parallel, 4);
        assert!(t4 < t1.mul_f64(0.4), "4 ranks should give >2.5x: {t1} -> {t4}");
    }

    #[test]
    fn units_to_sustain_parallel_accounts_for_efficiency() {
        let m = ServiceModel { coeff_s: 30.0, exponent: 0.0, parallel_efficiency: 0.5 };
        // 30 s step, 15 s cadence: need speedup 2 => 1 + 0.5(u-1) >= 2 => u >= 3.
        assert_eq!(m.units_to_sustain(1_000_000, ComputeModel::Parallel, CADENCE), 3);
    }
}
