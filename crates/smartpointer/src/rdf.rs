//! Radial distribution function (pair-correlation) analysis.
//!
//! A staple of the molecular-data portals SmartPointer descends from:
//! g(r) histograms the pair distances and normalizes by the ideal-gas
//! expectation, revealing the crystal's shell structure (sharp peaks at
//! the FCC neighbor distances) or its loss on melting/fracture. O(n²)
//! over pairs within the histogram range; thread-parallel over atoms.

use mdsim::Snapshot;

/// A computed g(r) histogram.
#[derive(Clone, Debug)]
pub struct RdfOutput {
    /// Step analyzed.
    pub step: u64,
    /// Bin centers (r values).
    pub r: Vec<f64>,
    /// g(r) per bin.
    pub g: Vec<f64>,
    /// Raw pair counts per bin.
    pub counts: Vec<u64>,
}

impl RdfOutput {
    /// The r of the highest g(r) peak (the nearest-neighbor distance in a
    /// condensed phase).
    pub fn first_peak(&self) -> Option<f64> {
        self.g
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite g(r)"))
            .map(|(ix, _)| self.r[ix])
    }
}

/// The RDF kernel.
#[derive(Clone, Copy, Debug)]
pub struct Rdf {
    /// Histogram range (max r).
    pub r_max: f64,
    /// Number of bins.
    pub bins: usize,
    /// Worker threads (1 = serial).
    pub threads: usize,
}

impl Default for Rdf {
    fn default() -> Self {
        Rdf { r_max: 3.0, bins: 120, threads: 1 }
    }
}

impl Rdf {
    /// Computes g(r) for a snapshot.
    ///
    /// # Panics
    /// Panics if `r_max` exceeds half the smallest box length (the
    /// minimum-image convention breaks beyond that).
    pub fn compute(&self, snap: &Snapshot) -> RdfOutput {
        let min_box = snap.box_len.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            self.r_max <= 0.5 * min_box + 1e-9,
            "r_max {} exceeds half the box ({})",
            self.r_max,
            0.5 * min_box
        );
        let n = snap.atom_count();
        let dr = self.r_max / self.bins as f64;
        let r_max2 = self.r_max * self.r_max;

        let count_range = |range: std::ops::Range<usize>| -> Vec<u64> {
            let mut counts = vec![0u64; self.bins];
            for i in range {
                for j in (i + 1)..n {
                    let d2 = snap.dist2(i, j);
                    if d2 < r_max2 {
                        let bin = (d2.sqrt() / dr) as usize;
                        counts[bin.min(self.bins - 1)] += 1;
                    }
                }
            }
            counts
        };

        let counts: Vec<u64> = if self.threads <= 1 || n < 2 {
            count_range(0..n)
        } else {
            let threads = self.threads.min(n);
            // Interleaved ranges would balance better, but contiguous
            // chunks keep determinism trivial; the early rows are longer,
            // so give thread t the rows t, t+T, t+2T... by striding.
            let mut partials: Vec<Vec<u64>> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    let count_stride = |start: usize| -> Vec<u64> {
                        let mut counts = vec![0u64; self.bins];
                        let mut i = start;
                        while i < n {
                            for j in (i + 1)..n {
                                let d2 = snap.dist2(i, j);
                                if d2 < r_max2 {
                                    let bin = (d2.sqrt() / dr) as usize;
                                    counts[bin.min(self.bins - 1)] += 1;
                                }
                            }
                            i += threads;
                        }
                        counts
                    };
                    handles.push(scope.spawn(move || count_stride(t)));
                }
                for h in handles {
                    partials.push(h.join().expect("rdf worker panicked"));
                }
            });
            let mut total = vec![0u64; self.bins];
            for p in partials {
                for (t, c) in total.iter_mut().zip(p) {
                    *t += c;
                }
            }
            total
        };

        // Normalize against the ideal gas: g(r) = counts / (N * rho * V_shell / 2).
        let volume: f64 = snap.box_len.iter().product();
        let rho = n as f64 / volume;
        let mut r = Vec::with_capacity(self.bins);
        let mut g = Vec::with_capacity(self.bins);
        for (ix, &c) in counts.iter().enumerate() {
            let r_lo = ix as f64 * dr;
            let r_hi = r_lo + dr;
            let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
            let ideal_pairs = 0.5 * n as f64 * rho * shell;
            r.push(r_lo + 0.5 * dr);
            g.push(if ideal_pairs > 0.0 { c as f64 / ideal_pairs } else { 0.0 });
        }

        RdfOutput { step: snap.step, r, g, counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::{MdConfig, MdEngine};

    fn cold_snapshot() -> Snapshot {
        MdEngine::new(MdConfig { temperature: 0.02, ..MdConfig::default() }).run_epoch(1)
    }

    #[test]
    fn fcc_first_peak_is_at_nearest_neighbor_distance() {
        let snap = cold_snapshot();
        let out = Rdf::default().compute(&snap);
        let peak = out.first_peak().expect("peaked g(r)");
        // FCC nearest neighbor: a/sqrt(2) = 1.5874/1.414 ≈ 1.1225.
        let expect = 1.5874 / 2f64.sqrt();
        assert!((peak - expect).abs() < 0.1, "first peak {peak} vs {expect}");
    }

    #[test]
    fn g_of_r_vanishes_inside_the_core() {
        let snap = cold_snapshot();
        let out = Rdf::default().compute(&snap);
        // No pairs closer than ~0.8 sigma in a crystal.
        for (r, g) in out.r.iter().zip(&out.g) {
            if *r < 0.8 {
                assert_eq!(*g, 0.0, "core penetration at r={r}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let snap = cold_snapshot();
        let serial = Rdf { threads: 1, ..Rdf::default() }.compute(&snap);
        let parallel = Rdf { threads: 4, ..Rdf::default() }.compute(&snap);
        assert_eq!(serial.counts, parallel.counts);
    }

    #[test]
    fn total_counts_equal_pairs_in_range() {
        let snap = cold_snapshot();
        let rdf = Rdf { r_max: 2.0, bins: 40, threads: 1 };
        let out = rdf.compute(&snap);
        let mut brute = 0u64;
        for i in 0..snap.atom_count() {
            for j in (i + 1)..snap.atom_count() {
                if snap.dist2(i, j) < 4.0 {
                    brute += 1;
                }
            }
        }
        assert_eq!(out.counts.iter().sum::<u64>(), brute);
    }

    #[test]
    #[should_panic(expected = "exceeds half the box")]
    fn r_max_beyond_half_box_rejected() {
        let snap = cold_snapshot();
        let _ = Rdf { r_max: 100.0, ..Rdf::default() }.compute(&snap);
    }
}
