//! LAMMPS Helper: the fan-in aggregation tree.
//!
//! The parallel simulation's ranks each output a chunk of the atom data;
//! Helper merges them back into one coherent snapshot through a tree whose
//! fan-in is bounded by how much data a node can buffer. O(n) work.

use std::sync::Arc;

use mdsim::Snapshot;

/// Splits a snapshot into `parts` contiguous chunks, emulating the
/// per-rank outputs of the domain-decomposed simulation.
pub fn split_snapshot(snap: &Snapshot, parts: usize) -> Vec<Snapshot> {
    assert!(parts > 0, "need at least one part");
    let n = snap.atom_count();
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    for p in 0..parts {
        let lo = (p * chunk).min(n);
        let hi = ((p + 1) * chunk).min(n);
        out.push(Snapshot {
            step: snap.step,
            md_step: snap.md_step,
            box_len: snap.box_len,
            ids: Arc::new(snap.ids[lo..hi].to_vec()),
            pos: Arc::new(snap.pos[lo..hi].to_vec()),
            strain: snap.strain,
        });
    }
    out
}

/// The aggregation tree. `fan_in` bounds how many inputs one tree node
/// merges at a time; the tree depth follows from chunk count and fan-in.
#[derive(Clone, Debug)]
pub struct AggregationTree {
    fan_in: usize,
}

impl AggregationTree {
    /// Creates a tree with the given fan-in.
    ///
    /// # Panics
    /// Panics if `fan_in < 2`.
    pub fn new(fan_in: usize) -> AggregationTree {
        assert!(fan_in >= 2, "fan-in must be at least 2");
        AggregationTree { fan_in }
    }

    /// Tree depth needed to merge `leaves` inputs.
    pub fn depth(&self, leaves: usize) -> u32 {
        if leaves <= 1 {
            return 0;
        }
        let mut depth = 0;
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(self.fan_in);
            depth += 1;
        }
        depth
    }

    /// Number of internal merge nodes used for `leaves` inputs.
    pub fn internal_nodes(&self, leaves: usize) -> usize {
        let mut total = 0;
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(self.fan_in);
            total += width;
        }
        total
    }

    fn merge(&self, chunks: &[Snapshot]) -> Snapshot {
        let first = &chunks[0];
        let total: usize = chunks.iter().map(|c| c.atom_count()).sum();
        let mut ids = Vec::with_capacity(total);
        let mut pos = Vec::with_capacity(total);
        for c in chunks {
            debug_assert_eq!(c.step, first.step, "cannot merge chunks of different steps");
            ids.extend_from_slice(&c.ids);
            pos.extend_from_slice(&c.pos);
        }
        Snapshot {
            step: first.step,
            md_step: first.md_step,
            box_len: first.box_len,
            ids: Arc::new(ids),
            pos: Arc::new(pos),
            strain: first.strain,
        }
    }

    /// Aggregates rank chunks into one snapshot, merging level by level
    /// exactly as the tree topology would.
    ///
    /// # Panics
    /// Panics on an empty input.
    pub fn aggregate(&self, mut chunks: Vec<Snapshot>) -> Snapshot {
        assert!(!chunks.is_empty(), "nothing to aggregate");
        while chunks.len() > 1 {
            chunks = chunks.chunks(self.fan_in).map(|group| self.merge(group)).collect();
        }
        chunks.pop().expect("loop leaves exactly one")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::{MdConfig, MdEngine};

    fn snapshot() -> Snapshot {
        MdEngine::new(MdConfig::default()).run_epoch(1)
    }

    #[test]
    fn split_then_aggregate_is_identity() {
        let snap = snapshot();
        let chunks = split_snapshot(&snap, 7);
        assert_eq!(chunks.len(), 7);
        let merged = AggregationTree::new(2).aggregate(chunks);
        assert_eq!(*merged.ids, *snap.ids);
        assert_eq!(*merged.pos, *snap.pos);
        assert_eq!(merged.step, snap.step);
    }

    #[test]
    fn split_preserves_total_atoms() {
        let snap = snapshot();
        let chunks = split_snapshot(&snap, 5);
        let total: usize = chunks.iter().map(|c| c.atom_count()).sum();
        assert_eq!(total, snap.atom_count());
    }

    #[test]
    fn depth_follows_fan_in() {
        let t2 = AggregationTree::new(2);
        assert_eq!(t2.depth(1), 0);
        assert_eq!(t2.depth(2), 1);
        assert_eq!(t2.depth(8), 3);
        assert_eq!(t2.depth(9), 4);
        let t4 = AggregationTree::new(4);
        assert_eq!(t4.depth(16), 2);
        assert_eq!(t4.depth(17), 3);
    }

    #[test]
    fn internal_nodes_counted() {
        let t2 = AggregationTree::new(2);
        // 4 leaves -> 2 + 1 merges.
        assert_eq!(t2.internal_nodes(4), 3);
        assert_eq!(t2.internal_nodes(1), 0);
    }

    #[test]
    fn aggregate_single_chunk_passthrough() {
        let snap = snapshot();
        let merged = AggregationTree::new(2).aggregate(vec![snap.clone()]);
        assert_eq!(*merged.ids, *snap.ids);
    }
}
