//! Portals-class interconnect model.
//!
//! The management protocols measured in the paper are dominated by message
//! rounds and bulk-transfer times, so the model captures exactly those
//! quantities: per-message wire latency (optionally topology-dependent),
//! per-NIC serialization (a NIC moves one transfer at a time, so concurrent
//! transfers through the same endpoint queue), and bandwidth-limited bulk
//! payload time. The model is deterministic and runs on the [`sim_core`]
//! kernel.

// BTreeMap keeps per-NIC state in a deterministically ordered container so
// no future iteration over it can leak hash order into event scheduling.
use std::collections::BTreeMap;

use sim_core::{Shared, Sim, SimDuration, SimTime};
use simtel::{Category, Telemetry};

use crate::cluster::NodeId;

/// Interconnect topology, used to derive per-message hop counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Uniform latency between any pair of distinct nodes.
    Flat,
    /// 3-D torus with the given dimensions (RedSky-style). Nodes are mapped
    /// to coordinates in row-major order; hop count is the Manhattan
    /// distance with wraparound.
    Torus3D {
        /// Torus dimensions (x, y, z); node ids map row-major.
        dims: (u32, u32, u32),
    },
}

impl Topology {
    /// Network hops between two nodes under this topology.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Flat => 1,
            Topology::Torus3D { dims } => {
                let ca = Self::coords(a, dims);
                let cb = Self::coords(b, dims);
                Self::axis_dist(ca.0, cb.0, dims.0)
                    + Self::axis_dist(ca.1, cb.1, dims.1)
                    + Self::axis_dist(ca.2, cb.2, dims.2)
            }
        }
    }

    fn coords(n: NodeId, dims: (u32, u32, u32)) -> (u32, u32, u32) {
        let id = n.0;
        let x = id % dims.0;
        let y = (id / dims.0) % dims.1;
        let z = (id / (dims.0 * dims.1)) % dims.2;
        (x, y, z)
    }

    fn axis_dist(a: u32, b: u32, dim: u32) -> u32 {
        let d = a.abs_diff(b);
        d.min(dim - d)
    }
}

/// Tunable constants of the interconnect model.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Base one-way wire latency for the first hop.
    pub base_latency: SimDuration,
    /// Additional latency per extra hop.
    pub per_hop_latency: SimDuration,
    /// Sustained point-to-point bandwidth per NIC, bytes/second.
    pub bandwidth_bps: u64,
    /// Fixed software overhead charged to both endpoints per message
    /// (matching/event handling in the Portals stack).
    pub sw_overhead: SimDuration,
    /// Topology used for hop counts.
    pub topology: Topology,
}

impl NetworkConfig {
    /// Constants calibrated to the Cray XT4 SeaStar/Portals generation:
    /// ~6 µs small-message latency, ~1.6 GB/s sustained point-to-point.
    pub fn portals_xt4() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_micros(6),
            per_hop_latency: SimDuration::from_nanos(50),
            bandwidth_bps: 1_600_000_000,
            sw_overhead: SimDuration::from_micros(1),
            topology: Topology::Flat,
        }
    }

    /// Constants for RedSky's QDR InfiniBand 3-D torus: ~1.3 µs latency,
    /// ~3.2 GB/s.
    pub fn qdr_torus(dims: (u32, u32, u32)) -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_micros(1),
            per_hop_latency: SimDuration::from_nanos(100),
            bandwidth_bps: 3_200_000_000,
            sw_overhead: SimDuration::from_nanos(500),
            topology: Topology::Torus3D { dims },
        }
    }

    /// Pure wire time for `bytes` between `src` and `dst` with no queueing.
    pub fn wire_time(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimDuration {
        let hops = self.topology.hops(src, dst) as u64;
        let lat = self.base_latency + self.per_hop_latency * hops.saturating_sub(1);
        let payload =
            SimDuration::from_nanos((bytes.saturating_mul(1_000_000_000)) / self.bandwidth_bps);
        lat + payload + self.sw_overhead
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct NicState {
    tx_free: SimTime,
    rx_free: SimTime,
    tx_busy: SimDuration,
    rx_busy: SimDuration,
}

/// Aggregate traffic counters, for reporting and contention analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages delivered (control + bulk).
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

/// The interconnect. Lives in a [`Shared`] cell so completion callbacks can
/// reach it from inside kernel events.
pub struct Network {
    cfg: NetworkConfig,
    nics: BTreeMap<NodeId, NicState>,
    stats: NetStats,
    telemetry: Telemetry,
}

/// Shared handle to a [`Network`].
pub type Net = Shared<Network>;

impl Network {
    /// Creates a network with the given constants.
    pub fn new(cfg: NetworkConfig) -> Net {
        Network::with_telemetry(cfg, Telemetry::disabled())
    }

    /// Creates a network that records link activity through `telemetry`
    /// (per-NIC transfer spans plus `net.messages` / `net.bytes` totals,
    /// all under [`Category::Net`]).
    pub fn with_telemetry(cfg: NetworkConfig, telemetry: Telemetry) -> Net {
        sim_core::shared(Network {
            cfg,
            nics: BTreeMap::new(),
            stats: NetStats::default(),
            telemetry,
        })
    }

    /// The configured constants.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn nic(&mut self, n: NodeId) -> &mut NicState {
        self.nics.entry(n).or_default()
    }

    /// Cumulative (transmit, receive) busy time of a node's NIC — the raw
    /// input to link-utilization monitoring and contention analysis.
    pub fn busy_time(&self, n: NodeId) -> (SimDuration, SimDuration) {
        self.nics
            .get(&n)
            .map(|nic| (nic.tx_busy, nic.rx_busy))
            .unwrap_or((SimDuration::ZERO, SimDuration::ZERO))
    }

    /// NIC utilization of a node over the first `elapsed` of the run,
    /// as (tx, rx) fractions in [0, 1].
    pub fn utilization(&self, n: NodeId, elapsed: SimDuration) -> (f64, f64) {
        let (tx, rx) = self.busy_time(n);
        if elapsed.is_zero() {
            return (0.0, 0.0);
        }
        ((tx / elapsed).min(1.0), (rx / elapsed).min(1.0))
    }

    /// Schedules delivery of `bytes` from `src` to `dst`, invoking
    /// `on_delivered` at the (virtual) completion time.
    ///
    /// The transfer starts when both the sender's TX path and the receiver's
    /// RX path are idle — this is what makes concurrent transfers through a
    /// shared endpoint queue, the contention effect DataStager's scheduled
    /// pulls exist to mitigate.
    ///
    /// Returns the delivery time.
    pub fn transfer(
        net: &Net,
        sim: &mut Sim,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        on_delivered: impl FnOnce(&mut Sim) + 'static,
    ) -> SimTime {
        let now = sim.now();
        let finish = {
            let mut n = net.borrow_mut();
            let start = now.max(n.nic(src).tx_free).max(n.nic(dst).rx_free);
            let wire = n.cfg.wire_time(src, dst, bytes);
            let finish = start + wire;
            {
                let nic = n.nic(src);
                nic.tx_free = finish;
                nic.tx_busy += wire;
            }
            {
                let nic = n.nic(dst);
                nic.rx_free = finish;
                nic.rx_busy += wire;
            }
            n.stats.messages += 1;
            n.stats.bytes += bytes;
            if n.telemetry.enabled(Category::Net) {
                let track = format!("nic{}.tx", src.0);
                n.telemetry.span(Category::Net, &track, "xfer", start, finish);
                let track = format!("nic{}.rx", dst.0);
                n.telemetry.span(Category::Net, &track, "xfer", start, finish);
                n.telemetry.count(Category::Net, "net.messages", 1);
                n.telemetry.count(Category::Net, "net.bytes", bytes);
            }
            finish
        };
        sim.schedule_at_named("net.deliver", finish, on_delivered);
        finish
    }

    /// Sends a small control message (64 bytes of header/payload).
    pub fn send_control(
        net: &Net,
        sim: &mut Sim,
        src: NodeId,
        dst: NodeId,
        on_delivered: impl FnOnce(&mut Sim) + 'static,
    ) -> SimTime {
        Self::transfer(net, sim, src, dst, 64, on_delivered)
    }

    /// Models an RDMA get: `reader` pulls `bytes` that reside on `holder`.
    /// One control message travels to the holder, then the payload flows
    /// back. `on_complete` fires at the reader once the payload lands.
    pub fn rdma_get(
        net: &Net,
        sim: &mut Sim,
        reader: NodeId,
        holder: NodeId,
        bytes: u64,
        on_complete: impl FnOnce(&mut Sim) + 'static,
    ) {
        let net2 = net.clone();
        Self::send_control(net, sim, reader, holder, move |sim| {
            Network::transfer(&net2, sim, holder, reader, bytes, on_complete);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::shared;

    fn fast_cfg() -> NetworkConfig {
        NetworkConfig {
            base_latency: SimDuration::from_micros(1),
            per_hop_latency: SimDuration::ZERO,
            bandwidth_bps: 1_000_000_000, // 1 GB/s => 1 byte/ns
            sw_overhead: SimDuration::ZERO,
            topology: Topology::Flat,
        }
    }

    #[test]
    fn wire_time_is_latency_plus_payload() {
        let cfg = fast_cfg();
        let t = cfg.wire_time(NodeId(0), NodeId(1), 1_000_000);
        // 1 us latency + 1 ms payload at 1 byte/ns.
        assert_eq!(t, SimDuration::from_micros(1) + SimDuration::from_millis(1));
    }

    #[test]
    fn transfer_delivers_at_wire_time() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let done = shared(None);
        let d = done.clone();
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 1_000, move |sim| {
            *d.borrow_mut() = Some(sim.now());
        });
        sim.run();
        assert_eq!(
            *done.borrow(),
            Some(SimTime::ZERO + SimDuration::from_micros(1) + SimDuration::from_micros(1))
        );
    }

    #[test]
    fn concurrent_transfers_to_one_receiver_serialize() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let times = shared(Vec::new());
        for src in 1..=3u32 {
            let times = times.clone();
            Network::transfer(&net, &mut sim, NodeId(src), NodeId(0), 1_000_000, move |sim| {
                times.borrow_mut().push(sim.now());
            });
        }
        sim.run();
        let times = times.borrow();
        assert_eq!(times.len(), 3);
        // Each ~1ms payload serializes through node 0's RX path.
        let spacing = times[1] - times[0];
        assert!(spacing >= SimDuration::from_millis(1), "no serialization: {spacing}");
        assert_eq!(net.borrow().stats().messages, 3);
        assert_eq!(net.borrow().stats().bytes, 3_000_000);
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let times = shared(Vec::new());
        for pair in 0..3u32 {
            let times = times.clone();
            Network::transfer(
                &net,
                &mut sim,
                NodeId(pair * 2),
                NodeId(pair * 2 + 1),
                1_000_000,
                move |sim| times.borrow_mut().push(sim.now()),
            );
        }
        sim.run();
        let times = times.borrow();
        assert!(times.iter().all(|&t| t == times[0]), "disjoint pairs should finish together");
    }

    #[test]
    fn rdma_get_round_trips() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        let done = shared(None);
        let d = done.clone();
        Network::rdma_get(&net, &mut sim, NodeId(0), NodeId(1), 1_000_000, move |sim| {
            *d.borrow_mut() = Some(sim.now());
        });
        sim.run();
        let t = done.borrow().expect("get completed");
        // Control (1us lat + 64ns) + payload leg (1us + 1ms).
        let expected = SimTime::ZERO
            + SimDuration::from_micros(1)
            + SimDuration::from_nanos(64)
            + SimDuration::from_micros(1)
            + SimDuration::from_millis(1);
        assert_eq!(t, expected);
    }

    #[test]
    fn busy_time_accumulates_wire_time() {
        let mut sim = Sim::new(0);
        let net = Network::new(fast_cfg());
        for _ in 0..3 {
            Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 1_000_000, |_| {});
        }
        sim.run();
        let n = net.borrow();
        let per = SimDuration::from_micros(1) + SimDuration::from_millis(1);
        assert_eq!(n.busy_time(NodeId(0)), (per * 3, SimDuration::ZERO));
        assert_eq!(n.busy_time(NodeId(1)), (SimDuration::ZERO, per * 3));
        // Utilization over the elapsed run is 100% (back-to-back).
        let (tx, _) = n.utilization(NodeId(0), sim.now().since(sim_core::SimTime::ZERO));
        assert!(tx > 0.99, "tx utilization {tx}");
        assert_eq!(n.busy_time(NodeId(99)), (SimDuration::ZERO, SimDuration::ZERO));
    }

    #[test]
    fn telemetry_records_nic_spans_and_totals() {
        use simtel::TelemetryConfig;
        let tel = Telemetry::new(TelemetryConfig::all());
        let mut sim = Sim::new(0);
        let net = Network::with_telemetry(fast_cfg(), tel.clone());
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(1), 1_000, |_| {});
        Network::transfer(&net, &mut sim, NodeId(0), NodeId(2), 1_000, |_| {});
        sim.run();
        assert_eq!(tel.counter("net.messages"), 2);
        assert_eq!(tel.counter("net.bytes"), 2_000);
        let snap = tel.snapshot();
        // Two transfers, each drawn on a tx and an rx track.
        assert_eq!(snap.spans.len(), 4);
        assert!(snap.spans.iter().any(|s| s.track == "nic0.tx"));
        assert!(snap.spans.iter().any(|s| s.track == "nic2.rx"));
        // Spans mirror the NIC busy bookkeeping.
        let tx: SimDuration = snap
            .spans
            .iter()
            .filter(|s| s.track == "nic0.tx")
            .map(|s| s.end.since(s.start))
            .sum();
        assert_eq!(tx, net.borrow().busy_time(NodeId(0)).0);
    }

    #[test]
    fn torus_hops_wrap_around() {
        let topo = Topology::Torus3D { dims: (4, 4, 4) };
        // Node 0 = (0,0,0); node 3 = (3,0,0): wraparound distance 1.
        assert_eq!(topo.hops(NodeId(0), NodeId(3)), 1);
        // Node 0 -> node 2 = (2,0,0): distance 2 either way.
        assert_eq!(topo.hops(NodeId(0), NodeId(2)), 2);
        // Same node.
        assert_eq!(topo.hops(NodeId(5), NodeId(5)), 0);
        // Diagonal: (1,1,1) = id 1 + 4 + 16 = 21.
        assert_eq!(topo.hops(NodeId(0), NodeId(21)), 3);
    }

    #[test]
    fn torus_latency_exceeds_flat_for_distant_nodes() {
        let mut torus = fast_cfg();
        torus.topology = Topology::Torus3D { dims: (8, 8, 8) };
        torus.per_hop_latency = SimDuration::from_nanos(100);
        let near = torus.wire_time(NodeId(0), NodeId(1), 64);
        // (4,4,4) => id 4 + 4*8 + 4*64 = 292 — maximal distance corner.
        let far = torus.wire_time(NodeId(0), NodeId(292), 64);
        assert!(far > near);
    }
}
